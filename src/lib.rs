//! # react-repro — REACT: Energy-Adaptive Buffering for Batteryless Systems
//!
//! A full-system reproduction of *"Energy-adaptive Buffering for Efficient,
//! Responsive, and Persistent Batteryless Systems"* (Williams & Hicks,
//! ASPLOS 2024). This facade crate re-exports the workspace crates:
//!
//! * [`units`] — typed physical quantities.
//! * [`circuit`] — capacitor / diode / switch / bank circuit models.
//! * [`traces`] — power traces, statistics, and seeded synthesis.
//! * [`env`](mod@env) — streaming stochastic environments (diurnal solar,
//!   Gilbert–Elliott RF, mobility schedules, energy attacks) and
//!   source combinators.
//! * [`harvest`] — harvester converter models and Ekho-style replay.
//! * [`mcu`] — MSP430-class MCU power model, gate, and peripherals.
//! * [`workloads`] — the DE / SC / RT / PF benchmarks and their substrates.
//! * [`buffers`] — static, REACT, Morphy, and extension buffer designs.
//! * [`telemetry`] — structured event tracing, step attribution, and
//!   timeline export for the simulation engine.
//! * [`core`] — the simulator, experiment matrix, metrics, and reports.
//!
//! # Quickstart
//!
//! ```
//! use react_repro::prelude::*;
//!
//! // Run the Sense-and-Compute benchmark on (a slice of) the RF Mobile
//! // trace with REACT.
//! let trace = paper_trace(PaperTrace::RfMobile).truncated(Seconds::new(40.0));
//! let outcome = Experiment::new(BufferKind::React, WorkloadKind::SenseCompute)
//!     .run(&trace);
//! assert!(outcome.metrics.relative_conservation_error() < 1e-2);
//! ```

pub use react_buffers as buffers;
pub use react_circuit as circuit;
pub use react_core as core;
pub use react_env as env;
pub use react_harvest as harvest;
pub use react_mcu as mcu;
pub use react_telemetry as telemetry;
pub use react_traces as traces;
pub use react_units as units;
pub use react_workloads as workloads;

/// One-stop import for examples and downstream users.
pub mod prelude {
    pub use react_buffers::{BufferKind, EnergyBuffer};
    pub use react_core::{
        calib, find_scenario, scenario_registry, Experiment, ExperimentMatrix, RunMetrics,
        RunOutcome, Scenario, Simulator, WorkloadKind,
    };
    pub use react_env::{PowerSource, TraceSource};
    pub use react_traces::{paper_trace, PaperTrace, PowerTrace, TraceStats};
    pub use react_units::prelude::*;
}
