//! Derive macros for the in-tree `serde` shim.
//!
//! Supports exactly what this workspace uses: plain structs with named
//! fields, and `#[serde(transparent)]` newtype (tuple) structs. No
//! generics, enums, or field attributes — the derive fails loudly on
//! anything it does not understand rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructInfo {
    name: String,
    transparent: bool,
    /// Named fields, in declaration order. Empty + `tuple_fields > 0`
    /// for tuple structs.
    fields: Vec<String>,
    tuple_fields: usize,
}

/// Parses the derive input far enough to know the struct name, whether
/// `#[serde(transparent)]` is present, and the field names.
fn parse_struct(input: TokenStream) -> Result<StructInfo, String> {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;

    // Leading attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") && text.contains("transparent") {
                        transparent = true;
                    }
                } else {
                    return Err("malformed attribute".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional `(crate)` / `(super)` group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => return Err(format!("only structs are supported, found {other:?}")),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    match iter.next() {
        // Named-field struct.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(StructInfo {
                name,
                transparent,
                fields,
                tuple_fields: 0,
            })
        }
        // Tuple struct: count top-level comma-separated fields.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let mut count = 0usize;
            let mut depth = 0i32;
            let mut saw_token = false;
            for tt in g.stream() {
                match tt {
                    TokenTree::Punct(ref p) if p.as_char() == '<' && depth >= 0 => {
                        depth += 1;
                        saw_token = true;
                    }
                    TokenTree::Punct(ref p) if p.as_char() == '>' => {
                        depth -= 1;
                        saw_token = true;
                    }
                    TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                        count += 1;
                        saw_token = false;
                    }
                    _ => saw_token = true,
                }
            }
            if saw_token {
                count += 1;
            }
            Ok(StructInfo {
                name,
                transparent,
                fields: Vec::new(),
                tuple_fields: count,
            })
        }
        other => Err(format!("expected struct body, found {other:?}")),
    }
}

/// Extracts field names from a named-field body, skipping attributes,
/// visibility, and the type tokens after each `:`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to a top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
                None => break,
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let info = match parse_struct(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &info.name;
    let body = if info.tuple_fields > 0 || info.transparent && info.fields.len() == 1 {
        if info.tuple_fields == 1 {
            "::serde::Serialize::to_value(&self.0)".to_string()
        } else if info.tuple_fields > 1 {
            let elems: Vec<String> = (0..info.tuple_fields)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", elems.join(", "))
        } else {
            let f = &info.fields[0];
            format!("::serde::Serialize::to_value(&self.{f})")
        }
    } else {
        let entries: Vec<String> = info
            .fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                )
            })
            .collect();
        format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let info = match parse_struct(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &info.name;
    let body = if info.tuple_fields == 1 {
        format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
    } else if info.tuple_fields > 1 {
        let elems: Vec<String> = (0..info.tuple_fields)
            .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
            .collect();
        format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
    } else if info.transparent && info.fields.len() == 1 {
        let f = &info.fields[0];
        format!("::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})")
    } else {
        let inits: Vec<String> = info
            .fields
            .iter()
            .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
            .collect();
        format!(
            "::std::result::Result::Ok({name} {{ {} }})",
            inits.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
