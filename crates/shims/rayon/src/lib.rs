//! Minimal offline stand-in for `rayon`.
//!
//! Implements `par_iter().map(..).collect::<Vec<_>>()` over slices with
//! scoped OS threads pulling work items off a shared atomic counter
//! (coarse work stealing), which is all the workspace's sweep and
//! experiment-matrix runners need. Thread count follows
//! `RAYON_NUM_THREADS` when set, else `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One-stop import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `.par_iter()` entry point for shared-reference parallel iteration.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by the iterator.
    type Item: Sync + 'data;
    /// Starts a parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map and collects results in input order.
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_ordered(run_ordered(self.items, &self.f))
    }
}

/// Collection types constructible from ordered parallel results.
pub trait FromParallelResults<R> {
    /// Builds the collection from results in input order.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

fn run_ordered<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("results poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn heavy_items_balance() {
        let xs: Vec<u32> = (0..64).collect();
        let ys: Vec<u64> = xs
            .par_iter()
            .map(|&x| {
                (0..(x as u64 % 7) * 10_000)
                    .sum::<u64>()
                    .wrapping_add(x as u64)
            })
            .collect();
        assert_eq!(ys.len(), 64);
    }
}
