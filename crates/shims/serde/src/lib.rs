//! Minimal offline stand-in for `serde`.
//!
//! The real serde could not be vendored into the evaluation container,
//! so this shim provides the subset the workspace relies on: a
//! `Serialize`/`Deserialize` trait pair over an owned JSON-like
//! [`Value`] tree, plus derive macros (re-exported from
//! `serde-derive-shim`) for plain structs and `#[serde(transparent)]`
//! newtypes. `serde_json` (also shimmed) renders [`Value`] to and from
//! JSON text. Swap the workspace path dependency for the real crates to
//! drop both shims at once.

pub use serde_derive_shim::{Deserialize, Serialize};

use std::fmt;

/// An owned JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with preserved key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field, erroring when `self` is not an object
    /// or the key is missing.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
            _ => Err(Error::custom(format!(
                "expected object while reading field `{key}`"
            ))),
        }
    }

    /// Looks up an array element by index.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Arr(items) => items
                .get(i)
                .ok_or_else(|| Error::custom(format!("missing array element {i}"))),
            _ => Err(Error::custom("expected array")),
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Converts a value into the [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
