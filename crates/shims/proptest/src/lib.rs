//! Minimal offline stand-in for `proptest`.
//!
//! Runs each property a configurable number of cases with values
//! sampled from range/tuple/collection strategies. No shrinking: a
//! failing case panics with the sampled inputs visible in the assert
//! message. Deterministic per test (seeded from the test name) so CI
//! failures reproduce locally.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-property configuration, mirroring `proptest::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG for one property, seeded from its name.
pub fn test_rng(name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Marker produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy for "any value of `T`", mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, broad dynamic range.
        let mag = rng.gen_range(-300.0..300.0_f64);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Sub-strategy namespaces, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Strategy returned by [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` sampled executions of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}
