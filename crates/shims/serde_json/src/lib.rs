//! Minimal offline stand-in for `serde_json`, built on the in-tree
//! `serde` shim's [`Value`] tree: a JSON writer plus a recursive-descent
//! parser covering the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null).

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips through f64 parsing.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::custom("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(1.5)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [0.0, -1.0, 3.3, 1e-12, 6.65, 123456789.125] {
            let s = to_string(&n).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(n, back);
        }
    }
}
