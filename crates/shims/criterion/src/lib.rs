//! Minimal offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `benchmark_group` / `Bencher` surface the
//! workspace's benches use, with plain wall-clock timing: each
//! benchmark is warmed up once, then run for enough iterations to fill
//! a short measurement window, and the mean per-iteration time is
//! printed. `--test` (as passed by `cargo bench -- --test`) runs every
//! benchmark body exactly once without timing — the CI smoke mode.
//! Positional CLI arguments act as substring filters on benchmark
//! names, like the real criterion.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filters: Vec::new(),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process CLI arguments.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Harness-protocol flags cargo passes; ignored.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => c.filters.push(s.to_string()),
            }
        }
        c
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if self.matches(&name) {
            run_one(&name, self.test_mode, self.sample_size, f);
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks, mirroring criterion's group API.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if self.parent.matches(&full) {
            let samples = self.sample_size.unwrap_or(self.parent.sample_size);
            run_one(&full, self.parent.test_mode, samples, f);
        }
        self
    }

    /// Ends the group (required by the real API; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; `iter` supplies the body to measure.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, storing the mean per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and calibration: find an iteration count that fills
        // the measurement window.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, self.samples as u128) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last = Some(start.elapsed() / iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, samples: usize, mut f: F) {
    let mut b = Bencher {
        test_mode,
        samples,
        last: None,
    };
    f(&mut b);
    match (test_mode, b.last) {
        (true, _) => println!("test {name} ... ok"),
        (false, Some(t)) => println!("{name:<50} time: [{}]", format_duration(t)),
        (false, None) => println!("{name:<50} (no measurement)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
