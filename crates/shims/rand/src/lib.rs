//! Minimal offline stand-in for `rand`.
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64`,
//! `gen_range` over float/integer ranges, and `gen_bool` — on top of
//! splitmix64 seeding and the xoshiro256** generator. The streams differ
//! from the real `rand` crate's StdRng (ChaCha12), which is fine: every
//! consumer in the workspace is seeded and post-calibrated or asserts
//! statistical properties, never exact values.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a range, mirroring `rand`'s `SampleRange`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; stay half-open.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64. Deterministic and fast; not
    /// the real `rand` StdRng stream (see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.02..0.3);
            assert!((0.02..0.3).contains(&x));
            let n = rng.gen_range(1usize..8);
            assert!((1..8).contains(&n));
            let m = rng.gen_range(0usize..=5);
            assert!(m <= 5);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.55)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.55).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn f64_uniform_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..100_000).map(|_| rng.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01);
    }
}
