//! Step attribution: an O(regimes × reasons) profile of where the
//! engine steps and simulated seconds go.

use serde::{Serialize, Value};

use crate::event::{EventKind, FallbackReason, Regime, SimEvent};
use crate::record::Recorder;

/// Per-regime classes: one coarse-stride bin plus one bin per
/// fine-step fallback reason.
const CLASSES: usize = 1 + FallbackReason::COUNT;

/// Total flattened bins: `Regime::COUNT × CLASSES`.
const BINS: usize = Regime::COUNT * CLASSES;

/// One attribution bin: engine steps taken and simulated seconds
/// covered by a (regime × class) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AttrBin {
    /// Engine steps (a coarse stride counts as one step).
    pub steps: u64,
    /// Simulated seconds covered.
    pub seconds: f64,
}

/// One non-empty attribution row, for rendering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttrRow {
    /// The regime the steps were taken in.
    pub regime: Regime,
    /// `None` for closed-form coarse strides, `Some(reason)` for fine
    /// steps.
    pub reason: Option<FallbackReason>,
    /// Engine steps in the bin.
    pub steps: u64,
    /// Simulated seconds covered by the bin.
    pub seconds: f64,
}

impl AttrRow {
    /// Human-readable class label, e.g. `"sleep coarse"` or
    /// `"idle fine:short-stride"`.
    pub fn label(&self) -> String {
        match self.reason {
            None => format!("{} coarse", self.regime.label()),
            Some(r) => format!("{} fine:{}", self.regime.label(), r.label()),
        }
    }
}

/// Aggregated step attribution for one run (or a merge of many).
///
/// Memory is a fixed `Regime::COUNT × (1 + FallbackReason::COUNT)`
/// array, so fleets can attribute 100k cells for the cost of one.
/// Implements [`Recorder`] (folding [`EventKind::CoarseStride`] and
/// [`EventKind::FineSpan`] events, ignoring instants), and merges
/// deterministically: merge order never changes the result because
/// each bin is an integer step count plus an f64 second sum folded in
/// caller order, mirroring how `FleetAggregate` is reduced.
#[derive(Clone, Debug, PartialEq)]
pub struct StepAttribution {
    bins: [AttrBin; BINS],
}

impl Default for StepAttribution {
    fn default() -> Self {
        StepAttribution {
            bins: [AttrBin::default(); BINS],
        }
    }
}

impl StepAttribution {
    fn index(regime: Regime, reason: Option<FallbackReason>) -> usize {
        let class = match reason {
            None => 0,
            Some(r) => 1 + r.index(),
        };
        regime.index() * CLASSES + class
    }

    /// The bin for a (regime, class) cell; `reason = None` is the
    /// coarse-stride class.
    pub fn bin(&self, regime: Regime, reason: Option<FallbackReason>) -> AttrBin {
        self.bins[Self::index(regime, reason)]
    }

    /// Add one classified contribution.
    pub fn add(
        &mut self,
        regime: Regime,
        reason: Option<FallbackReason>,
        steps: u64,
        seconds: f64,
    ) {
        let bin = &mut self.bins[Self::index(regime, reason)];
        bin.steps += steps;
        bin.seconds += seconds;
    }

    /// Fold another attribution into this one, bin by bin.
    pub fn merge(&mut self, other: &StepAttribution) {
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            dst.steps += src.steps;
            dst.seconds += src.seconds;
        }
    }

    /// Total engine steps attributed (coarse strides count one each).
    /// Exactly equals `RunMetrics::engine_steps` for a single run.
    pub fn total_steps(&self) -> u64 {
        self.bins.iter().map(|b| b.steps).sum()
    }

    /// Total simulated seconds attributed. Sums to the run's
    /// `total_time` up to floating-point telescoping error.
    pub fn total_seconds(&self) -> f64 {
        self.bins.iter().map(|b| b.seconds).sum()
    }

    /// Engine steps spent in closed-form coarse strides.
    pub fn coarse_steps(&self) -> u64 {
        Regime::ALL.iter().map(|&r| self.bin(r, None).steps).sum()
    }

    /// Engine steps spent fine-stepping (any reason).
    pub fn fine_steps(&self) -> u64 {
        self.total_steps() - self.coarse_steps()
    }

    /// Simulated seconds covered within one regime (coarse + fine).
    pub fn regime_seconds(&self, regime: Regime) -> f64 {
        (0..CLASSES)
            .map(|c| self.bins[regime.index() * CLASSES + c].seconds)
            .sum()
    }

    /// Engine steps covered within one regime (coarse + fine).
    pub fn regime_steps(&self, regime: Regime) -> u64 {
        (0..CLASSES)
            .map(|c| self.bins[regime.index() * CLASSES + c].steps)
            .sum()
    }

    /// Non-empty bins as rows, sorted by steps descending (ties broken
    /// by stable bin order).
    pub fn rows(&self) -> Vec<AttrRow> {
        let mut rows = Vec::new();
        for &regime in &Regime::ALL {
            let coarse = self.bin(regime, None);
            if coarse.steps > 0 {
                rows.push(AttrRow {
                    regime,
                    reason: None,
                    steps: coarse.steps,
                    seconds: coarse.seconds,
                });
            }
            for &reason in &FallbackReason::ALL {
                let bin = self.bin(regime, Some(reason));
                if bin.steps > 0 {
                    rows.push(AttrRow {
                        regime,
                        reason: Some(reason),
                        steps: bin.steps,
                        seconds: bin.seconds,
                    });
                }
            }
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.steps));
        rows
    }

    /// The largest fine-step row, if any fine steps were taken.
    pub fn top_fine_row(&self) -> Option<AttrRow> {
        self.rows().into_iter().find(|r| r.reason.is_some())
    }

    /// Render a plain-text "where the steps go" table.
    pub fn render(&self) -> String {
        let total = self.total_steps().max(1);
        let mut out =
            String::from("class                       steps      share     sim-seconds\n");
        for row in self.rows() {
            out.push_str(&format!(
                "{:<24} {:>12} {:>9.2}% {:>15.3}\n",
                row.label(),
                row.steps,
                100.0 * row.steps as f64 / total as f64,
                row.seconds,
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>12} {:>10} {:>15.3}\n",
            "total",
            self.total_steps(),
            "",
            self.total_seconds(),
        ));
        out
    }
}

impl Recorder for StepAttribution {
    const ENABLED: bool = true;

    fn record(&mut self, event: &SimEvent) {
        match event.kind {
            EventKind::CoarseStride { kind } => {
                self.add(kind.regime(), None, 1, event.span);
            }
            EventKind::FineSpan {
                regime,
                reason,
                steps,
            } => {
                self.add(regime, Some(reason), steps, event.span);
            }
            _ => {}
        }
    }

    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }
}

impl Serialize for StepAttribution {
    fn to_value(&self) -> Value {
        let rows = self
            .rows()
            .into_iter()
            .map(|row| {
                Value::Obj(vec![
                    ("regime".to_string(), Value::Str(row.regime.label().into())),
                    (
                        "class".to_string(),
                        Value::Str(match row.reason {
                            None => "coarse".to_string(),
                            Some(r) => r.label().to_string(),
                        }),
                    ),
                    ("steps".to_string(), Value::Num(row.steps as f64)),
                    ("seconds".to_string(), Value::Num(row.seconds)),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "total_steps".to_string(),
                Value::Num(self.total_steps() as f64),
            ),
            (
                "fine_steps".to_string(),
                Value::Num(self.fine_steps() as f64),
            ),
            (
                "total_seconds".to_string(),
                Value::Num(self.total_seconds()),
            ),
            ("rows".to_string(), Value::Arr(rows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StrideKind;

    #[test]
    fn attribution_folds_strides_and_spans() {
        let mut attr = StepAttribution::default();
        attr.record(&SimEvent {
            t: 0.0,
            span: 100.0,
            kind: EventKind::CoarseStride {
                kind: StrideKind::Idle,
            },
        });
        attr.record(&SimEvent {
            t: 100.0,
            span: 0.5,
            kind: EventKind::FineSpan {
                regime: Regime::Active,
                reason: FallbackReason::McuActive,
                steps: 50,
            },
        });
        attr.record(&SimEvent {
            t: 100.5,
            span: 0.0,
            kind: EventKind::Boot,
        });
        assert_eq!(attr.total_steps(), 51);
        assert_eq!(attr.coarse_steps(), 1);
        assert_eq!(attr.fine_steps(), 50);
        assert!((attr.total_seconds() - 100.5).abs() < 1e-12);
        assert_eq!(attr.regime_steps(Regime::Idle), 1);
        let top = attr.top_fine_row().expect("has a fine row");
        assert_eq!(top.reason, Some(FallbackReason::McuActive));
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = StepAttribution::default();
        a.add(Regime::Idle, Some(FallbackReason::ShortStride), 3, 0.03);
        let mut b = StepAttribution::default();
        b.add(Regime::Sleep, Some(FallbackReason::GuardBand), 7, 0.07);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_steps(), 10);
    }

    #[test]
    fn rows_sort_by_steps_descending() {
        let mut attr = StepAttribution::default();
        attr.add(Regime::Idle, None, 2, 20.0);
        attr.add(Regime::Sleep, Some(FallbackReason::GuardBand), 9, 0.09);
        let rows = attr.rows();
        assert_eq!(rows[0].reason, Some(FallbackReason::GuardBand));
        assert_eq!(rows[0].label(), "sleep fine:guard-band");
        assert_eq!(rows[1].label(), "idle coarse");
    }
}
