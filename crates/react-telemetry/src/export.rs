//! Event-stream exporters: Chrome `trace_event` JSON and a plain-text
//! timeline.

use serde::Value;

use crate::event::{EventKind, SimEvent};

/// Track (thread) ids used in the Chrome trace: kernel stride/fine
/// activity, lifecycle edges, and defense transitions.
const TID_KERNEL: f64 = 1.0;
const TID_LIFECYCLE: f64 = 2.0;
const TID_DEFENSE: f64 = 3.0;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn micros(t: f64) -> Value {
    Value::Num(t * 1e6)
}

/// A Chrome "complete" (`ph: "X"`) span event.
fn span_event(name: &str, cat: &str, tid: f64, t: f64, dur: f64, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("X".to_string())),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(tid)),
        ("ts", micros(t)),
        ("dur", micros(dur)),
        ("args", args),
    ])
}

/// A Chrome "instant" (`ph: "i"`) event with thread scope.
fn instant_event(name: &str, cat: &str, tid: f64, t: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str("i".to_string())),
        ("s", Value::Str("t".to_string())),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(tid)),
        ("ts", micros(t)),
    ])
}

/// A Chrome metadata (`ph: "M"`) event naming a process or thread.
fn metadata_event(name: &str, tid: Option<f64>, value: &str) -> Value {
    let mut fields = vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::Num(1.0)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Value::Num(tid)));
    }
    fields.push(("args", obj(vec![("name", Value::Str(value.to_string()))])));
    obj(fields)
}

/// Convert an event stream (sim-seconds) to Chrome `trace_event` JSON
/// (microsecond timestamps), loadable in Perfetto or `chrome://tracing`.
///
/// Mapping: coarse strides and fine spans become `"X"` complete events
/// on the *kernel* track; boots, brown-outs, and reconfigurations
/// become instants on the *lifecycle* track; detections become
/// instants and each `BackoffHold` → `BackoffRelease` pair becomes a
/// `"backoff"` span on the *defense* track (an unreleased hold is
/// closed at the last event's timestamp). Events need not arrive
/// sorted; output order follows the input stream, which Chrome's
/// format permits.
pub fn chrome_trace_json(events: &[SimEvent], process_name: &str) -> String {
    let mut trace_events = vec![
        metadata_event("process_name", None, process_name),
        metadata_event("thread_name", Some(TID_KERNEL), "kernel"),
        metadata_event("thread_name", Some(TID_LIFECYCLE), "lifecycle"),
        metadata_event("thread_name", Some(TID_DEFENSE), "defense"),
    ];
    let t_last = events.iter().fold(0.0_f64, |m, e| m.max(e.t + e.span));
    let mut hold_start: Option<f64> = None;
    for event in events {
        match event.kind {
            EventKind::CoarseStride { kind } => trace_events.push(span_event(
                kind.label(),
                "kernel",
                TID_KERNEL,
                event.t,
                event.span,
                obj(vec![("span_s", Value::Num(event.span))]),
            )),
            EventKind::FineSpan {
                regime,
                reason,
                steps,
            } => trace_events.push(span_event(
                &format!("fine:{}", reason.label()),
                "kernel",
                TID_KERNEL,
                event.t,
                event.span,
                obj(vec![
                    ("regime", Value::Str(regime.label().to_string())),
                    ("steps", Value::Num(steps as f64)),
                ]),
            )),
            EventKind::Boot => {
                trace_events.push(instant_event("boot", "lifecycle", TID_LIFECYCLE, event.t));
            }
            EventKind::BrownOut => trace_events.push(instant_event(
                "brown-out",
                "lifecycle",
                TID_LIFECYCLE,
                event.t,
            )),
            EventKind::Reconfig { defensive } => trace_events.push(instant_event(
                if defensive {
                    "defensive-reconfig"
                } else {
                    "reconfig"
                },
                "lifecycle",
                TID_LIFECYCLE,
                event.t,
            )),
            EventKind::Detection => {
                trace_events.push(instant_event("detection", "defense", TID_DEFENSE, event.t));
            }
            EventKind::BackoffHold => {
                // Nested holds extend the open span rather than nest.
                if hold_start.is_none() {
                    hold_start = Some(event.t);
                }
            }
            EventKind::BackoffRelease => {
                if let Some(start) = hold_start.take() {
                    trace_events.push(span_event(
                        "backoff",
                        "defense",
                        TID_DEFENSE,
                        start,
                        (event.t - start).max(0.0),
                        obj(vec![]),
                    ));
                }
            }
            EventKind::FaultInjected { label } => trace_events.push(instant_event(
                &format!("fault:{label}"),
                "fault",
                TID_DEFENSE,
                event.t,
            )),
            EventKind::AuditTrip { regime } => trace_events.push(instant_event(
                &format!("audit-trip:{}", regime.label()),
                "fault",
                TID_DEFENSE,
                event.t,
            )),
        }
    }
    if let Some(start) = hold_start {
        trace_events.push(span_event(
            "backoff",
            "defense",
            TID_DEFENSE,
            start,
            (t_last - start).max(0.0),
            obj(vec![]),
        ));
    }
    let doc = obj(vec![
        ("displayTimeUnit", Value::Str("ms".to_string())),
        ("traceEvents", Value::Arr(trace_events)),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
}

/// Render an event stream as a plain-text timeline, sorted by time.
///
/// Span-like lines show the covered span; instants show only the
/// timestamp. Times are sim-seconds.
pub fn text_timeline(events: &[SimEvent]) -> String {
    let mut sorted: Vec<&SimEvent> = events.iter().collect();
    sorted.sort_by(|a, b| a.t.total_cmp(&b.t));
    let mut out = String::new();
    for event in sorted {
        let desc = match event.kind {
            EventKind::CoarseStride { kind } => {
                format!("{:<14} span {:.6} s", kind.label(), event.span)
            }
            EventKind::FineSpan {
                regime,
                reason,
                steps,
            } => format!(
                "{:<14} span {:.6} s ({} {} steps)",
                format!("fine:{}", reason.label()),
                event.span,
                steps,
                regime.label(),
            ),
            EventKind::Boot => "boot".to_string(),
            EventKind::BrownOut => "brown-out".to_string(),
            EventKind::Reconfig { defensive: true } => "defensive-reconfig".to_string(),
            EventKind::Reconfig { defensive: false } => "reconfig".to_string(),
            EventKind::Detection => "detection".to_string(),
            EventKind::BackoffHold => "backoff-hold".to_string(),
            EventKind::BackoffRelease => "backoff-release".to_string(),
            EventKind::FaultInjected { label } => format!("fault:{label}"),
            EventKind::AuditTrip { regime } => format!("audit-trip:{}", regime.label()),
        };
        out.push_str(&format!("{:>16.6}  {desc}\n", event.t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FallbackReason, Regime, StrideKind};

    fn sample() -> Vec<SimEvent> {
        vec![
            SimEvent {
                t: 0.0,
                span: 10.0,
                kind: EventKind::CoarseStride {
                    kind: StrideKind::Idle,
                },
            },
            SimEvent {
                t: 10.0,
                span: 0.0,
                kind: EventKind::Boot,
            },
            SimEvent {
                t: 10.0,
                span: 0.0,
                kind: EventKind::Detection,
            },
            SimEvent {
                t: 10.0,
                span: 0.0,
                kind: EventKind::BackoffHold,
            },
            SimEvent {
                t: 12.5,
                span: 0.0,
                kind: EventKind::BackoffRelease,
            },
            SimEvent {
                t: 12.5,
                span: 0.2,
                kind: EventKind::FineSpan {
                    regime: Regime::Sleep,
                    reason: FallbackReason::GuardBand,
                    steps: 20,
                },
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_and_pairs_backoff() {
        let json = chrome_trace_json(&sample(), "test-cell");
        let doc: Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
        let events = doc.field("traceEvents").expect("traceEvents");
        let Value::Arr(items) = events else {
            panic!("traceEvents must be an array");
        };
        let names: Vec<String> = items
            .iter()
            .filter_map(|e| match e.field("name") {
                Ok(Value::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(names.iter().any(|n| n == "backoff"));
        assert!(names.iter().any(|n| n == "detection"));
        assert!(names.iter().any(|n| n == "fine:guard-band"));
        // The backoff span covers hold → release.
        let backoff = items
            .iter()
            .find(|e| matches!(e.field("name"), Ok(Value::Str(s)) if s == "backoff"))
            .expect("backoff span present");
        let Ok(Value::Num(dur)) = backoff.field("dur") else {
            panic!("backoff span has a duration");
        };
        assert!((dur - 2.5e6).abs() < 1e-3);
    }

    #[test]
    fn unreleased_hold_is_closed_at_stream_end() {
        let mut events = sample();
        events.retain(|e| e.kind != EventKind::BackoffRelease);
        let json = chrome_trace_json(&events, "test-cell");
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Arr(items) = doc.field("traceEvents").expect("traceEvents").clone() else {
            panic!("array");
        };
        assert!(items
            .iter()
            .any(|e| matches!(e.field("name"), Ok(Value::Str(s)) if s == "backoff")));
    }

    #[test]
    fn text_timeline_is_time_sorted() {
        let text = text_timeline(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("idle-stride"));
        assert!(lines.last().expect("non-empty").contains("fine:guard-band"));
    }
}
