//! Typed simulation events and their classification axes.

/// Why the adaptive kernel executed a fine `dt` step instead of a
/// closed-form stride.
///
/// The first four reasons are *refusals*: a fast path was eligible and
/// tried (or would have tried) to stride but could not. The last four
/// are *structural*: the engine state makes fine stepping inherent, so
/// no stride was ever attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// A controller poll would finish inside the comparator's ±20 mV
    /// guard band, where the combined-capacitor closed form cannot
    /// resolve the LLB microstate (the REACT near-threshold plateau).
    GuardBand,
    /// The buffer's present topology has no closed form (un-equalized
    /// banks/chains, quantized integration refused a segment).
    NoClosedForm,
    /// The kernel invariant guard tripped: the rail voltage or harvest
    /// power is non-finite, so the engine degrades to guarded fine
    /// stepping instead of propagating the NaN.
    NanGuard,
    /// Accumulated poll-service debt from software overhead must be
    /// serviced before the next sleep stride.
    PollDebt,
    /// A discrete transition is due now or within one step: a gate
    /// enable crossing at boot, a wake hint that is immediate, stale,
    /// already energy-satisfied, or deadline-due.
    TransitionDue,
    /// The remaining stride window is shorter than the coarse-stride
    /// floor (`MIN_COARSE_STRIDE`, and never less than `2·dt`), e.g.
    /// short environment-trace segments.
    ShortStride,
    /// The fast path is switched off: fixed-`dt` reference kernel, or
    /// a buffer that does not support the closed form for this regime.
    FastPathOff,
    /// The MCU is actively executing; fine stepping is inherent to the
    /// active regime, not a fallback.
    McuActive,
    /// The invariant auditor tripped on a committed stride and
    /// permanently degraded this regime's fast path to fine stepping
    /// for the rest of the run.
    AuditDegraded,
}

impl FallbackReason {
    /// Every reason, in stable presentation/merge order.
    pub const ALL: [FallbackReason; Self::COUNT] = [
        FallbackReason::GuardBand,
        FallbackReason::NoClosedForm,
        FallbackReason::NanGuard,
        FallbackReason::PollDebt,
        FallbackReason::TransitionDue,
        FallbackReason::ShortStride,
        FallbackReason::FastPathOff,
        FallbackReason::McuActive,
        FallbackReason::AuditDegraded,
    ];

    /// Number of distinct reasons.
    pub const COUNT: usize = 9;

    /// Stable index into [`FallbackReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            FallbackReason::GuardBand => 0,
            FallbackReason::NoClosedForm => 1,
            FallbackReason::NanGuard => 2,
            FallbackReason::PollDebt => 3,
            FallbackReason::TransitionDue => 4,
            FallbackReason::ShortStride => 5,
            FallbackReason::FastPathOff => 6,
            FallbackReason::McuActive => 7,
            FallbackReason::AuditDegraded => 8,
        }
    }

    /// Short kebab-case label used in tables and trace names.
    pub fn label(self) -> &'static str {
        match self {
            FallbackReason::GuardBand => "guard-band",
            FallbackReason::NoClosedForm => "no-closed-form",
            FallbackReason::NanGuard => "nan-guard",
            FallbackReason::PollDebt => "poll-debt",
            FallbackReason::TransitionDue => "transition-due",
            FallbackReason::ShortStride => "short-stride",
            FallbackReason::FastPathOff => "fast-path-off",
            FallbackReason::McuActive => "mcu-active",
            FallbackReason::AuditDegraded => "audit-degraded",
        }
    }
}

/// The engine regime a step or stride was taken in, classified from
/// the state at step entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Gate open, MCU unpowered: the buffer is charging toward the
    /// enable threshold.
    Idle,
    /// Gate closed, MCU in LPM3 sleep between workload wakes.
    Sleep,
    /// Gate closed, MCU executing (or in a boot/brown-out transient).
    Active,
}

impl Regime {
    /// Every regime, in stable presentation/merge order.
    pub const ALL: [Regime; Self::COUNT] = [Regime::Idle, Regime::Sleep, Regime::Active];

    /// Number of regimes.
    pub const COUNT: usize = 3;

    /// Stable index into [`Regime::ALL`].
    pub fn index(self) -> usize {
        match self {
            Regime::Idle => 0,
            Regime::Sleep => 1,
            Regime::Active => 2,
        }
    }

    /// Lower-case label used in tables and trace names.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Idle => "idle",
            Regime::Sleep => "sleep",
            Regime::Active => "active",
        }
    }
}

/// Which closed-form fast path produced a coarse stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrideKind {
    /// MCU-off charge integration up to the enable threshold.
    Idle,
    /// LPM3 sleep integration up to wake or brown-out.
    Powered,
}

impl StrideKind {
    /// The regime a stride of this kind covers.
    pub fn regime(self) -> Regime {
        match self {
            StrideKind::Idle => Regime::Idle,
            StrideKind::Powered => Regime::Sleep,
        }
    }

    /// Short label used in tables and trace names.
    pub fn label(self) -> &'static str {
        match self {
            StrideKind::Idle => "idle-stride",
            StrideKind::Powered => "sleep-stride",
        }
    }
}

/// What happened. Span-like kinds (`CoarseStride`, `FineSpan`,
/// implicit backoff windows) cover `[t, t + span)`; the rest are
/// instants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// One closed-form stride committed by a fast path.
    CoarseStride {
        /// Which fast path produced the stride.
        kind: StrideKind,
    },
    /// A coalesced run of consecutive fine `dt` steps sharing one
    /// (regime, reason) classification.
    FineSpan {
        /// Regime at entry to each step of the span.
        regime: Regime,
        /// Why the steps were fine instead of coarse.
        reason: FallbackReason,
        /// Number of engine steps coalesced into the span.
        steps: u64,
    },
    /// The gate closed: the MCU booted.
    Boot,
    /// The gate opened below the brown-out threshold: power lost.
    BrownOut,
    /// The buffer controller reconfigured its topology.
    Reconfig {
        /// True when triggered by the defense layer at boot, false for
        /// the controller's own policy decisions.
        defensive: bool,
    },
    /// The attack detector flagged an implausible outage interval.
    Detection,
    /// The defense entered a backoff hold (wakes suppressed).
    BackoffHold,
    /// The backoff hold released (timer expired with energy recovered,
    /// or cancelled by a brown-out).
    BackoffRelease,
    /// A scheduled or stochastic hardware-drift fault fired mid-run.
    FaultInjected {
        /// Kebab-case label of the fault kind from the circuit taxonomy
        /// (capacitance fade, leakage growth, comparator offset, stuck
        /// switch, harvester derate).
        label: &'static str,
    },
    /// The invariant auditor detected a cross-check divergence on a
    /// committed stride and degraded the regime's fast path.
    AuditTrip {
        /// Regime whose fast path was degraded.
        regime: Regime,
    },
}

/// One telemetry event: a kind stamped with sim-time and the simulated
/// span it covers (zero for instants).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimEvent {
    /// Simulation time of the event (span start for span-like kinds),
    /// in seconds.
    pub t: f64,
    /// Simulated seconds covered; `0.0` for instantaneous events.
    pub span: f64,
    /// What happened.
    pub kind: EventKind,
}
