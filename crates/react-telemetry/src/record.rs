//! The `Recorder` seam and the bounded-memory ring recorder.

use std::collections::VecDeque;

use crate::event::SimEvent;

/// A sink for simulation events, threaded through the engine as a
/// monomorphized type parameter.
///
/// `ENABLED` is an associated constant so that every instrumentation
/// block in the engine — `if R::ENABLED { … }` — folds away entirely
/// when the recorder is [`NullRecorder`]. Implementations must never
/// feed information back into the simulation: recording must not
/// change results (the integration suite pins this bit-for-bit).
pub trait Recorder {
    /// Whether the engine should emit events at all. When `false`, the
    /// engine skips every telemetry branch and [`Recorder::record`] is
    /// never called.
    const ENABLED: bool;

    /// Accept one event.
    fn record(&mut self, event: &SimEvent);

    /// Fold another recorder of the same type into this one, in
    /// deterministic (caller-ordered) sequence — the fleet runner uses
    /// this to merge per-cell recorders in node-index order.
    fn absorb(&mut self, other: Self)
    where
        Self: Sized;
}

/// The do-nothing default recorder. `ENABLED = false`, so the engine
/// compiles the entire telemetry layer away and runs bit-identical to
/// (and as fast as) a build without it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    fn record(&mut self, _event: &SimEvent) {}

    fn absorb(&mut self, _other: Self) {}
}

/// A bounded ring of the most recent events.
///
/// Memory is `O(capacity)` regardless of run length; once full, the
/// oldest event is discarded per new event and counted in
/// [`RingRecorder::dropped`].
#[derive(Clone, Debug, Default)]
pub struct RingRecorder {
    events: VecDeque<SimEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Default ring capacity: 65 536 events (~2.5 MiB), enough to hold
    /// every event of a coalesced day-scale cell.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A ring holding at most `capacity` events (`0` records nothing
    /// and counts everything as dropped).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            events: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            dropped: 0,
        }
    }

    /// A ring with [`RingRecorder::DEFAULT_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Consume the ring into a `Vec`, oldest first.
    pub fn into_events(self) -> Vec<SimEvent> {
        self.events.into_iter().collect()
    }
}

impl Recorder for RingRecorder {
    const ENABLED: bool = true;

    fn record(&mut self, event: &SimEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
            if self.capacity == 0 {
                return;
            }
        }
        self.events.push_back(*event);
    }

    fn absorb(&mut self, other: Self) {
        self.dropped += other.dropped;
        for event in other.events {
            self.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn boot_at(t: f64) -> SimEvent {
        SimEvent {
            t,
            span: 0.0,
            kind: EventKind::Boot,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut ring = RingRecorder::new(3);
        for i in 0..10 {
            ring.record(&boot_at(i as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let kept: Vec<f64> = ring.iter().map(|e| e.t).collect();
        assert_eq!(kept, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingRecorder::new(0);
        ring.record(&boot_at(1.0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn absorb_appends_in_order() {
        let mut a = RingRecorder::new(8);
        a.record(&boot_at(1.0));
        let mut b = RingRecorder::new(8);
        b.record(&boot_at(2.0));
        a.absorb(b);
        let ts: Vec<f64> = a.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 2.0]);
    }
}
