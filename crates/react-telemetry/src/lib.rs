//! Structured simulation telemetry for the REACT engine.
//!
//! The engine spans two kernels, five buffer controllers, adaptive
//! attack/defense machinery, and a 100k-node fleet runner, but a run
//! normally reports only end-of-run counters. This crate adds the
//! observability layer underneath those counters: a zero-overhead
//! [`Recorder`] seam through which the simulation core emits typed
//! [`SimEvent`]s — kernel stride decisions (closed-form vs fine-step,
//! and *why* a fine step was taken), lifecycle edges (boot, brown-out,
//! reconfiguration), and defense transitions (detection, backoff
//! hold/release) — each stamped with sim-time and the span of simulated
//! seconds it covers.
//!
//! Three recorders ship with the crate:
//!
//! - [`NullRecorder`] (the default everywhere): `ENABLED = false`, so
//!   every instrumentation block in the engine is behind
//!   `if R::ENABLED` on a monomorphized constant and compiles away.
//!   Runs with the null recorder are bit-identical to pre-telemetry
//!   builds.
//! - [`RingRecorder`]: keeps the last *N* events in a bounded ring and
//!   counts what it drops; feeds the [`export`] functions
//!   ([`chrome_trace_json`], [`text_timeline`]).
//! - [`StepAttribution`]: an O(regimes × reasons) profile of where the
//!   engine steps and simulated seconds go, mergeable across cells and
//!   fleet shards in deterministic order.
//!
//! The contract recorders rely on: **recording must never change
//! simulation results.** The engine only reads telemetry state behind
//! `R::ENABLED`, and the integration tests pin `to_bits`-equality of
//! metrics between null and recording runs across the kernel
//! equivalence matrix.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod attr;
mod event;
pub mod export;
mod record;

pub use attr::{AttrBin, AttrRow, StepAttribution};
pub use event::{EventKind, FallbackReason, Regime, SimEvent, StrideKind};
pub use export::{chrome_trace_json, text_timeline};
pub use record::{NullRecorder, Recorder, RingRecorder};
