//! Ablations — design-choice sweeps DESIGN.md calls out:
//!
//! * charge reclamation on/off (§3.3.4),
//! * poll-rate sweep (§3.4 / footnote 3),
//! * comparator threshold sweep (§3.3.5),
//! * Morphy controller cooldown (switch-thrash sensitivity),
//! * the extension baselines (Dewdrop, Capybara) against the paper set.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::{BufferKind, EnergyBuffer, ReactBuffer, ReactConfig};
use react_core::report::TextTable;
use react_core::{Experiment, Simulator, WorkloadKind};
use react_harvest::{Converter, PowerReplay};
use react_traces::{paper_trace, PaperTrace};
use react_units::Seconds;

/// Runs RT on RF Cart with a custom REACT configuration.
fn react_rt_ops(config: ReactConfig) -> u64 {
    let trace = paper_trace(PaperTrace::RfCart);
    let replay = PowerReplay::new(trace.clone(), Converter::ideal());
    let workload = WorkloadKind::RadioTransmit.build(&trace, Some(PaperTrace::RfCart));
    let buffer: Box<dyn EnergyBuffer> = Box::new(ReactBuffer::new(config));
    Simulator::new(replay, buffer, workload)
        .run()
        .metrics
        .ops_completed
}

fn regenerate() {
    let mut table = TextTable::new(
        "Ablations (RT ops on RF Cart unless noted)",
        &["Variant", "Ops", "Note"],
    );

    // Charge reclamation.
    let base = react_rt_ops(ReactConfig::paper_prototype());
    let mut no_reclaim = ReactConfig::paper_prototype();
    no_reclaim.charge_reclamation = false;
    let without = react_rt_ops(no_reclaim);
    table.push_row(&[
        "REACT (paper)".into(),
        base.to_string(),
        "reclamation on".into(),
    ]);
    table.push_row(&[
        "REACT, no reclamation".into(),
        without.to_string(),
        "banks disconnect at V_low".into(),
    ]);

    // Poll-rate sweep.
    for hz in [2.0, 10.0, 50.0] {
        let mut cfg = ReactConfig::paper_prototype();
        cfg.poll_period = Seconds::new(1.0 / hz);
        table.push_row(&[
            format!("REACT, poll {hz} Hz"),
            react_rt_ops(cfg).to_string(),
            String::new(),
        ]);
    }

    // Threshold sweep (V_high) — must respect Eq. 2 (higher V_high
    // loosens the bank limit, lower tightens it; 3.3 V still validates).
    for v_high in [3.4, 3.5, 3.6] {
        let mut cfg = ReactConfig::paper_prototype();
        cfg.v_high = react_units::Volts::new(v_high);
        if cfg.validate().is_ok() {
            table.push_row(&[
                format!("REACT, V_high {v_high} V"),
                react_rt_ops(cfg).to_string(),
                String::new(),
            ]);
        }
    }

    // Extension baselines on DE + RT, RF Cart.
    for kind in [BufferKind::Dewdrop, BufferKind::Capybara, BufferKind::React] {
        let de = Experiment::new(kind, WorkloadKind::DataEncryption)
            .run_paper_trace(PaperTrace::RfCart)
            .metrics
            .ops_completed;
        let rt = Experiment::new(kind, WorkloadKind::RadioTransmit)
            .run_paper_trace(PaperTrace::RfCart)
            .metrics
            .ops_completed;
        table.push_row(&[
            format!("{} baseline", kind.label()),
            rt.to_string(),
            format!("DE ops: {de}"),
        ]);
    }

    println!("{}", table.render());
    save_artifact("ablations", &table.render(), Some(&table.to_csv()));
}

fn bench_variant_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(30);
    group.bench_function("react_config_validate", |b| {
        b.iter(|| ReactConfig::paper_prototype().validate())
    });
    group.finish();
}

fn ablate_then_bench(c: &mut Criterion) {
    regenerate();
    bench_variant_construction(c);
}

criterion_group!(benches, ablate_then_bench);
criterion_main!(benches);
