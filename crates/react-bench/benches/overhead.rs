//! §5.1 — characterization and overhead: REACT's software poller costs
//! ~1.8 % of DE throughput; its hardware draws ≈68 µW (~13.6 µW/bank).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::{BufferKind, EnergyBuffer, ReactBuffer};
use react_core::{Simulator, WorkloadKind};
use react_harvest::{Converter, PowerReplay};
use react_traces::PowerTrace;
use react_units::{Amps, Seconds, Volts, Watts};
use react_workloads::DataEncryption;

/// DE on continuous power for 5 minutes (the paper's §5.1 method).
fn de_ops(with_software: bool) -> u64 {
    let trace = PowerTrace::constant(
        "continuous",
        Watts::from_milli(20.0),
        Seconds::new(300.0),
        Seconds::new(0.1),
    );
    let replay = PowerReplay::new(trace, Converter::ideal());
    let mut sim = Simulator::new(
        replay,
        BufferKind::React.build(),
        Box::new(DataEncryption::new()),
    )
    .with_max_drain(Seconds::new(10.0));
    if !with_software {
        sim = sim.without_software_overhead();
    }
    sim.run().metrics.ops_completed
}

fn regenerate() {
    let with = de_ops(true);
    let without = de_ops(false);
    let penalty = 100.0 * (1.0 - with as f64 / without as f64);

    // Hardware overhead: REACT idle with all banks connected for 100 s.
    let mut react = ReactBuffer::paper_prototype();
    react.set_llb_voltage(Volts::new(3.0));
    for i in 0..5 {
        react.force_bank_state(i, Volts::new(3.0), react_circuit::BankMode::Parallel);
    }
    for _ in 0..100_000 {
        react.step(Watts::ZERO, Amps::ZERO, Seconds::from_milli(1.0), false);
    }
    let hw_uw = react.ledger().overhead_consumed.to_micro() / 100.0;

    let text = format!(
        "== §5.1 overhead characterization ==\n\
         DE ops in 5 min, software poller on : {with}\n\
         DE ops in 5 min, software poller off: {without}\n\
         software overhead: {penalty:.1}% (paper: 1.8% at 10 Hz)\n\
         hardware quiescent draw, 5 banks connected: {hw_uw:.1} µW \
         (paper: ≈68 µW, ~13.6 µW/bank)\n"
    );
    println!("{text}");
    assert!(
        penalty > 0.5 && penalty < 5.0,
        "software penalty {penalty}%"
    );
    assert!(
        hw_uw > 40.0 && hw_uw < 100.0,
        "hardware overhead {hw_uw} µW"
    );
    save_artifact("overhead", &text, None);
}

fn bench_step_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");
    group.sample_size(20);
    group.bench_function("react_buffer_step", |b| {
        let mut react = ReactBuffer::paper_prototype();
        react.set_llb_voltage(Volts::new(3.0));
        b.iter(|| {
            react.step(
                Watts::from_milli(2.0),
                Amps::from_milli(1.5),
                Seconds::from_milli(1.0),
                true,
            )
        })
    });
    group.bench_function("de_workload_kind_label", |b| {
        b.iter(|| WorkloadKind::DataEncryption.label())
    });
    group.finish();
}

fn characterize_then_bench(c: &mut Criterion) {
    regenerate();
    bench_step_rate(c);
}

criterion_group!(benches, characterize_then_bench);
criterion_main!(benches);
