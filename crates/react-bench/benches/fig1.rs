//! Figure 1 — static buffer operation on the simulated pedestrian solar
//! harvester (§2.1): 1 mF vs 300 mF voltage traces plus the section's
//! quantitative claims (charge-time ratio, cycle lengths, duty cycles,
//! and the night-trace comparison of §2.1.2).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::{EnergyBuffer, StaticBuffer};
use react_circuit::CapacitorSpec;
use react_core::{ConstantLoad, Simulator};
use react_harvest::{Converter, PowerReplay};
use react_traces::{paper_trace, PaperTrace};
use react_units::{Amps, Farads, Seconds};

fn run_static(c_mf: f64, trace: PaperTrace, probe: bool) -> react_core::RunOutcome {
    let spec = CapacitorSpec::supercap_scaled(Farads::from_milli(c_mf));
    let buffer: Box<dyn EnergyBuffer> = Box::new(StaticBuffer::new(format!("{c_mf} mF"), spec));
    // §2.1: the system "draws 1.5 mA in active mode" — the MCU model
    // already draws 1.5 mA active, so no extra peripheral load.
    let workload = Box::new(ConstantLoad::new(Amps::ZERO));
    let replay = PowerReplay::new(paper_trace(trace), Converter::boost_charger());
    let mut sim = Simulator::new(replay, buffer, workload);
    if probe {
        sim = sim.with_probe(Seconds::new(1.0));
    }
    sim.run()
}

fn regenerate() {
    let small = run_static(1.0, PaperTrace::Pedestrian, true);
    let large = run_static(300.0, PaperTrace::Pedestrian, true);

    // CSV series: time, v_small, on_small, v_large, on_large.
    let mut csv = String::from("time_s,v_1mF,on_1mF,v_300mF,on_300mF\n");
    for (a, b) in small.voltage_series.iter().zip(&large.voltage_series) {
        csv.push_str(&format!(
            "{:.1},{:.4},{},{:.4},{}\n",
            a.time_s, a.voltage_v, a.on as u8, b.voltage_v, b.on as u8
        ));
    }

    let ms = &small.metrics;
    let ml = &large.metrics;
    let charge_ratio = match (ml.first_on_latency, ms.first_on_latency) {
        (Some(l), Some(s)) => l.get() / s.get().max(1e-9),
        _ => f64::NAN,
    };
    let mut summary = String::new();
    summary.push_str("== Fig. 1: static buffers on the pedestrian solar trace ==\n");
    summary.push_str(&format!(
        "1 mF:   latency {:?}, mean cycle {:.1} s, on {:.0}% of trace\n",
        ms.first_on_latency,
        ms.mean_on_period.get(),
        100.0 * ms.duty_cycle()
    ));
    summary.push_str(&format!(
        "300 mF: latency {:?}, mean cycle {:.1} s, on {:.0}% of trace\n",
        ml.first_on_latency,
        ml.mean_on_period.get(),
        100.0 * ml.duty_cycle()
    ));
    summary.push_str(&format!(
        "charge-time ratio (300 mF / 1 mF): {charge_ratio:.1}x (paper: >8x)\n"
    ));

    // §2.1.2 night-time comparison: 1 mF vs 10 mF duty cycle.
    let night_small = run_static(1.0, PaperTrace::SolarNight, false);
    let night_big = run_static(10.0, PaperTrace::SolarNight, false);
    summary.push_str(&format!(
        "night duty cycle: 1 mF {:.2}% vs 10 mF {:.2}% (paper: 5.7% vs 3.3%)\n",
        100.0 * night_small.metrics.duty_cycle(),
        100.0 * night_big.metrics.duty_cycle()
    ));
    // Spike structure of the driving trace (§2.1.2).
    let trace = paper_trace(PaperTrace::Pedestrian);
    summary.push_str(&format!(
        "trace: {:.0}% of energy above 10 mW, {:.0}% of time below 3 mW\n",
        100.0 * trace.energy_fraction_above(react_units::Watts::from_milli(10.0)),
        100.0 * trace.time_fraction_below(react_units::Watts::from_milli(3.0)),
    ));

    println!("{summary}");
    save_artifact("fig1", &summary, Some(&csv));
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("pedestrian_300s_1mF", |b| {
        let trace = paper_trace(PaperTrace::Pedestrian).truncated(Seconds::new(300.0));
        b.iter(|| {
            let spec = CapacitorSpec::supercap_scaled(Farads::from_milli(1.0));
            let buffer: Box<dyn EnergyBuffer> = Box::new(StaticBuffer::new("1 mF", spec));
            let replay = PowerReplay::new(trace.clone(), Converter::boost_charger());
            Simulator::new(replay, buffer, Box::new(ConstantLoad::new(Amps::ZERO)))
                .run()
                .metrics
                .on_time
        })
    });
    group.finish();
}

fn fig_then_bench(c: &mut Criterion) {
    regenerate();
    bench_fig1(c);
}

criterion_group!(benches, fig_then_bench);
criterion_main!(benches);
