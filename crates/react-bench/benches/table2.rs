//! Table 2 — DE / SC / RT performance across traces and buffers.
//!
//! Prints the three sub-tables the paper reports (operation counts per
//! trace × buffer plus the mean row), saves them under
//! `target/paper-artifacts/`, then benchmarks the simulation kernel.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::{render_ops_table, save_artifact};
use react_buffers::BufferKind;
use react_core::{Experiment, ExperimentMatrix, WorkloadKind};
use react_traces::PowerTrace;
use react_units::{Seconds, Watts};

fn regenerate() {
    for (name, workload) in [
        ("table2a_de", WorkloadKind::DataEncryption),
        ("table2b_sc", WorkloadKind::SenseCompute),
        ("table2c_rt", WorkloadKind::RadioTransmit),
    ] {
        let matrix = ExperimentMatrix::run(workload);
        let table = render_ops_table(
            &format!("Table 2 ({}): {} ops", name, workload.label()),
            &matrix,
        );
        println!("{}", table.render());
        save_artifact(name, &table.render(), Some(&table.to_csv()));
    }
}

fn bench_kernel(c: &mut Criterion) {
    let trace = PowerTrace::constant(
        "kernel",
        Watts::from_milli(5.0),
        Seconds::new(30.0),
        Seconds::new(0.1),
    );
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for kind in [BufferKind::Static770uF, BufferKind::React] {
        group.bench_function(format!("de_30s_{}", kind.label()), |b| {
            b.iter(|| {
                Experiment::new(kind, WorkloadKind::DataEncryption)
                    .run(&trace)
                    .metrics
                    .ops_completed
            })
        });
    }
    group.finish();
}

fn table_then_bench(c: &mut Criterion) {
    regenerate();
    bench_kernel(c);
}

criterion_group!(benches, table_then_bench);
criterion_main!(benches);
