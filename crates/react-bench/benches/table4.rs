//! Table 4 — system latency (cold start to first enable) across traces
//! and buffers. Latency is software-invariant, so the DE matrix is used.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::BufferKind;
use react_core::report::TextTable;
use react_core::{Experiment, ExperimentMatrix, WorkloadKind};
use react_traces::PowerTrace;
use react_units::{Seconds, Watts};

fn regenerate() {
    let matrix = ExperimentMatrix::run(WorkloadKind::DataEncryption);
    let mut table = TextTable::new(
        "Table 4: system latency (s)",
        &["Trace", "770 µF", "10 mF", "17 mF", "Morphy", "REACT"],
    );
    let ncols = BufferKind::PAPER_COLUMNS.len();
    let mut sums = vec![0.0; ncols];
    let mut counts = vec![0usize; ncols];
    for row in &matrix.rows {
        let mut cells = vec![row.trace.label().to_string()];
        for (i, cell) in row.cells.iter().enumerate() {
            match cell.outcome.metrics.first_on_latency {
                Some(l) => {
                    cells.push(format!("{:.2}", l.get()));
                    sums[i] += l.get();
                    counts[i] += 1;
                }
                None => cells.push("-".into()),
            }
        }
        table.push_row(&cells);
    }
    let mut mean = vec!["Mean".to_string()];
    for (s, c) in sums.iter().zip(&counts) {
        mean.push(if *c > 0 {
            format!("{:.2}", s / *c as f64)
        } else {
            "-".into()
        });
    }
    table.push_row(&mean);
    println!("{}", table.render());
    save_artifact("table4", &table.render(), Some(&table.to_csv()));

    // The paper's headline: REACT matches the smallest static buffer.
    let react_mean = sums[4] / counts[4].max(1) as f64;
    let small_mean = sums[0] / counts[0].max(1) as f64;
    println!(
        "REACT mean latency {:.1} s vs 770 µF {:.1} s (ratio {:.2})",
        react_mean,
        small_mean,
        react_mean / small_mean
    );
}

fn bench_charge_time(c: &mut Criterion) {
    let trace = PowerTrace::constant(
        "charge",
        Watts::from_milli(2.0),
        Seconds::new(60.0),
        Seconds::new(0.1),
    );
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("cold_start_latency_770uF", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::Static770uF, WorkloadKind::DataEncryption)
                .run(&trace)
                .metrics
                .first_on_latency
        })
    });
    group.finish();
}

fn table_then_bench(c: &mut Criterion) {
    regenerate();
    bench_charge_time(c);
}

criterion_group!(benches, table_then_bench);
criterion_main!(benches);
