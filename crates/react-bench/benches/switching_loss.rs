//! §3.3.1 / Fig. 5 — dissipative reconfiguration in fully-connected
//! capacitor networks, versus REACT's lossless bank switching.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::morphy_transition_path;
use react_circuit::{
    BankMode, BankSpec, CapacitorSpec, ChainNetwork, Partition, SeriesParallelBank,
};
use react_core::report::TextTable;
use react_units::{Farads, Volts};

/// Loss fraction for the canonical single-capacitor move on an
/// `n`-capacitor array: full-series → (n−1)-series ‖ 1.
fn single_move_loss(n: usize) -> f64 {
    let unit = CapacitorSpec::new(Farads::from_milli(2.0)).with_max_voltage(Volts::new(1e9));
    let mut net = ChainNetwork::new(unit, n, Partition::all_series(n));
    net.set_all_voltages(Volts::new(1.0));
    let before = net.stored_energy();
    let out = net.reconfigure(Partition::new(vec![n - 1, 1]).expect("valid"));
    out.dissipated.get() / before.get()
}

/// Loss fraction for 8-parallel → 7-series-1-parallel (§3.3.1's second
/// example: 56.25 %).
fn eight_cap_example_loss() -> f64 {
    let unit = CapacitorSpec::new(Farads::from_milli(2.0)).with_max_voltage(Volts::new(1e9));
    let mut net = ChainNetwork::new(unit, 8, Partition::all_parallel(8));
    net.set_all_voltages(Volts::new(1.0));
    let before = net.stored_energy();
    let out = net.reconfigure(Partition::new(vec![7, 1]).expect("valid"));
    out.dissipated.get() / before.get()
}

fn regenerate() {
    let mut table = TextTable::new(
        "§3.3.1: reconfiguration loss, fully-connected network",
        &["Transition", "Loss", "Paper"],
    );
    let four = single_move_loss(4);
    table.push_row(&[
        "4-series -> 3-series||1".into(),
        format!("{:.2}%", 100.0 * four),
        "25%".into(),
    ]);
    let eight = eight_cap_example_loss();
    table.push_row(&[
        "8-parallel -> 7-series||1".into(),
        format!("{:.2}%", 100.0 * eight),
        "56.25%".into(),
    ]);
    assert!((four - 0.25).abs() < 1e-9);
    assert!((eight - 0.5625).abs() < 1e-9);

    // Morphy ladder transitions at a charged 3.5 V terminal.
    let ladder = react_buffers::MorphyBuffer::standard_ladder();
    let unit = CapacitorSpec::new(Farads::from_milli(2.0)).with_max_voltage(Volts::new(1e9));
    for w in ladder.windows(2) {
        let mut net = ChainNetwork::new(unit, 8, w[0].clone());
        // Charge so the terminal sits at 3.5 V in the current config.
        let v_term = 3.5;
        let per_cap = v_term / w[0].chains().iter().map(|&l| l as f64).fold(0.0, f64::max);
        net.set_all_voltages(Volts::new(per_cap));
        let before = net.stored_energy();
        let mut lost = 0.0;
        for step in morphy_transition_path(w[0].chains(), w[1].chains()) {
            lost += net.reconfigure(step).dissipated.get();
        }
        table.push_row(&[
            format!("{:?} -> {:?}", w[0].chains(), w[1].chains()),
            format!("{:.1}%", 100.0 * lost / before.get()),
            "-".into(),
        ]);
    }

    // REACT's bank switching, for contrast: exactly zero.
    let mut bank = SeriesParallelBank::new(BankSpec::new(CapacitorSpec::ceramic_220uf(), 3));
    bank.set_unit_voltage(Volts::new(1.9));
    bank.reconfigure(BankMode::Parallel);
    let e0 = bank.stored_energy();
    bank.reconfigure(BankMode::Series);
    let react_loss = (e0.get() - bank.stored_energy().get()).abs();
    table.push_row(&[
        "REACT bank parallel -> series".into(),
        format!("{:.2}%", 100.0 * react_loss / e0.get()),
        "0%".into(),
    ]);

    println!("{}", table.render());
    save_artifact("switching_loss", &table.render(), Some(&table.to_csv()));
}

fn bench_reconfigure(c: &mut Criterion) {
    let unit = CapacitorSpec::new(Farads::from_milli(2.0)).with_max_voltage(Volts::new(1e9));
    let mut group = c.benchmark_group("switching_loss");
    group.sample_size(50);
    group.bench_function("network_reconfigure_8", |b| {
        b.iter(|| {
            let mut net = ChainNetwork::new(unit, 8, Partition::all_parallel(8));
            net.set_all_voltages(Volts::new(1.0));
            net.reconfigure(Partition::new(vec![7, 1]).expect("valid"))
        })
    });
    group.bench_function("bank_reconfigure", |b| {
        let mut bank = SeriesParallelBank::new(BankSpec::new(CapacitorSpec::ceramic_220uf(), 3));
        bank.set_unit_voltage(Volts::new(1.9));
        b.iter(|| {
            bank.reconfigure(BankMode::Series);
            bank.reconfigure(BankMode::Parallel);
        })
    });
    group.finish();
}

fn analyze_then_bench(c: &mut Criterion) {
    regenerate();
    bench_reconfigure(c);
}

criterion_group!(benches, analyze_then_bench);
criterion_main!(benches);
