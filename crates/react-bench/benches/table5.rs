//! Table 5 — Packet Forwarding: packets received and retransmitted per
//! trace and buffer, plus the fungibility summary of §5.4.1.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::BufferKind;
use react_core::report::TextTable;
use react_core::{Experiment, ExperimentMatrix, WorkloadKind};
use react_traces::PowerTrace;
use react_units::{Seconds, Watts};

fn regenerate() {
    let matrix = ExperimentMatrix::run(WorkloadKind::PacketForward);
    let mut table = TextTable::new(
        "Table 5: Packet Forwarding (Rx / Tx)",
        &["Trace", "770 µF", "10 mF", "17 mF", "Morphy", "REACT"],
    );
    let ncols = BufferKind::PAPER_COLUMNS.len();
    let mut rx_sum = vec![0u64; ncols];
    let mut tx_sum = vec![0u64; ncols];
    for row in &matrix.rows {
        let mut cells = vec![row.trace.label().to_string()];
        for (i, cell) in row.cells.iter().enumerate() {
            let m = &cell.outcome.metrics;
            rx_sum[i] += m.aux_completed;
            tx_sum[i] += m.ops_completed;
            cells.push(format!("{}/{}", m.aux_completed, m.ops_completed));
        }
        table.push_row(&cells);
    }
    let mut mean = vec!["Mean".to_string()];
    let n = matrix.rows.len().max(1) as u64;
    for (rx, tx) in rx_sum.iter().zip(&tx_sum) {
        mean.push(format!("{}/{}", rx / n, tx / n));
    }
    table.push_row(&mean);
    println!("{}", table.render());
    save_artifact("table5", &table.render(), Some(&table.to_csv()));
}

fn bench_pf(c: &mut Criterion) {
    let trace = PowerTrace::constant(
        "pf",
        Watts::from_milli(3.0),
        Seconds::new(60.0),
        Seconds::new(0.1),
    );
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("pf_60s_react", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::React, WorkloadKind::PacketForward)
                .run(&trace)
                .metrics
                .aux_completed
        })
    });
    group.finish();
}

fn table_then_bench(c: &mut Criterion) {
    regenerate();
    bench_pf(c);
}

criterion_group!(benches, table_then_bench);
criterion_main!(benches);
