//! Figure 7 — normalized figures of merit across benchmarks, plus the
//! paper's headline improvement percentages (§5.5).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::BufferKind;
use react_core::fom::{mean_improvement_over, normalize_to_react};
use react_core::report::TextTable;
use react_core::{ExperimentMatrix, WorkloadKind};

fn regenerate() {
    let mut table = TextTable::new(
        "Fig. 7: normalized performance (REACT = 1.00)",
        &["Benchmark", "770 µF", "10 mF", "17 mF", "Morphy", "REACT"],
    );
    let mut all_scores = Vec::new();
    for workload in WorkloadKind::ALL {
        let matrix = ExperimentMatrix::run(workload);
        let scores = normalize_to_react(&matrix);
        let mut cells = vec![workload.label().to_string()];
        for kind in BufferKind::PAPER_COLUMNS {
            let s = scores
                .iter()
                .find(|s| s.buffer == kind)
                .map(|s| s.score)
                .unwrap_or(0.0);
            cells.push(format!("{s:.2}"));
        }
        table.push_row(&cells);
        all_scores.push(scores);
    }
    // Mean row.
    let mut mean = vec!["Mean".to_string()];
    for kind in BufferKind::PAPER_COLUMNS {
        let avg: f64 = all_scores
            .iter()
            .filter_map(|scores| scores.iter().find(|s| s.buffer == kind))
            .map(|s| s.score)
            .sum::<f64>()
            / all_scores.len() as f64;
        mean.push(format!("{avg:.2}"));
    }
    table.push_row(&mean);

    let mut text = table.render();
    text.push('\n');
    for (baseline, paper) in [
        (BufferKind::Static770uF, 39.1),
        (BufferKind::Static10mF, 18.8),
        (BufferKind::Static17mF, 19.3),
        (BufferKind::Morphy, 26.2),
    ] {
        let imp = 100.0 * mean_improvement_over(&all_scores, baseline);
        text.push_str(&format!(
            "REACT improvement over {:>7}: {imp:+.1}% (paper: +{paper:.1}%)\n",
            baseline.label()
        ));
    }
    println!("{text}");
    save_artifact("fig7", &text, Some(&table.to_csv()));
}

fn bench_fom(c: &mut Criterion) {
    let matrix = ExperimentMatrix::run_with(
        WorkloadKind::DataEncryption,
        &[react_traces::PaperTrace::RfCart],
        &BufferKind::PAPER_COLUMNS,
        react_units::Seconds::new(0.002),
    );
    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    group.bench_function("normalize_to_react", |b| {
        b.iter(|| normalize_to_react(&matrix))
    });
    group.finish();
}

fn fig_then_bench(c: &mut Criterion) {
    regenerate();
    bench_fom(c);
}

criterion_group!(benches, fig_then_bench);
criterion_main!(benches);
