//! Table 3 — the power-trace statistics, regenerated and verified
//! against the paper's published values, then a synthesis benchmark.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_core::report::TextTable;
use react_traces::{paper_trace, PaperTrace, TABLE3_TARGETS};

fn regenerate() {
    let mut table = TextTable::new(
        "Table 3: power traces",
        &[
            "Trace",
            "Time (s)",
            "Avg. Pow. (mW)",
            "Power CV",
            "Paper CV",
        ],
    );
    for row in TABLE3_TARGETS {
        let stats = paper_trace(row.trace).stats();
        table.push_row(&[
            row.trace.label().to_string(),
            format!("{:.0}", stats.duration.get()),
            format!("{:.3}", stats.mean_power.to_milli()),
            format!("{:.0}%", stats.cv_percent()),
            format!("{:.0}%", row.cv_percent),
        ]);
        assert!(
            (stats.mean_power.to_milli() - row.avg_power_mw).abs() / row.avg_power_mw < 0.01,
            "{} mean power drifted from Table 3",
            row.trace.label()
        );
    }
    println!("{}", table.render());
    save_artifact("table3", &table.render(), Some(&table.to_csv()));
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("synthesize_rf_cart", |b| {
        b.iter(|| paper_trace(PaperTrace::RfCart).stats().cv)
    });
    group.bench_function("synthesize_solar_commute", |b| {
        b.iter(|| paper_trace(PaperTrace::SolarCommute).stats().cv)
    });
    group.finish();
}

fn table_then_bench(c: &mut Criterion) {
    regenerate();
    bench_synthesis(c);
}

criterion_group!(benches, table_then_bench);
criterion_main!(benches);
