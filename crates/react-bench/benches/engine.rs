//! Engine bench: adaptive kernel + parallel runners vs the fixed-`dt`
//! serial baseline.
//!
//! Prints (and saves under `target/paper-artifacts/engine.txt`) three
//! comparisons:
//!
//! 1. single-run kernel throughput (wall-clock and engine steps) for a
//!    charge-dominated scenario,
//! 2. a buffer-size sweep: serial fixed-`dt` vs parallel adaptive
//!    wall-clock, and
//! 3. a small trace × buffer experiment matrix, same comparison.
//!
//! Run with `cargo bench --bench engine`; `-- --test` is the CI smoke
//! mode (each measurement body runs once, no timing claims).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::BufferKind;
use react_core::sweep::{log_spaced_sizes, static_size_sweep_with, SweepOptions};
use react_core::{calib, Experiment, ExperimentMatrix, KernelMode, WorkloadKind};
use react_traces::{paper_trace, PaperTrace, PowerTrace};
use react_units::Seconds;

fn single_run(trace: &Arc<PowerTrace>, kernel: KernelMode) -> (f64, u64, u64) {
    let start = Instant::now();
    let out = Experiment::new(BufferKind::Static10mF, WorkloadKind::DataEncryption)
        .run_shared(trace, None, calib::DEFAULT_DT, None, kernel);
    (
        start.elapsed().as_secs_f64(),
        out.metrics.engine_steps,
        out.metrics.ops_completed,
    )
}

fn compare_then_bench(c: &mut Criterion) {
    let mut report = String::new();

    // 1. Kernel throughput on one charge-dominated run.
    let trace = Arc::new(paper_trace(PaperTrace::RfObstructed).truncated(Seconds::new(120.0)));
    let (t_fixed, steps_fixed, ops_fixed) = single_run(&trace, KernelMode::FixedDt);
    let (t_adaptive, steps_adaptive, ops_adaptive) = single_run(&trace, KernelMode::Adaptive);
    report.push_str(&format!(
        "single run (DE × 10 mF × RF Obs. 120 s)\n\
         \x20 fixed-dt : {:>8.1} ms, {:>8} engine steps, {} ops\n\
         \x20 adaptive : {:>8.1} ms, {:>8} engine steps, {} ops\n\
         \x20 kernel speedup: {:.1}× wall-clock, {:.0}× fewer steps\n\n",
        t_fixed * 1e3,
        steps_fixed,
        ops_fixed,
        t_adaptive * 1e3,
        steps_adaptive,
        ops_adaptive,
        t_fixed / t_adaptive.max(1e-9),
        steps_fixed as f64 / steps_adaptive.max(1) as f64,
    ));

    // 2. Buffer-size sweep: the §2.1 design-space exploration.
    let sweep_trace = paper_trace(PaperTrace::RfObstructed).truncated(Seconds::new(120.0));
    let sizes = log_spaced_sizes(
        react_units::Farads::from_micro(200.0),
        react_units::Farads::from_milli(50.0),
        8,
    );
    let start = Instant::now();
    let reference = static_size_sweep_with(
        &sweep_trace,
        WorkloadKind::DataEncryption,
        &sizes,
        SweepOptions::serial_reference(),
    );
    let t_serial = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let fast = static_size_sweep_with(
        &sweep_trace,
        WorkloadKind::DataEncryption,
        &sizes,
        SweepOptions::default(),
    );
    let t_parallel = start.elapsed().as_secs_f64();
    let sweep_speedup = t_serial / t_parallel.max(1e-9);
    let agree = reference
        .iter()
        .zip(&fast)
        .all(|(r, f)| (r.metrics.ops_completed as i64 - f.metrics.ops_completed as i64).abs() <= 2);
    report.push_str(&format!(
        "static-size sweep (8 sizes × DE × RF Obs. 120 s)\n\
         \x20 serial fixed-dt  : {:>8.1} ms\n\
         \x20 parallel adaptive: {:>8.1} ms\n\
         \x20 sweep speedup: {sweep_speedup:.1}×  (results agree: {agree})\n\n",
        t_serial * 1e3,
        t_parallel * 1e3,
    ));

    // 3. Trace × buffer matrix corner. SolarCommute is the paper's
    // long mostly-dark trace (6030 s, 0.148 mW) — the case whose
    // hour-scale charge phases motivated the adaptive kernel.
    let traces = [
        PaperTrace::RfCart,
        PaperTrace::RfObstructed,
        PaperTrace::SolarCommute,
    ];
    let buffers = [
        BufferKind::Static770uF,
        BufferKind::Static10mF,
        BufferKind::Static17mF,
    ];
    let start = Instant::now();
    let m_ref = ExperimentMatrix::run_serial_reference(
        WorkloadKind::DataEncryption,
        &traces,
        &buffers,
        calib::DEFAULT_DT,
    );
    let t_serial = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let m_fast = ExperimentMatrix::run_with(
        WorkloadKind::DataEncryption,
        &traces,
        &buffers,
        calib::DEFAULT_DT,
    );
    let t_parallel = start.elapsed().as_secs_f64();
    let matrix_speedup = t_serial / t_parallel.max(1e-9);
    let cells_agree = m_ref.rows.iter().zip(&m_fast.rows).all(|(rr, fr)| {
        rr.cells.iter().zip(&fr.cells).all(|(rc, fc)| {
            let (a, b) = (
                rc.outcome.metrics.ops_completed as f64,
                fc.outcome.metrics.ops_completed as f64,
            );
            (a - b).abs() <= 0.02 * a.max(b) + 2.0
        })
    });
    report.push_str(&format!(
        "experiment matrix (3 traces × 3 buffers × DE, full traces)\n\
         \x20 serial fixed-dt  : {:>8.1} ms\n\
         \x20 parallel adaptive: {:>8.1} ms\n\
         \x20 matrix speedup: {matrix_speedup:.1}×  (results agree: {cells_agree})\n",
        t_serial * 1e3,
        t_parallel * 1e3,
    ));

    println!("{report}");
    save_artifact("engine", &report, None);

    // Criterion-style timed kernels for regression tracking.
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let short = Arc::new(paper_trace(PaperTrace::RfObstructed).truncated(Seconds::new(60.0)));
    group.bench_function("de_10mf_rfobs_60s_adaptive", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::Static10mF, WorkloadKind::DataEncryption)
                .run_shared(&short, None, calib::DEFAULT_DT, None, KernelMode::Adaptive)
                .metrics
                .ops_completed
        })
    });
    group.bench_function("de_10mf_rfobs_60s_fixed", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::Static10mF, WorkloadKind::DataEncryption)
                .run_shared(&short, None, calib::DEFAULT_DT, None, KernelMode::FixedDt)
                .metrics
                .ops_completed
        })
    });
    group.finish();
}

criterion_group!(benches, compare_then_bench);
criterion_main!(benches);
