//! Engine bench: adaptive kernel + parallel runners vs the fixed-`dt`
//! serial baseline, plus the controller-aware REACT/Morphy fast path vs
//! the legacy adaptive kernel that fine-stepped controller buffers.
//!
//! Prints (and saves under `target/paper-artifacts/engine.txt`) four
//! comparisons:
//!
//! 1. single-run kernel throughput (wall-clock and engine steps) for a
//!    charge-dominated scenario,
//! 2. a buffer-size sweep: serial fixed-`dt` vs parallel adaptive
//!    wall-clock,
//! 3. a small static trace × buffer experiment matrix, same comparison,
//! 4. a REACT-dominated matrix (REACT + Morphy cells): the
//!    controller-aware idle fast path vs the same adaptive kernel with
//!    the fast path suppressed (PR 1 behavior — controller buffers fell
//!    back to fine stepping while dark),
//! 5. a week-horizon streaming environment (the `rf-sparse-week`
//!    registry scenario): the adaptive kernel consuming generative
//!    segments directly vs the pre-`react-env` workflow of
//!    materializing the environment into a 100 ms trace and replaying
//!    it (both adaptive — the ratio isolates streaming vs
//!    sample-bounded strides),
//! 6. the mobility-week sleep fast path vs the NoFastPath legacy
//!    kernel,
//! 7. the batched fleet kernel vs the same salted cells run as
//!    independent scalar simulations (aggregates asserted bit-equal).
//!
//! Every comparison also lands in
//! `target/paper-artifacts/BENCH_engine.json` (name, wall-clock,
//! speedup, steps/sec per scenario); CI uploads that file and fails if
//! any scenario's *speedup* regresses >20 % against the committed
//! baseline in `ci/bench-baseline.json` (absolute wall-clock is not
//! comparable across runners, the speedup ratio is).
//!
//! Run with `cargo bench --bench engine`; `-- --test` is the CI smoke
//! mode (each measurement body runs once, no timing claims).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::{save_artifact, save_bench_report, BenchReport, BenchScenario};
use react_buffers::{BufferKind, EnergyBuffer};
use react_circuit::EnergyLedger;
use react_core::sweep::{log_spaced_sizes, static_size_sweep_with, SweepOptions};
use react_core::{
    calib, find_scenario, Experiment, ExperimentMatrix, KernelMode, RunMetrics, Simulator,
    WorkloadKind,
};
use react_env::materialize;
use react_harvest::{Converter, PowerReplay};
use react_traces::{paper_trace, PaperTrace, PowerTrace};
use react_units::{Amps, Farads, Joules, Seconds, Volts, Watts};

/// Forwarding wrapper that hides a buffer's idle fast path, reproducing
/// the legacy adaptive kernel: the engine fine-steps the buffer while
/// the MCU is dark instead of handing it whole trace windows.
struct NoFastPath<B>(B);

impl<B: EnergyBuffer> EnergyBuffer for NoFastPath<B> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn rail_voltage(&self) -> Volts {
        self.0.rail_voltage()
    }
    fn input_voltage(&self) -> Volts {
        self.0.input_voltage()
    }
    fn equivalent_capacitance(&self) -> Farads {
        self.0.equivalent_capacitance()
    }
    fn stored_energy(&self) -> Joules {
        self.0.stored_energy()
    }
    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        self.0.usable_energy_above(v_floor)
    }
    fn supports_longevity(&self) -> bool {
        self.0.supports_longevity()
    }
    fn capacitance_level(&self) -> u32 {
        self.0.capacitance_level()
    }
    fn reconfiguration_count(&self) -> u64 {
        self.0.reconfiguration_count()
    }
    fn capacitance_dwell(&self) -> Vec<(u32, f64)> {
        self.0.capacitance_dwell()
    }
    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, mcu_running: bool) {
        self.0.step(input, load, dt, mcu_running)
    }
    fn ledger(&self) -> &EnergyLedger {
        self.0.ledger()
    }
}

fn single_run(trace: &Arc<PowerTrace>, kernel: KernelMode) -> (f64, u64, u64) {
    let start = Instant::now();
    let out = Experiment::new(BufferKind::Static10mF, WorkloadKind::DataEncryption).run_shared(
        trace,
        None,
        calib::DEFAULT_DT,
        None,
        kernel,
    );
    (
        start.elapsed().as_secs_f64(),
        out.metrics.engine_steps,
        out.metrics.ops_completed,
    )
}

/// Runs one REACT-dominated matrix cell; `fast_path` selects the
/// controller-aware closed form vs the legacy fine-step fallback.
fn controller_cell(
    trace: &Arc<PowerTrace>,
    which: PaperTrace,
    buffer: BufferKind,
    fast_path: bool,
) -> RunMetrics {
    let replay = PowerReplay::new(Arc::clone(trace), Converter::ideal());
    let workload = WorkloadKind::DataEncryption.build(trace, Some(which));
    if fast_path {
        Simulator::new(replay, buffer.build(), workload)
            .run()
            .metrics
    } else {
        Simulator::new(replay, NoFastPath(buffer.build()), workload)
            .run()
            .metrics
    }
}

fn compare_then_bench(c: &mut Criterion) {
    let mut report = String::new();
    let mut perf = BenchReport::default();

    // 1. Kernel throughput on one charge-dominated run. Min-of-3 per
    // arm: the adaptive arm finishes in ~0.1 ms, so a single sample's
    // jitter would dominate the gated ratio.
    let trace = Arc::new(paper_trace(PaperTrace::RfObstructed).truncated(Seconds::new(120.0)));
    let best = |kernel: KernelMode| {
        (0..3)
            .map(|_| single_run(&trace, kernel))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("three samples")
    };
    let (t_fixed, steps_fixed, ops_fixed) = best(KernelMode::FixedDt);
    let (t_adaptive, steps_adaptive, ops_adaptive) = best(KernelMode::Adaptive);
    report.push_str(&format!(
        "single run (DE × 10 mF × RF Obs. 120 s)\n\
         \x20 fixed-dt : {:>8.1} ms, {:>8} engine steps, {} ops\n\
         \x20 adaptive : {:>8.1} ms, {:>8} engine steps, {} ops\n\
         \x20 kernel speedup: {:.1}× wall-clock, {:.0}× fewer steps\n\n",
        t_fixed * 1e3,
        steps_fixed,
        ops_fixed,
        t_adaptive * 1e3,
        steps_adaptive,
        ops_adaptive,
        t_fixed / t_adaptive.max(1e-9),
        steps_fixed as f64 / steps_adaptive.max(1) as f64,
    ));
    perf.scenarios.push(BenchScenario {
        name: "single_de_10mf_rfobs".into(),
        wall_ms_baseline: t_fixed * 1e3,
        wall_ms_fast: t_adaptive * 1e3,
        speedup: t_fixed / t_adaptive.max(1e-9),
        steps_per_sec: steps_adaptive as f64 / t_adaptive.max(1e-9),
    });

    // 2. Buffer-size sweep: the §2.1 design-space exploration.
    let sweep_trace = paper_trace(PaperTrace::RfObstructed).truncated(Seconds::new(120.0));
    let sizes = log_spaced_sizes(
        react_units::Farads::from_micro(200.0),
        react_units::Farads::from_milli(50.0),
        8,
    );
    let start = Instant::now();
    let reference = static_size_sweep_with(
        &sweep_trace,
        WorkloadKind::DataEncryption,
        &sizes,
        SweepOptions::serial_reference(),
    );
    let t_serial = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let fast = static_size_sweep_with(
        &sweep_trace,
        WorkloadKind::DataEncryption,
        &sizes,
        SweepOptions::default(),
    );
    let t_parallel = start.elapsed().as_secs_f64();
    let sweep_speedup = t_serial / t_parallel.max(1e-9);
    let agree = reference
        .iter()
        .zip(&fast)
        .all(|(r, f)| (r.metrics.ops_completed as i64 - f.metrics.ops_completed as i64).abs() <= 2);
    report.push_str(&format!(
        "static-size sweep (8 sizes × DE × RF Obs. 120 s)\n\
         \x20 serial fixed-dt  : {:>8.1} ms\n\
         \x20 parallel adaptive: {:>8.1} ms\n\
         \x20 sweep speedup: {sweep_speedup:.1}×  (results agree: {agree})\n\n",
        t_serial * 1e3,
        t_parallel * 1e3,
    ));
    let sweep_steps: u64 = fast.iter().map(|r| r.metrics.engine_steps).sum();
    perf.scenarios.push(BenchScenario {
        name: "sweep_de_8sizes_rfobs".into(),
        wall_ms_baseline: t_serial * 1e3,
        wall_ms_fast: t_parallel * 1e3,
        speedup: sweep_speedup,
        steps_per_sec: sweep_steps as f64 / t_parallel.max(1e-9),
    });

    // 3. Static trace × buffer matrix corner. SolarCommute is the
    // paper's long mostly-dark trace (6030 s, 0.148 mW) — the case whose
    // hour-scale charge phases motivated the adaptive kernel.
    let traces = [
        PaperTrace::RfCart,
        PaperTrace::RfObstructed,
        PaperTrace::SolarCommute,
    ];
    let buffers = [
        BufferKind::Static770uF,
        BufferKind::Static10mF,
        BufferKind::Static17mF,
    ];
    let start = Instant::now();
    let m_ref = ExperimentMatrix::run_serial_reference(
        WorkloadKind::DataEncryption,
        &traces,
        &buffers,
        calib::DEFAULT_DT,
    );
    let t_serial = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let m_fast = ExperimentMatrix::run_with(
        WorkloadKind::DataEncryption,
        &traces,
        &buffers,
        calib::DEFAULT_DT,
    );
    let t_parallel = start.elapsed().as_secs_f64();
    let matrix_speedup = t_serial / t_parallel.max(1e-9);
    let cells_agree = m_ref.rows.iter().zip(&m_fast.rows).all(|(rr, fr)| {
        rr.cells.iter().zip(&fr.cells).all(|(rc, fc)| {
            let (a, b) = (
                rc.outcome.metrics.ops_completed as f64,
                fc.outcome.metrics.ops_completed as f64,
            );
            (a - b).abs() <= 0.02 * a.max(b) + 2.0
        })
    });
    report.push_str(&format!(
        "experiment matrix (3 traces × 3 static buffers × DE, full traces)\n\
         \x20 serial fixed-dt  : {:>8.1} ms\n\
         \x20 parallel adaptive: {:>8.1} ms\n\
         \x20 matrix speedup: {matrix_speedup:.1}×  (results agree: {cells_agree})\n\n",
        t_serial * 1e3,
        t_parallel * 1e3,
    ));
    let matrix_steps: u64 = m_fast
        .rows
        .iter()
        .flat_map(|r| r.cells.iter().map(|c| c.outcome.metrics.engine_steps))
        .sum();
    perf.scenarios.push(BenchScenario {
        name: "matrix_static_3x3".into(),
        wall_ms_baseline: t_serial * 1e3,
        wall_ms_fast: t_parallel * 1e3,
        speedup: matrix_speedup,
        steps_per_sec: matrix_steps as f64 / t_parallel.max(1e-9),
    });

    // 4. REACT-dominated matrix: the controller cells the ROADMAP
    // flagged as dominating wall-clock. Baseline is the *legacy*
    // adaptive kernel (fast path suppressed, so REACT/Morphy fine-step
    // while dark — PR 1 behavior); fast is the controller-aware closed
    // form. Both serial, so the ratio is pure kernel speedup.
    let ctl_traces = [
        (
            PaperTrace::RfObstructed,
            Arc::new(paper_trace(PaperTrace::RfObstructed)),
        ),
        (
            PaperTrace::SolarCommute,
            Arc::new(paper_trace(PaperTrace::SolarCommute).truncated(Seconds::new(1200.0))),
        ),
    ];
    let ctl_buffers = [BufferKind::React, BufferKind::Morphy];
    let start = Instant::now();
    let legacy: Vec<RunMetrics> = ctl_traces
        .iter()
        .flat_map(|(which, trace)| {
            ctl_buffers
                .iter()
                .map(|&b| controller_cell(trace, *which, b, false))
        })
        .collect();
    let t_legacy = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let fastpath: Vec<RunMetrics> = ctl_traces
        .iter()
        .flat_map(|(which, trace)| {
            ctl_buffers
                .iter()
                .map(|&b| controller_cell(trace, *which, b, true))
        })
        .collect();
    let t_fastpath = start.elapsed().as_secs_f64();
    let ctl_speedup = t_legacy / t_fastpath.max(1e-9);
    let ctl_agree = legacy.iter().zip(&fastpath).all(|(l, f)| {
        let (a, b) = (l.ops_completed as f64, f.ops_completed as f64);
        (a - b).abs() <= 0.02 * a.max(b) + 2.0
    });
    report.push_str(&format!(
        "REACT-dominated matrix (2 traces × REACT/Morphy × DE)\n\
         \x20 legacy adaptive (no controller fast path): {:>8.1} ms\n\
         \x20 controller-aware adaptive                : {:>8.1} ms\n\
         \x20 controller fast-path speedup: {ctl_speedup:.1}×  (results agree: {ctl_agree})\n",
        t_legacy * 1e3,
        t_fastpath * 1e3,
    ));
    let ctl_steps: u64 = fastpath.iter().map(|m| m.engine_steps).sum();
    perf.scenarios.push(BenchScenario {
        name: "matrix_react_morphy".into(),
        wall_ms_baseline: t_legacy * 1e3,
        wall_ms_fast: t_fastpath * 1e3,
        speedup: ctl_speedup,
        steps_per_sec: ctl_steps as f64 / t_fastpath.max(1e-9),
    });

    // 5. Week-horizon streaming environment. The streaming arm never
    // materializes anything: the adaptive kernel strides the
    // environment's native segments (a few thousand for the whole
    // week). The baseline arm is what required a bounded PowerTrace
    // before react-env existed: sample the same seeded environment at
    // the trace library's 100 ms resolution (6 M samples) and replay
    // it — same adaptive kernel, but every idle stride stops at a
    // sample-window boundary.
    let week = find_scenario("rf-sparse-week").expect("registry scenario");
    let start = Instant::now();
    let streamed = week.run().metrics;
    let t_stream = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mat_trace = Arc::new(materialize(
        &mut week.source(),
        "rf-sparse-week (materialized)",
        Seconds::new(0.1),
        week.horizon,
    ));
    let mat_workload = week
        .workload
        .build_streaming(week.horizon, week.workload_seed());
    // Both arms must share the scenario's declared converter (the
    // registry entry applies an RF rectifier), or the comparison runs
    // two different physical systems.
    let materialized = Simulator::new(
        PowerReplay::new(Arc::clone(&mat_trace), week.converter.build()),
        week.buffer.build(),
        mat_workload,
    )
    .with_timestep(week.dt)
    .run()
    .metrics;
    let t_materialized = start.elapsed().as_secs_f64();
    let week_speedup = t_materialized / t_stream.max(1e-9);
    let week_agree = {
        let (a, b) = (
            streamed.ops_completed as f64,
            materialized.ops_completed as f64,
        );
        (a - b).abs() <= 0.05 * a.max(b) + 5.0
    };
    report.push_str(&format!(
        "\nweek-horizon streaming environment (rf-sparse-week, SC × 770 µF × 7 days)\n\
         \x20 materialize 100 ms trace + adaptive replay: {:>8.1} ms ({} steps)\n\
         \x20 streaming adaptive (no materialization)   : {:>8.1} ms ({} steps)\n\
         \x20 streaming speedup: {week_speedup:.1}×  (results agree: {week_agree})\n",
        t_materialized * 1e3,
        materialized.engine_steps,
        t_stream * 1e3,
        streamed.engine_steps,
    ));
    perf.scenarios.push(BenchScenario {
        name: "week_streaming_env".into(),
        wall_ms_baseline: t_materialized * 1e3,
        wall_ms_fast: t_stream * 1e3,
        speedup: week_speedup,
        steps_per_sec: streamed.engine_steps as f64 / t_stream.max(1e-9),
    });

    // 6. Mobility-week sleep fast path: the commuter-week cell whose
    // LPM3 stretches dominated the scenario-report matrix (~55 M fine
    // steps: the MCU stays lit, responsively asleep, for most of the
    // week). Baseline is the NoFastPath legacy kernel (no idle *or*
    // sleep closed forms — every powered millisecond fine-steps); fast
    // is the adaptive kernel striding to each workload wake-up. Both
    // serial, Dewdrop cell (static-class physics + its adaptive enable
    // gate, exactly as the report runs it).
    let mob = find_scenario("mobility-week-pf")
        .expect("registry scenario")
        .with_buffer(react_buffers::BufferKind::Dewdrop);
    let mob_cell = |fast: bool| -> (RunMetrics, f64) {
        let replay = react_harvest::PowerReplay::from_source(mob.source(), mob.converter.build());
        let workload = mob
            .workload
            .build_streaming(mob.horizon, mob.workload_seed());
        let start = Instant::now();
        let metrics = if fast {
            Simulator::new(replay, mob.buffer.build(), workload)
                .with_timestep(mob.dt)
                .with_horizon(mob.horizon)
                .with_gate(mob.gate())
                .run()
                .metrics
        } else {
            Simulator::new(replay, NoFastPath(mob.buffer.build()), workload)
                .with_timestep(mob.dt)
                .with_horizon(mob.horizon)
                .with_gate(mob.gate())
                .run()
                .metrics
        };
        (metrics, start.elapsed().as_secs_f64())
    };
    let (legacy_m, t_mob_legacy) = mob_cell(false);
    let (fast_m, t_mob_fast) = mob_cell(true);
    let mob_speedup = t_mob_legacy / t_mob_fast.max(1e-9);
    let mob_collapse = legacy_m.engine_steps as f64 / fast_m.engine_steps.max(1) as f64;
    let mob_agree = {
        let (a, b) = (fast_m.ops_completed as f64, legacy_m.ops_completed as f64);
        (a - b).abs() <= 0.02 * a.max(b) + 2.0
    };
    report.push_str(&format!(
        "\nmobility-week sleep fast path (commuter week × PF × Dewdrop)\n\
         \x20 NoFastPath legacy (fine-steps all on-time): {:>8.1} ms ({} steps)\n\
         \x20 sleep fast path (wake-hint strides)        : {:>8.1} ms ({} steps)\n\
         \x20 sleep speedup: {mob_speedup:.1}× wall-clock, {mob_collapse:.0}× fewer steps  \
         (results agree: {mob_agree})\n",
        t_mob_legacy * 1e3,
        legacy_m.engine_steps,
        t_mob_fast * 1e3,
        fast_m.engine_steps,
    ));
    perf.scenarios.push(BenchScenario {
        name: "mobility_week_sleep".into(),
        wall_ms_baseline: t_mob_legacy * 1e3,
        wall_ms_fast: t_mob_fast * 1e3,
        speedup: mob_speedup,
        steps_per_sec: fast_m.engine_steps as f64 / t_mob_fast.max(1e-9),
    });

    // 7. Fleet kernel vs N independent scalar runs. Both arms run the
    // same 128 salted rf-sparse-week cells (4 h horizon — big enough
    // that the ~1× expected ratio isn't swamped by timer noise); the
    // baseline arm runs each node through `Scenario::run` serially,
    // the fast arm through the batched fleet kernel's min-clock heap.
    // The fleet kernel executes the same float ops in the same
    // per-cell order, so the aggregates must be *bit-equal* — the
    // agree flag here is exact equality, not a tolerance.
    let fleet_base = {
        let mut s = *find_scenario("rf-sparse-week").expect("registry scenario");
        s.horizon = Seconds::new(4.0 * 3600.0);
        s
    };
    let fleet_spec = react_core::FleetSpec::new(fleet_base, 128, 7);
    let fleet_cells: Vec<_> = (0..fleet_spec.nodes)
        .map(|i| fleet_spec.node_scenario(i))
        .collect();
    // Min-of-3 per arm: the expected ratio is ~1×, so a single timing
    // sample's jitter would dominate the gated number.
    let mut t_scalar = f64::INFINITY;
    let mut scalar_agg = react_core::FleetAggregate::new(fleet_spec.bins);
    for _ in 0..3 {
        let start = Instant::now();
        let mut agg = react_core::FleetAggregate::new(fleet_spec.bins);
        for sc in &fleet_cells {
            let out = sc.run();
            agg.record(&react_core::NodeStats::from_metrics(sc, &out.metrics));
        }
        t_scalar = t_scalar.min(start.elapsed().as_secs_f64());
        scalar_agg = agg;
    }
    let mut t_fleet = f64::INFINITY;
    let mut fleet_agg = react_core::FleetAggregate::new(fleet_spec.bins);
    for _ in 0..3 {
        let start = Instant::now();
        let agg = react_core::FleetSim::from_scenarios(
            fleet_cells.clone(),
            fleet_spec.chunk,
            fleet_spec.bins,
        )
        .expect("fleet cells build")
        .run();
        t_fleet = t_fleet.min(start.elapsed().as_secs_f64());
        fleet_agg = agg;
    }
    let fleet_speedup = t_scalar / t_fleet.max(1e-9);
    let fleet_agree = fleet_agg == scalar_agg;
    report.push_str(&format!(
        "\nfleet kernel vs scalar runs (128 salted nodes × rf-sparse-week, 4 h)\n\
         \x20 128 independent scalar runs: {:>8.1} ms\n\
         \x20 batched fleet kernel       : {:>8.1} ms\n\
         \x20 fleet speedup: {fleet_speedup:.2}×  (aggregates bit-equal: {fleet_agree})\n",
        t_scalar * 1e3,
        t_fleet * 1e3,
    ));
    assert!(
        fleet_agree,
        "fleet kernel aggregates diverged from scalar runs"
    );
    perf.scenarios.push(BenchScenario {
        name: "fleet_vs_scalar".into(),
        wall_ms_baseline: t_scalar * 1e3,
        wall_ms_fast: t_fleet * 1e3,
        speedup: fleet_speedup,
        steps_per_sec: fleet_spec.nodes as f64 / t_fleet.max(1e-9),
    });

    // 8. Telemetry overhead on the same week cell: step-attribution
    // recording on vs the NullRecorder default. The recorder hooks are
    // monomorphized away when disabled, so the expected ratio is ~1×;
    // the two-sided gate pins both directions — recording must never
    // become a tax, and the Null path must stay free. Metrics are
    // asserted *bit-equal* across the arms (the telemetry bit-identity
    // contract, pinned matrix-wide in tests/telemetry.rs). Min-of-3
    // per arm, like every ~1× ratio here.
    let mut t_null = f64::INFINITY;
    let mut null_m = None;
    for _ in 0..3 {
        let start = Instant::now();
        let m = week.run().metrics;
        t_null = t_null.min(start.elapsed().as_secs_f64());
        null_m = Some(m);
    }
    let mut t_rec = f64::INFINITY;
    let mut rec = None;
    for _ in 0..3 {
        let start = Instant::now();
        let (out, attr) = week.run_attributed();
        t_rec = t_rec.min(start.elapsed().as_secs_f64());
        rec = Some((out.metrics, attr));
    }
    let (rec_m, attr) = rec.expect("three recorded samples");
    let null_m = null_m.expect("three null samples");
    let tele_identical = rec_m == null_m;
    assert!(
        tele_identical,
        "recorded run's metrics diverged from the NullRecorder run"
    );
    assert_eq!(
        attr.total_steps(),
        rec_m.engine_steps,
        "attribution bins must account for every engine step"
    );
    let tele_ratio = t_rec / t_null.max(1e-9);
    report.push_str(&format!(
        "\ntelemetry overhead (rf-sparse-week, step attribution vs NullRecorder)\n\
         \x20 attribution recording on: {:>8.1} ms\n\
         \x20 NullRecorder (default)  : {:>8.1} ms\n\
         \x20 recording cost: {tele_ratio:.2}× (metrics bit-equal: {tele_identical}; \
         top fine sink: {})\n",
        t_rec * 1e3,
        t_null * 1e3,
        attr.top_fine_row()
            .map(|r| r.label())
            .unwrap_or_else(|| "-".to_string()),
    ));
    perf.scenarios.push(BenchScenario {
        name: "telemetry_overhead_week".into(),
        wall_ms_baseline: t_rec * 1e3,
        wall_ms_fast: t_null * 1e3,
        speedup: tele_ratio,
        steps_per_sec: rec_m.engine_steps as f64 / t_rec.max(1e-9),
    });

    // 9. Plateau sleep-stride collapse: the two cells whose fine-step
    // sinks the staged un-equalized solve, the guard-band microstate
    // offset, and the Morphy idle dead-band bulk stride eliminated.
    // react-plateau-sc parks REACT's equilibrium inside the ±20 mV
    // comparator band under MCU sleep (formerly ~16k no-closed-form +
    // ~3.5k guard-band fine steps per simulated hour); stormy-day's
    // Morphy cell idles MCU-off between sparse boots. Baseline is the
    // NoFastPath legacy kernel (no controller closed forms — every
    // powered or idle span fine-steps); fast is the adaptive kernel
    // with the full stride stack. Both serial.
    let stride_cells = [
        find_scenario("react-plateau-sc")
            .expect("registry scenario")
            .with_buffer(react_buffers::BufferKind::React),
        find_scenario("stormy-day-morphy-de")
            .expect("registry scenario")
            .with_buffer(react_buffers::BufferKind::Morphy),
    ];
    let stride_cell = |sc: &react_core::Scenario, fast: bool| -> (RunMetrics, f64) {
        let replay = react_harvest::PowerReplay::from_source(sc.source(), sc.converter.build());
        let workload = sc.workload.build_streaming(sc.horizon, sc.workload_seed());
        let start = Instant::now();
        let metrics = if fast {
            Simulator::new(replay, sc.buffer.build(), workload)
                .with_timestep(sc.dt)
                .with_horizon(sc.horizon)
                .with_gate(sc.gate())
                .run()
                .metrics
        } else {
            Simulator::new(replay, NoFastPath(sc.buffer.build()), workload)
                .with_timestep(sc.dt)
                .with_horizon(sc.horizon)
                .with_gate(sc.gate())
                .run()
                .metrics
        };
        (metrics, start.elapsed().as_secs_f64())
    };
    let mut t_stride_legacy = 0.0;
    let mut t_stride_fast = 0.0;
    let mut stride_legacy_steps = 0u64;
    let mut stride_fast_steps = 0u64;
    let mut stride_agree = true;
    for sc in &stride_cells {
        let (legacy_m, t_l) = stride_cell(sc, false);
        let (fast_m, t_f) = stride_cell(sc, true);
        t_stride_legacy += t_l;
        t_stride_fast += t_f;
        stride_legacy_steps += legacy_m.engine_steps;
        stride_fast_steps += fast_m.engine_steps;
        let (a, b) = (fast_m.ops_completed as f64, legacy_m.ops_completed as f64);
        stride_agree &= (a - b).abs() <= 0.02 * a.max(b) + 2.0;
    }
    let stride_speedup = t_stride_legacy / t_stride_fast.max(1e-9);
    let stride_collapse = stride_legacy_steps as f64 / stride_fast_steps.max(1) as f64;
    report.push_str(&format!(
        "\nplateau sleep-stride collapse (react-plateau-sc × REACT + stormy-day × Morphy)\n\
         \x20 NoFastPath legacy (fine-steps all spans): {:>8.1} ms ({} steps)\n\
         \x20 staged/guard-band/dead-band strides     : {:>8.1} ms ({} steps)\n\
         \x20 stride speedup: {stride_speedup:.1}× wall-clock, {stride_collapse:.0}× fewer steps  \
         (results agree: {stride_agree})\n",
        t_stride_legacy * 1e3,
        stride_legacy_steps,
        t_stride_fast * 1e3,
        stride_fast_steps,
    ));
    perf.scenarios.push(BenchScenario {
        name: "plateau_sleep_stride".into(),
        wall_ms_baseline: t_stride_legacy * 1e3,
        wall_ms_fast: t_stride_fast * 1e3,
        speedup: stride_speedup,
        steps_per_sec: stride_fast_steps as f64 / t_stride_fast.max(1e-9),
    });

    println!("{report}");
    save_artifact("engine", &report, None);
    save_bench_report("engine", &perf);

    // Criterion-style timed kernels for regression tracking.
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let short = Arc::new(paper_trace(PaperTrace::RfObstructed).truncated(Seconds::new(60.0)));
    group.bench_function("de_10mf_rfobs_60s_adaptive", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::Static10mF, WorkloadKind::DataEncryption)
                .run_shared(&short, None, calib::DEFAULT_DT, None, KernelMode::Adaptive)
                .metrics
                .ops_completed
        })
    });
    group.bench_function("de_10mf_rfobs_60s_fixed", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::Static10mF, WorkloadKind::DataEncryption)
                .run_shared(&short, None, calib::DEFAULT_DT, None, KernelMode::FixedDt)
                .metrics
                .ops_completed
        })
    });
    group.bench_function("de_react_rfobs_60s_adaptive", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::React, WorkloadKind::DataEncryption)
                .run_shared(&short, None, calib::DEFAULT_DT, None, KernelMode::Adaptive)
                .metrics
                .ops_completed
        })
    });
    group.finish();
}

criterion_group!(benches, compare_then_bench);
criterion_main!(benches);
