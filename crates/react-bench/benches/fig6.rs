//! Figure 6 — buffer voltage and on-time for the SC benchmark under the
//! RF Mobile trace, for 770 µF / 10 mF / Morphy / REACT.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use criterion::{criterion_group, criterion_main, Criterion};
use react_bench::save_artifact;
use react_buffers::BufferKind;
use react_core::{Experiment, WorkloadKind};
use react_traces::{paper_trace, PaperTrace};
use react_units::Seconds;

const COLUMNS: [BufferKind; 4] = [
    BufferKind::Static770uF,
    BufferKind::Static10mF,
    BufferKind::Morphy,
    BufferKind::React,
];

fn regenerate() {
    let trace = paper_trace(PaperTrace::RfMobile);
    let mut runs = Vec::new();
    for kind in COLUMNS {
        let out = Experiment::new(kind, WorkloadKind::SenseCompute).run_configured(
            &trace,
            Some(PaperTrace::RfMobile),
            react_core::calib::DEFAULT_DT,
            Some(Seconds::new(0.5)),
        );
        runs.push((kind, out));
    }

    let mut csv = String::from("time_s");
    for (kind, _) in &runs {
        csv.push_str(&format!(
            ",v_{0},on_{0},cap_{0}",
            kind.label().replace(' ', "")
        ));
    }
    csv.push('\n');
    let len = runs
        .iter()
        .map(|(_, o)| o.voltage_series.len())
        .min()
        .unwrap_or(0);
    for i in 0..len {
        csv.push_str(&format!("{:.1}", runs[0].1.voltage_series[i].time_s));
        for (_, out) in &runs {
            let s = &out.voltage_series[i];
            csv.push_str(&format!(
                ",{:.4},{},{:.6}",
                s.voltage_v, s.on as u8, s.capacitance_f
            ));
        }
        csv.push('\n');
    }

    let mut summary = String::from("== Fig. 6: SC under RF Mobile ==\n");
    for (kind, out) in &runs {
        let m = &out.metrics;
        let max_cap = out
            .voltage_series
            .iter()
            .map(|s| s.capacitance_f)
            .fold(0.0, f64::max);
        summary.push_str(&format!(
            "{:>7}: ops {:>3}, on {:>5.0} s, boots {:>3}, peak C {:.2} mF, clipped {:.1} mJ\n",
            kind.label(),
            m.ops_completed,
            m.on_time.get(),
            m.boots,
            max_cap * 1e3,
            m.ledger.clipped.to_milli(),
        ));
    }
    // The figure's qualitative content: REACT expands beyond its LLB
    // while the small static buffer clips.
    let react = &runs[3].1;
    let react_peak = react
        .voltage_series
        .iter()
        .map(|s| s.capacitance_f)
        .fold(0.0, f64::max);
    assert!(react_peak > 770e-6, "REACT never expanded in Fig. 6 run");
    println!("{summary}");
    save_artifact("fig6", &summary, Some(&csv));
}

fn bench_fig6(c: &mut Criterion) {
    let trace = paper_trace(PaperTrace::RfMobile).truncated(Seconds::new(60.0));
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("sc_rf_mobile_60s_react", |b| {
        b.iter(|| {
            Experiment::new(BufferKind::React, WorkloadKind::SenseCompute)
                .run(&trace)
                .metrics
                .ops_completed
        })
    });
    group.finish();
}

fn fig_then_bench(c: &mut Criterion) {
    regenerate();
    bench_fig6(c);
}

criterion_group!(benches, fig_then_bench);
criterion_main!(benches);
