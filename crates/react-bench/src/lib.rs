//! Shared harness helpers for the table/figure regeneration benches.
//!
//! Every bench in `benches/` regenerates one of the paper's artefacts
//! (Tables 2–5, Figures 1/6/7, the §5.1 overhead characterization, and
//! the ablations), printing the same rows/series the paper reports and
//! then timing a representative kernel under criterion.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use react_buffers::BufferKind;
use react_core::report::TextTable;
use react_core::{ExperimentMatrix, WorkloadKind};
use react_traces::PaperTrace;
use serde::{Deserialize, Serialize};

/// One engine-bench scenario's performance record — the unit the CI
/// perf-regression gate compares against its committed baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchScenario {
    /// Stable scenario identifier (the gate matches on it).
    pub name: String,
    /// Wall-clock of the baseline kernel configuration, in ms.
    pub wall_ms_baseline: f64,
    /// Wall-clock of the fast (adaptive) configuration, in ms.
    pub wall_ms_fast: f64,
    /// `wall_ms_baseline / wall_ms_fast` — the machine-independent
    /// metric the CI gate checks (absolute wall-clock is not comparable
    /// across runners).
    pub speedup: f64,
    /// Engine iterations per second sustained by the fast configuration.
    pub steps_per_sec: f64,
}

/// The `BENCH_engine.json` document: every scenario the engine bench
/// measured in one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BenchReport {
    /// Measured scenarios, in bench order.
    pub scenarios: Vec<BenchScenario>,
}

impl BenchReport {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&BenchScenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Renders an ops-count matrix (Table 2 / Table 5 style) as a text
/// table, one row per trace plus the mean row.
pub fn render_ops_table(title: &str, matrix: &ExperimentMatrix) -> TextTable {
    let headers: Vec<String> = std::iter::once("Trace".to_string())
        .chain(
            matrix
                .rows
                .first()
                .map(|r| {
                    r.cells
                        .iter()
                        .map(|c| c.buffer.label().to_string())
                        .collect::<Vec<String>>()
                })
                .unwrap_or_default(),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(title, &header_refs);
    for row in &matrix.rows {
        let mut cells = vec![row.trace.label().to_string()];
        cells.extend(
            row.cells
                .iter()
                .map(|c| c.outcome.metrics.ops_completed.to_string()),
        );
        table.push_row(&cells);
    }
    let mut mean = vec!["Mean".to_string()];
    mean.extend(matrix.mean_ops().iter().map(|(_, v)| format!("{v:.0}")));
    table.push_row(&mean);
    table
}

/// The workspace-root `target/paper-artifacts/` directory, regardless
/// of the working directory cargo launched the bench with (benches run
/// with the package dir as cwd, which would scatter artifacts under
/// `crates/react-bench/target`).
fn artifact_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/paper-artifacts")
}

/// Writes a rendered artefact (text and optional CSV) under the
/// workspace `target/paper-artifacts/` so bench output survives the
/// run.
pub fn save_artifact(name: &str, text: &str, csv: Option<&str>) {
    let dir = artifact_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), text);
        if let Some(csv) = csv {
            let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

/// Writes a perf report as `target/paper-artifacts/BENCH_<name>.json`
/// under the workspace root (the artifact CI uploads and gates on).
pub fn save_bench_report(name: &str, report: &BenchReport) {
    let dir = artifact_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(json) = serde_json::to_string(report) {
            let _ = std::fs::write(dir.join(format!("BENCH_{name}.json")), json);
        }
    }
}

/// Writes `contents` verbatim as `target/paper-artifacts/<file_name>`
/// under the workspace root, returning the written path (the scenario
/// report uses it for `SCENARIO_report.json`).
pub fn save_named_artifact(file_name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(file_name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// The five evaluation traces (re-exported for benches).
pub fn evaluation_traces() -> [PaperTrace; 5] {
    PaperTrace::EVALUATION
}

/// The five buffer columns of the paper's tables.
pub fn paper_buffers() -> [BufferKind; 5] {
    BufferKind::PAPER_COLUMNS
}

/// All four benchmarks.
pub fn paper_workloads() -> [WorkloadKind; 4] {
    WorkloadKind::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_cover_paper_matrix() {
        assert_eq!(evaluation_traces().len(), 5);
        assert_eq!(paper_buffers().len(), 5);
        assert_eq!(paper_workloads().len(), 4);
    }
}
