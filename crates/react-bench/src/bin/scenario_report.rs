//! The scenario figure-of-merit report runner and CI conformance gate.
//!
//! ```text
//! scenario_report                      # full matrix: print tables, write SCENARIO_report.json
//! scenario_report --check <baseline.json> [tolerance-scale]
//! scenario_report --write-baseline <path>
//! scenario_report --quick              # horizons capped at 15 min (preview only)
//! scenario_report --trace <cell-id>    # re-run one cell recording, export Perfetto JSON
//! ```
//!
//! The default mode expands the deduplicated scenario registry into the
//! full environment × buffer × seed matrix, runs it rayon-parallel
//! through the adaptive kernel (with step-attribution recording on —
//! bit-identical to the unrecorded run by the telemetry contract),
//! prints the environment / cell / attribution / normalized tables, and
//! writes the machine-readable report to
//! `target/paper-artifacts/SCENARIO_report.json` plus the per-cell
//! step-attribution profiles to `SCENARIO_attribution.json` / `.txt`.
//!
//! `--trace <cell-id>` (id as printed in the attribution table, e.g.
//! `react-plateau-sc/REACT/s0`) re-runs that one cell with full event
//! recording and writes a Chrome `trace_event` JSON — loadable in
//! Perfetto / `chrome://tracing` — next to the report.
//!
//! `--check` additionally diffs the fresh report against a committed
//! baseline (`ci/scenario-baseline.json` in CI) under the default
//! per-field tolerances — optionally scaled by `tolerance-scale` — and
//! exits non-zero listing every out-of-tolerance cell. Because every
//! scenario is seeded and deterministic, a violation means scenario
//! *behavior* changed: either a regression, or an intentional change
//! that must ship with a refreshed baseline (`--write-baseline`).
//!
//! `--quick` caps every horizon at 15 minutes for a fast local
//! preview; its numbers are **not** comparable to the committed
//! baseline, so it refuses to combine with `--check`.
//!
//! Adversarial scenarios add a resilience table — FoM retained against
//! the benign twin — gated like every other field. A cell whose run
//! panics is *poisoned*: the rest of the matrix still completes and
//! reports, the poisoned cells are listed by id, and the process exits
//! with code 3 (distinct from the gate's conformance failure).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::process::ExitCode;

use react_bench::save_named_artifact;
use react_buffers::BufferKind;
use react_core::scenario_report::{REPORT_BUFFERS, REPORT_SEEDS};
use react_core::{
    build_attributed_report, compare_reports, merged_attribution, render_attribution,
    render_class_sinks, report_scenarios, Scenario, ScenarioReport, Tolerances,
};
use react_telemetry::chrome_trace_json;
use react_units::Seconds;

/// Horizon cap for `--quick` previews.
const QUICK_HORIZON: Seconds = Seconds::new(900.0);

fn load(path: &str) -> Result<ScenarioReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Re-runs one matrix cell (id `scenario/buffer/s<seed>`) with full
/// event recording and writes the Chrome `trace_event` JSON artifact.
fn trace_cell(scenarios: &[Scenario], id: &str) -> Result<std::path::PathBuf, String> {
    let mut parts = id.rsplitn(3, '/');
    let (seed_part, buffer_part, scenario_part) = match (parts.next(), parts.next(), parts.next()) {
        (Some(s), Some(b), Some(sc)) => (s, b, sc),
        _ => return Err(format!("cell id {id:?} is not scenario/buffer/s<seed>")),
    };
    let seed: u64 = seed_part
        .strip_prefix('s')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("cell id {id:?}: seed field {seed_part:?} is not s<number>"))?;
    let buffer = BufferKind::from_label(buffer_part)
        .ok_or_else(|| format!("cell id {id:?}: unknown buffer {buffer_part:?}"))?;
    let base = scenarios
        .iter()
        .find(|s| s.name == scenario_part)
        .ok_or_else(|| format!("cell id {id:?}: unknown scenario {scenario_part:?}"))?;
    let cell = base.with_buffer(buffer).with_seed_salt(seed);
    let (_, recorder) = cell.run_traced(None);
    if recorder.dropped() > 0 {
        eprintln!(
            "scenario_report: trace ring overflowed, {} oldest event(s) dropped",
            recorder.dropped()
        );
    }
    let json = chrome_trace_json(&recorder.into_events(), id);
    save_named_artifact(
        &format!("SCENARIO_trace_{}.json", id.replace('/', "_")),
        &json,
    )
    .map_err(|e| format!("write trace: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned());
    let tolerance_scale: f64 = match args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 2))
    {
        Some(raw) => match raw.parse() {
            Ok(scale) => scale,
            Err(_) => {
                eprintln!("scenario_report: tolerance-scale {raw:?} is not a number");
                return ExitCode::from(2);
            }
        },
        None => 1.0,
    };
    let write_baseline = args
        .iter()
        .position(|a| a == "--write-baseline")
        .map(|i| args.get(i + 1).cloned());
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).cloned());

    if quick && (check.is_some() || write_baseline.is_some()) {
        // Preview horizons produce cells under the same ids as the
        // full matrix; letting them near a baseline would poison the
        // gate (or compare against one run's preview numbers).
        eprintln!("scenario_report: --quick output is not comparable to a committed baseline");
        return ExitCode::from(2);
    }
    if let Some(None) = check {
        eprintln!("usage: scenario_report --check <baseline.json> [tolerance-scale]");
        return ExitCode::from(2);
    }
    if let Some(None) = write_baseline {
        eprintln!("usage: scenario_report --write-baseline <path>");
        return ExitCode::from(2);
    }
    if let Some(None) = trace {
        eprintln!("usage: scenario_report --trace <scenario/buffer/s<seed>>");
        return ExitCode::from(2);
    }

    let mut scenarios = report_scenarios();
    if quick {
        for s in &mut scenarios {
            s.horizon = s.horizon.min(QUICK_HORIZON);
        }
    }

    let started = std::time::Instant::now();
    let (report, attributions) =
        build_attributed_report(&scenarios, &REPORT_BUFFERS, &REPORT_SEEDS, true);
    let elapsed = started.elapsed().as_secs_f64();

    print!("{}", report.render_environments().render());
    println!();
    print!("{}", report.render_cells().render());
    println!();
    print!("{}", render_attribution(&attributions).render());
    println!();
    print!("{}", render_class_sinks(&attributions).render());
    println!();
    print!("{}", merged_attribution(&attributions).render());
    println!();
    if !report.resilience().is_empty() {
        print!("{}", report.render_resilience().render());
        println!();
    }
    print!("{}", report.render_normalized().render());
    println!(
        "\n{} cells over {} environments in {:.1} s wall-clock \
         ({:.1} s total cell runtime, single-core equivalent){}",
        report.cells.len(),
        report.environments.len(),
        elapsed,
        report.total_cell_seconds(),
        if quick { "  (--quick preview)" } else { "" }
    );

    if !report.poisoned.is_empty() {
        eprintln!(
            "scenario_report: {} poisoned cell(s) — the matrix completed around them:",
            report.poisoned.len()
        );
        for p in &report.poisoned {
            eprintln!("  {}: {}", p.id(), p.message);
        }
    }

    let json = match serde_json::to_string(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("scenario_report: serialize: {e:?}");
            return ExitCode::from(2);
        }
    };
    match save_named_artifact("SCENARIO_report.json", &json) {
        Ok(path) => println!("report written to {}", path.display()),
        Err(e) => {
            eprintln!("scenario_report: write report: {e}");
            return ExitCode::from(2);
        }
    }

    let attr_json = match serde_json::to_string(&attributions) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("scenario_report: serialize attribution: {e:?}");
            return ExitCode::from(2);
        }
    };
    match save_named_artifact("SCENARIO_attribution.json", &attr_json) {
        Ok(path) => println!("attribution written to {}", path.display()),
        Err(e) => {
            eprintln!("scenario_report: write attribution: {e}");
            return ExitCode::from(2);
        }
    }
    let attr_text = format!(
        "{}\n{}\n{}",
        render_attribution(&attributions).render(),
        render_class_sinks(&attributions).render(),
        merged_attribution(&attributions).render()
    );
    if let Err(e) = save_named_artifact("SCENARIO_attribution.txt", &attr_text) {
        eprintln!("scenario_report: write attribution table: {e}");
        return ExitCode::from(2);
    }

    if let Some(Some(ref id)) = trace {
        match trace_cell(&scenarios, id) {
            Ok(path) => println!("trace for {id} written to {}", path.display()),
            Err(e) => {
                eprintln!("scenario_report: --trace: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Load the check baseline *before* any baseline write, so
    // `--check X --write-baseline X` gates against the committed file
    // rather than the bytes we just produced.
    let check_baseline = match check {
        Some(Some(ref path)) => match load(path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("scenario_report: {e}");
                return ExitCode::from(2);
            }
        },
        _ => None,
    };

    if let Some(Some(path)) = write_baseline {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("scenario_report: write baseline {path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {path}");
    }

    if let (Some(Some(path)), Some(baseline)) = (check, check_baseline) {
        let tol = Tolerances::default().scaled(tolerance_scale);
        let violations = compare_reports(&baseline, &report, &tol);
        let new_cells = report
            .cells
            .iter()
            .filter(|c| baseline.cell(&c.id()).is_none())
            .count();
        if new_cells > 0 {
            println!("{new_cells} cell(s) have no baseline yet (new scenarios)");
        }
        if violations.is_empty() {
            println!(
                "scenario gate: all {} baseline cells conformant (tolerance ×{tolerance_scale})",
                baseline.cells.len()
            );
        } else {
            eprintln!(
                "scenario gate: {} violation(s) vs {path} (tolerance ×{tolerance_scale}):",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!("if the change is intentional, refresh the baseline with --write-baseline");
            return ExitCode::FAILURE;
        }
    }

    if !report.poisoned.is_empty() {
        // Distinct from the gate's FAILURE so CI logs separate "a cell
        // crashed" from "a cell drifted".
        return ExitCode::from(3);
    }

    ExitCode::SUCCESS
}
