//! Regenerates every table of the paper in one run.
//!
//! ```text
//! cargo run --release -p react-bench --bin tables
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use react_bench::render_ops_table;
use react_buffers::BufferKind;
use react_core::report::TextTable;
use react_core::{ExperimentMatrix, WorkloadKind};
use react_traces::{paper_trace, PaperTrace, TABLE3_TARGETS};

fn main() {
    // Table 3 — trace statistics.
    let mut t3 = TextTable::new(
        "Table 3: power traces",
        &[
            "Trace",
            "Time (s)",
            "Avg. Pow. (mW)",
            "Power CV",
            "Paper CV",
        ],
    );
    for row in TABLE3_TARGETS {
        let stats = paper_trace(row.trace).stats();
        t3.push_row(&[
            row.trace.label().to_string(),
            format!("{:.0}", stats.duration.get()),
            format!("{:.3}", stats.mean_power.to_milli()),
            format!("{:.0}%", stats.cv_percent()),
            format!("{:.0}%", row.cv_percent),
        ]);
    }
    println!("{}", t3.render());

    // Table 4 — latency.
    let mut t4 = TextTable::new(
        "Table 4: system latency (s)",
        &["Trace", "770 µF", "10 mF", "17 mF", "Morphy", "REACT"],
    );
    let de = ExperimentMatrix::run(WorkloadKind::DataEncryption);
    let mut means = vec![0.0f64; BufferKind::PAPER_COLUMNS.len()];
    let mut counts = vec![0usize; BufferKind::PAPER_COLUMNS.len()];
    for row in &de.rows {
        let mut cells = vec![row.trace.label().to_string()];
        for (i, cell) in row.cells.iter().enumerate() {
            match cell.outcome.metrics.first_on_latency {
                Some(l) => {
                    cells.push(format!("{:.2}", l.get()));
                    means[i] += l.get();
                    counts[i] += 1;
                }
                None => cells.push("-".to_string()),
            }
        }
        t4.push_row(&cells);
    }
    let mut mean_row = vec!["Mean".to_string()];
    for (m, c) in means.iter().zip(&counts) {
        mean_row.push(if *c > 0 {
            format!("{:.2}", m / *c as f64)
        } else {
            "-".into()
        });
    }
    t4.push_row(&mean_row);
    println!("{}", t4.render());

    // Table 2 — DE / SC / RT.
    println!(
        "{}",
        render_ops_table("Table 2a: Data Encryption", &de).render()
    );
    let sc = ExperimentMatrix::run(WorkloadKind::SenseCompute);
    println!(
        "{}",
        render_ops_table("Table 2b: Sense and Compute", &sc).render()
    );
    let rt = ExperimentMatrix::run(WorkloadKind::RadioTransmit);
    println!(
        "{}",
        render_ops_table("Table 2c: Radio Transmit", &rt).render()
    );

    // Table 5 — PF Rx/Tx.
    let pf = ExperimentMatrix::run(WorkloadKind::PacketForward);
    let mut t5 = TextTable::new(
        "Table 5: Packet Forwarding (Rx / Tx)",
        &["Trace", "770 µF", "10 mF", "17 mF", "Morphy", "REACT"],
    );
    for row in &pf.rows {
        let mut cells = vec![row.trace.label().to_string()];
        for cell in &row.cells {
            cells.push(format!(
                "{}/{}",
                cell.outcome.metrics.aux_completed, cell.outcome.metrics.ops_completed
            ));
        }
        t5.push_row(&cells);
    }
    println!("{}", t5.render());

    // Fig. 7 summary — normalized scores.
    println!("== Fig. 7: normalized performance (to REACT) ==");
    let mut all_scores = Vec::new();
    for (label, matrix) in [("DE", &de), ("SC", &sc), ("RT", &rt), ("PF", &pf)] {
        let scores = react_core::fom::normalize_to_react(matrix);
        print!("{label}: ");
        for s in &scores {
            print!("{}={:.2} ", s.buffer.label(), s.score);
        }
        println!();
        all_scores.push(scores);
    }
    for baseline in [
        BufferKind::Static770uF,
        BufferKind::Static10mF,
        BufferKind::Static17mF,
        BufferKind::Morphy,
    ] {
        let imp = react_core::fom::mean_improvement_over(&all_scores, baseline);
        println!(
            "REACT improvement over {}: {:+.1}%",
            baseline.label(),
            imp * 100.0
        );
    }
    let _ = PaperTrace::EVALUATION; // anchor
}
