//! Exports one simulation cell's telemetry event stream as a timeline.
//!
//! ```text
//! sim_trace <scenario>                      # registry cell, salt 0
//! sim_trace <scenario/buffer/s<seed>>       # any report-matrix cell
//! sim_trace <cell> --format chrome|text     # one format only (default both)
//! sim_trace <cell> --capacity <events>      # ring size (default 65536)
//! ```
//!
//! Re-runs the named cell with a `RingRecorder` attached and writes
//! the captured stream to `target/paper-artifacts/`:
//!
//! * `TRACE_<cell>.json` — Chrome `trace_event` JSON. Load it in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!   kernel strides and fine-step spans land on the `kernel` track,
//!   boots and brown-outs on `lifecycle`, and detections plus
//!   backoff holds on `defense`, all on the simulated-time axis.
//! * `TRACE_<cell>.txt` — the same stream as a plain-text timeline,
//!   one `<sim-time>  <event>` line per event.
//!
//! Recording is observational: by the telemetry bit-identity contract
//! (pinned in `tests/telemetry.rs`), the traced run's metrics equal
//! the untraced run's bit for bit.
//!
//! Exit codes: 0 success, 2 usage/configuration/IO error.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::process::ExitCode;

use react_bench::save_named_artifact;
use react_buffers::BufferKind;
use react_core::{find_scenario, Scenario};
use react_telemetry::{chrome_trace_json, text_timeline};

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("usage: sim_trace {flag} <value>")),
        },
        None => Ok(None),
    }
}

/// Resolves a bare scenario name (registry buffer, salt 0) or a full
/// `scenario/buffer/s<seed>` cell id to the scenario to trace.
fn resolve_cell(id: &str) -> Result<Scenario, String> {
    if !id.contains('/') {
        return find_scenario(id)
            .copied()
            .ok_or_else(|| format!("unknown scenario {id:?}"));
    }
    let mut parts = id.rsplitn(3, '/');
    let (seed_part, buffer_part, scenario_part) = match (parts.next(), parts.next(), parts.next()) {
        (Some(s), Some(b), Some(sc)) => (s, b, sc),
        _ => return Err(format!("cell id {id:?} is not scenario/buffer/s<seed>")),
    };
    let seed: u64 = seed_part
        .strip_prefix('s')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("cell id {id:?}: seed field {seed_part:?} is not s<number>"))?;
    let buffer = BufferKind::from_label(buffer_part)
        .ok_or_else(|| format!("cell id {id:?}: unknown buffer {buffer_part:?}"))?;
    let base = find_scenario(scenario_part)
        .ok_or_else(|| format!("cell id {id:?}: unknown scenario {scenario_part:?}"))?;
    Ok(base.with_buffer(buffer).with_seed_salt(seed))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let format = flag_value(&args, "--format")?;
    let (chrome, text) = match format.as_deref() {
        None => (true, true),
        Some("chrome") => (true, false),
        Some("text") => (false, true),
        Some(other) => return Err(format!("--format {other:?} is not chrome or text")),
    };
    let capacity: Option<usize> = match flag_value(&args, "--capacity")? {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--capacity {raw:?} is not a count"))?,
        ),
        None => None,
    };
    let id = args
        .iter()
        .position(|a| !a.starts_with("--"))
        .filter(|&i| {
            // A flag's value is not the cell argument.
            i == 0 || !matches!(args[i - 1].as_str(), "--format" | "--capacity")
        })
        .map(|i| args[i].clone())
        .ok_or_else(|| {
            "usage: sim_trace <scenario | scenario/buffer/s<seed>> \
             [--format chrome|text] [--capacity <events>]"
                .to_string()
        })?;

    let cell = resolve_cell(&id)?;
    println!(
        "tracing {id}: {} × {} over {:.0} s (dt {} ms)",
        cell.env.label(),
        cell.buffer.label(),
        cell.horizon.get(),
        cell.dt.get() * 1e3,
    );
    let (outcome, recorder) = cell.run_traced(capacity);
    let events = recorder.len();
    if recorder.dropped() > 0 {
        eprintln!(
            "sim_trace: ring overflowed, oldest {} event(s) dropped — raise --capacity \
             for full coverage",
            recorder.dropped()
        );
    }
    println!(
        "{} event(s) captured over {} engine steps",
        events, outcome.metrics.engine_steps
    );

    let stream = recorder.into_events();
    let stem = id.replace('/', "_");
    if chrome {
        let json = chrome_trace_json(&stream, &id);
        let path = save_named_artifact(&format!("TRACE_{stem}.json"), &json)
            .map_err(|e| format!("write trace: {e}"))?;
        println!(
            "chrome trace written to {} (load in Perfetto)",
            path.display()
        );
    }
    if text {
        let timeline = text_timeline(&stream);
        let path = save_named_artifact(&format!("TRACE_{stem}.txt"), &timeline)
            .map_err(|e| format!("write timeline: {e}"))?;
        println!("text timeline written to {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("sim_trace: {e}");
            ExitCode::from(2)
        }
    }
}
