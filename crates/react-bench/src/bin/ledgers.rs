//! Per-buffer energy-ledger breakdown for one (trace, workload) pair —
//! the diagnostic view behind §5.5's efficiency discussion.
//!
//! ```text
//! cargo run --release -p react-bench --bin ledgers [trace] [workload]
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use react_buffers::BufferKind;
use react_core::{Experiment, WorkloadKind};
use react_traces::PaperTrace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = match args.get(1).map(String::as_str) {
        Some("cart") | None => PaperTrace::RfCart,
        Some("obs") => PaperTrace::RfObstructed,
        Some("mob") => PaperTrace::RfMobile,
        Some("camp") => PaperTrace::SolarCampus,
        Some("comm") => PaperTrace::SolarCommute,
        Some(other) => panic!("unknown trace {other}"),
    };
    let workload = match args.get(2).map(String::as_str) {
        Some("de") | None => WorkloadKind::DataEncryption,
        Some("sc") => WorkloadKind::SenseCompute,
        Some("rt") => WorkloadKind::RadioTransmit,
        Some("pf") => WorkloadKind::PacketForward,
        Some(other) => panic!("unknown workload {other}"),
    };

    println!(
        "trace={} workload={} (all numbers mJ)",
        trace.label(),
        workload.label()
    );
    println!(
        "{:>8} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>7}",
        "buffer",
        "ops",
        "harvest",
        "clip",
        "leak",
        "diode",
        "switch",
        "load",
        "ovrhd",
        "fail",
        "miss",
        "on-time"
    );
    for kind in BufferKind::PAPER_COLUMNS {
        let out = Experiment::new(kind, workload).run_paper_trace(trace);
        let m = &out.metrics;
        let l = &m.ledger;
        println!(
            "{:>8} {:>7} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>6} {:>6} {:>7.0}",
            kind.label(),
            m.ops_completed,
            l.harvested.to_milli(),
            l.clipped.to_milli(),
            l.leaked.to_milli(),
            l.diode_loss.to_milli(),
            l.switch_loss.to_milli(),
            l.load_consumed.to_milli(),
            l.overhead_consumed.to_milli(),
            m.ops_failed,
            m.events_missed,
            m.on_time.get(),
        );
    }
}
