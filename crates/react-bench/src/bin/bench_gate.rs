//! CI perf-regression gate for the `engine` bench.
//!
//! Usage: `bench_gate <baseline.json> <current.json> [max-regression]`
//!
//! Compares each baseline scenario's *speedup* (adaptive vs baseline
//! kernel wall-clock, measured within one run on one machine — the only
//! metric that transfers across CI runners) against the current
//! `BENCH_engine.json`. Exits non-zero when any scenario's speedup
//! falls more than `max-regression` (default 0.20 = 20 %) below its
//! committed baseline, or when a baseline scenario is missing from the
//! current report.

use std::process::ExitCode;

use react_bench::BenchReport;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [max-regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(3)
        .map(|s| s.parse().expect("max-regression must be a number"))
        .unwrap_or(0.20);

    let (baseline, current) = match (load(&args[1]), load(&args[2])) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    println!(
        "{:<24} {:>10} {:>10} {:>8}  verdict",
        "scenario", "base", "current", "floor"
    );
    for base in &baseline.scenarios {
        let floor = base.speedup * (1.0 - max_regression);
        match current.scenario(&base.name) {
            Some(cur) => {
                let ok = cur.speedup >= floor;
                failed |= !ok;
                println!(
                    "{:<24} {:>9.2}× {:>9.2}× {:>7.2}×  {}",
                    base.name,
                    base.speedup,
                    cur.speedup,
                    floor,
                    if ok { "ok" } else { "REGRESSED" }
                );
            }
            None => {
                failed = true;
                println!(
                    "{:<24} {:>9.2}× {:>10} {:>7.2}×  MISSING",
                    base.name, base.speedup, "-", floor
                );
            }
        }
    }
    for cur in &current.scenarios {
        if baseline.scenario(&cur.name).is_none() {
            println!(
                "{:<24} {:>10} {:>9.2}× {:>8}  new (no baseline)",
                cur.name, "-", cur.speedup, "-"
            );
        }
    }

    if failed {
        eprintln!(
            "bench_gate: speedup regression >{:.0}% vs baseline",
            max_regression * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_gate: all scenarios within {:.0}% of baseline",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    }
}
