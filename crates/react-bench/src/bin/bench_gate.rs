//! CI perf-regression gate for the `engine` bench.
//!
//! Usage: `bench_gate <baseline.json> <current.json> [max-regression]`
//!
//! Compares each baseline scenario's *speedup* (adaptive vs baseline
//! kernel wall-clock, measured within one run on one machine — the only
//! metric that transfers across CI runners) against the current
//! `BENCH_engine.json`. Exits non-zero, naming every offending
//! scenario, when any scenario's speedup drifts more than
//! `max-regression` (default 0.20 = 20 %) from its committed baseline
//! **in either direction** — below is a performance regression; above
//! means the kernel got structurally faster and the committed baseline
//! is stale, which would silently slacken the gate for every later
//! change if left uncommitted. Also fails when a baseline scenario is
//! missing from the current report.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::process::ExitCode;

use react_bench::BenchReport;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [max-regression]");
        return ExitCode::from(2);
    }
    let max_regression: f64 = args
        .get(3)
        .map(|s| s.parse().expect("max-regression must be a number"))
        .unwrap_or(0.20);

    let (baseline, current) = match (load(&args[1]), load(&args[2])) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut offenders: Vec<String> = Vec::new();
    println!(
        "{:<24} {:>10} {:>10} {:>8} {:>8}  verdict",
        "scenario", "base", "current", "floor", "ceiling"
    );
    for base in &baseline.scenarios {
        let floor = base.speedup * (1.0 - max_regression);
        let ceiling = base.speedup * (1.0 + max_regression);
        match current.scenario(&base.name) {
            Some(cur) => {
                let verdict = if cur.speedup < floor {
                    offenders.push(format!(
                        "{}: speedup {:.2}× fell below the {:.2}× floor (baseline {:.2}×) — \
                         performance regression",
                        base.name, cur.speedup, floor, base.speedup
                    ));
                    "REGRESSED"
                } else if cur.speedup > ceiling {
                    offenders.push(format!(
                        "{}: speedup {:.2}× exceeds the {:.2}× ceiling (baseline {:.2}×) — \
                         baseline is stale, refresh ci/bench-baseline.json from \
                         BENCH_engine.json",
                        base.name, cur.speedup, ceiling, base.speedup
                    ));
                    "STALE BASELINE"
                } else {
                    "ok"
                };
                println!(
                    "{:<24} {:>9.2}× {:>9.2}× {:>7.2}× {:>7.2}×  {}",
                    base.name, base.speedup, cur.speedup, floor, ceiling, verdict
                );
            }
            None => {
                offenders.push(format!(
                    "{}: scenario missing from the current report",
                    base.name
                ));
                println!(
                    "{:<24} {:>9.2}× {:>10} {:>7.2}× {:>7.2}×  MISSING",
                    base.name, base.speedup, "-", floor, ceiling
                );
            }
        }
    }
    for cur in &current.scenarios {
        if baseline.scenario(&cur.name).is_none() {
            println!(
                "{:<24} {:>10} {:>9.2}× {:>8} {:>8}  new (no baseline)",
                cur.name, "-", cur.speedup, "-", "-"
            );
        }
    }

    if offenders.is_empty() {
        println!(
            "bench_gate: all scenarios within ±{:.0}% of baseline",
            max_regression * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: {} scenario(s) outside ±{:.0}% of baseline:",
            offenders.len(),
            max_regression * 100.0
        );
        for o in &offenders {
            eprintln!("  {o}");
        }
        ExitCode::FAILURE
    }
}
