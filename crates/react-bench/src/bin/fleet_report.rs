//! The fleet-scale percentile report runner and CI fleet-smoke gate.
//!
//! ```text
//! fleet_report                          # full fleet: 100k nodes, week horizon
//! fleet_report --quick                  # CI fleet: 10k nodes, 1-day horizon
//! fleet_report --check <baseline.json> [tolerance-scale]
//! fleet_report --write-baseline <path>
//! fleet_report --checkpoint <path>      # resume an interrupted run
//! fleet_report --nodes <n>              # override the fleet size
//! fleet_report --scenario <name>        # override the base scenario
//! ```
//!
//! Fans one base scenario (default `rf-sparse-week`) out to a salted
//! fleet via the batched kernel, reduces it shard by shard into
//! streaming percentile histograms, prints the summary table, and
//! writes `target/paper-artifacts/FLEET_report.json`.
//!
//! Unlike `scenario_report`, the committed baseline **is** the
//! `--quick` configuration: CI runs `--quick --check
//! ci/fleet-baseline.json`, and the report fingerprint binds the gate
//! to the exact fleet configuration — a full-size report can never
//! silently gate against the quick baseline or vice versa.
//!
//! `--checkpoint` persists per-shard aggregates; an interrupted run
//! re-invoked with the same configuration and checkpoint path resumes,
//! losing at most one shard of work, and produces bit-identical
//! aggregates to an uninterrupted run.
//!
//! Every run also collects the fleet-wide step-attribution profile
//! (bit-identical metrics by the telemetry contract), prints the top
//! fine-step sources — where the whole fleet's engine steps go — and
//! writes `FLEET_attribution.json` / `.txt`. Shards resumed from a
//! checkpoint carry no recorder state, so a resumed run's profile
//! covers only the freshly executed shards.
//!
//! Exit codes: 0 success, 1 gate violation, 2 usage/configuration/IO
//! error (the conventions `scenario_report` uses).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::process::ExitCode;

use react_bench::save_named_artifact;
use react_core::{
    compare_fleet_reports, find_scenario, run_fleet, FleetBins, FleetReport, FleetRunOptions,
    FleetSpec, FleetTolerances,
};
use react_units::Seconds;

/// Default base scenario: the cheapest salt-sensitive week-class cell.
const DEFAULT_SCENARIO: &str = "rf-sparse-week";

/// Full-fleet node count (the acceptance-scale run).
const FULL_NODES: usize = 100_000;

/// Quick-fleet node count (the CI gate).
const QUICK_NODES: usize = 10_000;

/// Quick-mode horizon cap: one day.
const QUICK_HORIZON: Seconds = Seconds::new(86_400.0);

/// The committed fleet seed (arbitrary, fixed forever).
const FLEET_SEED: u64 = 0x000F_1EE7;

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("usage: fleet_report {flag} <value>")),
        },
        None => Ok(None),
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = flag_value(&args, "--check")?;
    let tolerance_scale: f64 = match args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 2))
        .filter(|raw| !raw.starts_with("--"))
    {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("tolerance-scale {raw:?} is not a number"))?,
        None => 1.0,
    };
    let write_baseline = flag_value(&args, "--write-baseline")?;
    let checkpoint = flag_value(&args, "--checkpoint")?;
    let scenario_name = flag_value(&args, "--scenario")?;
    let nodes_override: Option<usize> = match flag_value(&args, "--nodes")? {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--nodes {raw:?} is not a count"))?,
        ),
        None => None,
    };

    let name = scenario_name.as_deref().unwrap_or(DEFAULT_SCENARIO);
    let mut base = *find_scenario(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
    if quick {
        base.horizon = base.horizon.min(QUICK_HORIZON);
    }
    let nodes = nodes_override.unwrap_or(if quick { QUICK_NODES } else { FULL_NODES });

    let mut spec = FleetSpec::new(base, nodes, FLEET_SEED);
    spec.bins = FleetBins::calibrated(&base, FLEET_SEED);

    let opts = FleetRunOptions {
        checkpoint: checkpoint.map(std::path::PathBuf::from),
        max_shards: None,
        parallel: true,
        attribution: true,
    };

    println!(
        "fleet: {} × {nodes} nodes, horizon {:.0} s, seed {:#x}, {} shards of {} (fingerprint {})",
        spec.base.name,
        spec.base.horizon.get(),
        spec.fleet_seed,
        spec.shard_count(),
        spec.shard_size,
        spec.fingerprint(),
    );

    let started = std::time::Instant::now();
    let result = run_fleet(&spec, &opts)?;
    let elapsed = started.elapsed().as_secs_f64();
    if result.shards_resumed > 0 {
        println!(
            "resumed {} shard(s) from checkpoint; ran {} fresh",
            result.shards_resumed,
            result.shards_done - result.shards_resumed
        );
    }

    let report = FleetReport::from_run(&spec, result.aggregate, elapsed);
    let s = &report.summary;
    println!(
        "\n{:>12}  {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "mean", "p5", "p50", "p95", "p99"
    );
    println!(
        "{:>12}  {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
        "fom (ops)", s.fom_mean, s.fom_p5, s.fom_p50, s.fom_p95, s.fom_p99
    );
    println!(
        "{:>12}  {:>12.4} {:>12.4} {:>12.4} {:>12} {:>12}",
        "on-frac", s.on_frac_mean, s.on_frac_p5, s.on_frac_p50, "-", "-"
    );
    println!(
        "{:>12}  {:>12} {:>12} {:>12.1} {:>12.1} {:>12}",
        "outage (s)", "-", "-", s.outage_p50_s, s.outage_p95_s, "-"
    );
    println!(
        "\n{} nodes, {:.0} total ops, worst outage {:.1} s, mean boots {:.1}; {:.1} s wall-clock",
        s.nodes, s.total_ops, s.outage_max_s, s.boots_mean, elapsed
    );

    let json = serde_json::to_string(&report).map_err(|e| format!("serialize: {e}"))?;
    let path = save_named_artifact("FLEET_report.json", &json)
        .map_err(|e| format!("write report: {e}"))?;
    println!("report written to {}", path.display());

    if let Some(attr) = &result.attribution {
        println!("\ntop fine-step sources across the fleet:");
        for row in attr.rows().iter().filter(|r| r.reason.is_some()).take(8) {
            let share = if attr.total_steps() == 0 {
                0.0
            } else {
                100.0 * row.steps as f64 / attr.total_steps() as f64
            };
            println!(
                "  {:>28}  {:>14} steps  {share:>5.1} %  {:>14.1} sim-s",
                row.label(),
                row.steps,
                row.seconds
            );
        }
        if result.shards_resumed > 0 {
            println!(
                "  (profile covers the {} freshly executed shard(s) only)",
                result.shards_done - result.shards_resumed
            );
        }
        let attr_json = serde_json::to_string(attr).map_err(|e| format!("serialize: {e}"))?;
        let path = save_named_artifact("FLEET_attribution.json", &attr_json)
            .map_err(|e| format!("write attribution: {e}"))?;
        println!("attribution written to {}", path.display());
        save_named_artifact("FLEET_attribution.txt", &attr.render())
            .map_err(|e| format!("write attribution table: {e}"))?;
    }

    // Load the check baseline *before* any baseline write, so
    // `--check X --write-baseline X` gates against the committed file.
    let check_baseline = match &check {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let b: FleetReport = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
            Some(b)
        }
        None => None,
    };

    if let Some(path) = &write_baseline {
        std::fs::write(path, &json).map_err(|e| format!("write baseline {path}: {e}"))?;
        println!("baseline written to {path}");
    }

    if let (Some(path), Some(baseline)) = (check, check_baseline) {
        let tol = FleetTolerances::default().scaled(tolerance_scale);
        let violations = compare_fleet_reports(&baseline, &report, &tol);
        if violations.is_empty() {
            println!(
                "fleet gate: conformant with {path} (tolerance ×{tolerance_scale}, fingerprint {})",
                report.fingerprint
            );
        } else {
            eprintln!(
                "fleet gate: {} violation(s) vs {path} (tolerance ×{tolerance_scale}):",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!("if the change is intentional, refresh the baseline with --write-baseline");
            return Ok(ExitCode::FAILURE);
        }
    }

    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fleet_report: {e}");
            ExitCode::from(2)
        }
    }
}
