//! The fault-campaign report runner and CI conformance gate.
//!
//! ```text
//! fault_report                         # full campaign matrix: tables + FAULT_report.json
//! fault_report --check <baseline.json> [tolerance-scale]
//! fault_report --write-baseline <path>
//! fault_report --quick                 # horizons capped at 15 min (preview only)
//! ```
//!
//! The default mode runs the fault-campaign registry — every drift
//! campaign (capacitance fade + comparator offset, harvester derate,
//! stuck-closed switch, stochastic drift) as an unaudited/audited twin
//! pair, plus the healthy twins the survival scoring normalizes
//! against — prints the cell and survival tables, and writes the
//! machine-readable report to `target/paper-artifacts/FAULT_report.json`.
//!
//! `--check` diffs the fresh report against a committed baseline
//! (`ci/fault-baseline.json` in CI) under the default per-field
//! tolerances — optionally scaled by `tolerance-scale` — and exits
//! non-zero listing every out-of-tolerance cell. On top of the usual
//! FoM fields the gate covers the fault counters (`faults-injected`,
//! `audit-trips`), survival ratios, and flags any cell whose auditor
//! detection *flipped* (tripping where the baseline was clean, or
//! going silent where the baseline tripped). Because fault plans are
//! seeded per cell, a violation means fault *behavior* changed: either
//! a regression, or an intentional change that must ship with a
//! refreshed baseline (`--write-baseline`).
//!
//! `--quick` caps every horizon at 15 minutes for a fast local
//! preview; its numbers are **not** comparable to the committed
//! baseline, so it refuses to combine with `--check`.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::process::ExitCode;

use react_bench::save_named_artifact;
use react_core::{build_fault_report, compare_reports, ScenarioReport, Tolerances};
use react_units::Seconds;

/// Horizon cap for `--quick` previews.
const QUICK_HORIZON: Seconds = Seconds::new(900.0);

fn load(path: &str) -> Result<ScenarioReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned());
    let tolerance_scale: f64 = match args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 2))
    {
        Some(raw) => match raw.parse() {
            Ok(scale) => scale,
            Err(_) => {
                eprintln!("fault_report: tolerance-scale {raw:?} is not a number");
                return ExitCode::from(2);
            }
        },
        None => 1.0,
    };
    let write_baseline = args
        .iter()
        .position(|a| a == "--write-baseline")
        .map(|i| args.get(i + 1).cloned());

    if quick && (check.is_some() || write_baseline.is_some()) {
        eprintln!("fault_report: --quick output is not comparable to a committed baseline");
        return ExitCode::from(2);
    }
    if let Some(None) = check {
        eprintln!("usage: fault_report --check <baseline.json> [tolerance-scale]");
        return ExitCode::from(2);
    }
    if let Some(None) = write_baseline {
        eprintln!("usage: fault_report --write-baseline <path>");
        return ExitCode::from(2);
    }

    let started = std::time::Instant::now();
    let report = build_fault_report(quick.then_some(QUICK_HORIZON), true);
    let elapsed = started.elapsed().as_secs_f64();

    print!("{}", report.render_cells().render());
    println!();
    print!("{}", report.render_survival().render());
    println!(
        "\n{} cells ({} survival pairs) in {:.1} s wall-clock{}",
        report.cells.len(),
        report.survival().len(),
        elapsed,
        if quick { "  (--quick preview)" } else { "" }
    );

    if !report.poisoned.is_empty() {
        eprintln!(
            "fault_report: {} poisoned cell(s) — the matrix completed around them:",
            report.poisoned.len()
        );
        for p in &report.poisoned {
            eprintln!("  {}: {}", p.id(), p.message);
        }
    }

    let json = match serde_json::to_string(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("fault_report: serialize: {e:?}");
            return ExitCode::from(2);
        }
    };
    match save_named_artifact("FAULT_report.json", &json) {
        Ok(path) => println!("report written to {}", path.display()),
        Err(e) => {
            eprintln!("fault_report: write report: {e}");
            return ExitCode::from(2);
        }
    }

    // Load the check baseline *before* any baseline write, so
    // `--check X --write-baseline X` gates against the committed file
    // rather than the bytes we just produced.
    let check_baseline = match check {
        Some(Some(ref path)) => match load(path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("fault_report: {e}");
                return ExitCode::from(2);
            }
        },
        _ => None,
    };

    if let Some(Some(path)) = write_baseline {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("fault_report: write baseline {path}: {e}");
            return ExitCode::from(2);
        }
        println!("baseline written to {path}");
    }

    if let (Some(Some(path)), Some(baseline)) = (check, check_baseline) {
        let tol = Tolerances::default().scaled(tolerance_scale);
        let violations = compare_reports(&baseline, &report, &tol);
        let new_cells = report
            .cells
            .iter()
            .filter(|c| baseline.cell(&c.id()).is_none())
            .count();
        if new_cells > 0 {
            println!("{new_cells} cell(s) have no baseline yet (new campaigns)");
        }
        if violations.is_empty() {
            println!(
                "fault gate: all {} baseline cells conformant (tolerance ×{tolerance_scale})",
                baseline.cells.len()
            );
        } else {
            eprintln!(
                "fault gate: {} violation(s) vs {path} (tolerance ×{tolerance_scale}):",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!("if the change is intentional, refresh the baseline with --write-baseline");
            return ExitCode::FAILURE;
        }
    }

    if !report.poisoned.is_empty() {
        // Distinct from the gate's FAILURE so CI logs separate "a cell
        // crashed" from "a cell drifted".
        return ExitCode::from(3);
    }

    ExitCode::SUCCESS
}
