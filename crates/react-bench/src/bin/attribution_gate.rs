//! CI kernel-overhead budget gate for the scenario matrix's
//! step-attribution profile.
//!
//! Usage:
//!   `attribution_gate <baseline.json> <current-attribution.json> [max-drift]`
//!   `attribution_gate --write-baseline <path> <current-attribution.json>`
//!
//! The scenario conformance gate pins *what* the matrix computes; this
//! gate pins *how hard the kernel works to compute it*. Each baseline
//! entry budgets one fallback class — engine steps per simulated hour,
//! either matrix-wide over the benign cells (`"cell": "*"`) or for one
//! named cell — against the fresh `SCENARIO_attribution.json` the
//! conformance gate just produced. Like `bench_gate`, the comparison is
//! two-sided:
//!
//! * above the budget (more fine-stepping) — the kernel REGRESSED: a
//!   change re-opened a fallback path that had been collapsed into
//!   closed-form strides;
//! * below the floor (much less fine-stepping) — the committed baseline
//!   is STALE: the kernel got structurally leaner and the win must be
//!   re-pinned (refresh `ci/attribution-baseline.json` with
//!   `--write-baseline`), otherwise the slack would mask the next
//!   regression.
//!
//! Class labels use the attribution table's vocabulary, e.g.
//! `"sleep fine:guard-band"` or `"idle fine:transition-due"`.
//! `fine:mcu-active` classes are workload-driven (the MCU really is
//! awake), so `--write-baseline` does not budget them; coarse bins are
//! the steps the kernel is *supposed* to take and are likewise not
//! budgeted. Cells whose scenario runs an `attack/*` environment are
//! excluded from the matrix-wide rows — adversarial fields exist to
//! force fine-stepping, so they would drown the benign budget.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::process::ExitCode;

use react_core::find_scenario;
use serde::Value;

/// Tolerated relative drift per entry (either direction) before the
/// gate fails; overridable as the third CLI argument.
const DEFAULT_MAX_DRIFT: f64 = 0.25;

/// Absolute slack (steps per simulated hour) under which drift is
/// always tolerated, so near-zero budgets (a fully collapsed class)
/// don't flap on a single libm-shifted step.
const ABS_SLACK_PER_HOUR: f64 = 60.0;

/// Cell × class budgets always emitted by `--write-baseline`, on top
/// of the matrix-wide rows: the named step sinks the staged solve, the
/// guard-band microstate offset, and the idle dead-band bulk stride
/// were built to collapse. Pinning them per cell keeps a regression in
/// one sink from hiding inside the matrix-wide average.
const PINNED_CELLS: &[(&str, &str)] = &[
    ("react-plateau-sc/REACT/s0", "sleep fine:no-closed-form"),
    ("react-plateau-sc/REACT/s0", "sleep fine:guard-band"),
    ("stormy-day-morphy-de/Morphy/s1", "idle fine:transition-due"),
];

/// One parsed attribution cell from `SCENARIO_attribution.json`.
struct Cell {
    id: String,
    scenario: String,
    hours: f64,
    /// `(regime, class)` → steps, e.g. `("sleep", "guard-band")`.
    rows: Vec<(String, String, f64)>,
}

impl Cell {
    /// Steps in one `(regime, class)` bin (absent bins are zero).
    fn steps(&self, regime: &str, class: &str) -> f64 {
        self.rows
            .iter()
            .filter(|(r, c, _)| r == regime && c == class)
            .map(|(_, _, s)| *s)
            .sum()
    }

    /// Benign = the registry scenario does not run an `attack/*`
    /// environment (same predicate as the class-sinks table).
    fn benign(&self) -> bool {
        find_scenario(&self.scenario).is_none_or(|s| !s.env.label().starts_with("attack/"))
    }
}

/// One baseline budget row.
struct Entry {
    /// Cell id, or `"*"` for the benign matrix-wide aggregate.
    cell: String,
    /// Class label, `"<regime> fine:<reason>"`.
    class: String,
    steps_per_hour: f64,
}

fn load_value(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_cells(v: &Value) -> Result<Vec<Cell>, String> {
    let Value::Arr(items) = v else {
        return Err("attribution JSON: expected a top-level array of cells".into());
    };
    let mut cells = Vec::with_capacity(items.len());
    for item in items {
        let get_str = |key: &str| -> Result<String, String> {
            match item.field(key) {
                Ok(Value::Str(s)) => Ok(s.clone()),
                _ => Err(format!("attribution cell: missing string field `{key}`")),
            }
        };
        let attr = item
            .field("attr")
            .map_err(|e| format!("attribution cell: {e}"))?;
        let seconds = match attr.field("total_seconds") {
            Ok(Value::Num(n)) => *n,
            _ => return Err("attribution cell: missing attr.total_seconds".into()),
        };
        let mut rows = Vec::new();
        if let Ok(Value::Arr(raw_rows)) = attr.field("rows") {
            for row in raw_rows {
                let field_str = |key: &str| match row.field(key) {
                    Ok(Value::Str(s)) => Some(s.clone()),
                    _ => None,
                };
                let steps = match row.field("steps") {
                    Ok(Value::Num(n)) => *n,
                    _ => continue,
                };
                if let (Some(regime), Some(class)) = (field_str("regime"), field_str("class")) {
                    rows.push((regime, class, steps));
                }
            }
        }
        cells.push(Cell {
            id: get_str("id")?,
            scenario: get_str("scenario")?,
            hours: seconds / 3600.0,
            rows,
        });
    }
    Ok(cells)
}

fn parse_baseline(v: &Value) -> Result<Vec<Entry>, String> {
    let entries = v.field("entries").map_err(|e| format!("baseline: {e}"))?;
    let Value::Arr(items) = entries else {
        return Err("baseline: `entries` must be an array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let get_str = |key: &str| match item.field(key) {
            Ok(Value::Str(s)) => Ok(s.clone()),
            _ => Err(format!("baseline entry: missing string field `{key}`")),
        };
        let steps_per_hour = match item.field("steps_per_hour") {
            Ok(Value::Num(n)) => *n,
            _ => return Err("baseline entry: missing numeric `steps_per_hour`".into()),
        };
        out.push(Entry {
            cell: get_str("cell")?,
            class: get_str("class")?,
            steps_per_hour,
        });
    }
    Ok(out)
}

/// Splits `"sleep fine:guard-band"` into `("sleep", "guard-band")`.
fn split_class(label: &str) -> Result<(&str, &str), String> {
    label
        .split_once(" fine:")
        .ok_or_else(|| format!("class label {label:?} is not `<regime> fine:<reason>`"))
}

/// The measured rate for one baseline entry, or `None` when a named
/// cell is missing from the current report.
fn measure(cells: &[Cell], entry_cell: &str, regime: &str, class: &str) -> Option<f64> {
    if entry_cell == "*" {
        let (mut steps, mut hours) = (0.0, 0.0);
        for c in cells.iter().filter(|c| c.benign()) {
            steps += c.steps(regime, class);
            hours += c.hours;
        }
        return Some(if hours > 0.0 { steps / hours } else { 0.0 });
    }
    cells.iter().find(|c| c.id == entry_cell).map(|c| {
        if c.hours > 0.0 {
            // `+ 0.0` normalizes the negative zero an absent bin's
            // empty sum can produce.
            c.steps(regime, class) / c.hours + 0.0
        } else {
            0.0
        }
    })
}

/// Emits a fresh baseline from the current attribution: matrix-wide
/// rows for every benign fallback class (except `mcu-active`), plus
/// the pinned per-cell sinks.
fn write_baseline(path: &str, cells: &[Cell]) -> Result<(), String> {
    let mut classes: Vec<(String, String)> = Vec::new();
    for c in cells.iter().filter(|c| c.benign()) {
        for (regime, class, _) in &c.rows {
            if class == "coarse" || class == "mcu-active" {
                continue;
            }
            let key = (regime.clone(), class.clone());
            if !classes.contains(&key) {
                classes.push(key);
            }
        }
    }
    classes.sort();

    let entry = |cell: &str, label: &str, rate: f64| {
        // `+ 0.0` normalizes a negative zero out of the rounding.
        let rounded = (rate * 10.0).round() / 10.0 + 0.0;
        Value::Obj(vec![
            ("cell".to_string(), Value::Str(cell.to_string())),
            ("class".to_string(), Value::Str(label.to_string())),
            ("steps_per_hour".to_string(), Value::Num(rounded)),
        ])
    };
    let mut entries = Vec::new();
    for (regime, class) in &classes {
        let label = format!("{regime} fine:{class}");
        if let Some(rate) = measure(cells, "*", regime, class) {
            entries.push(entry("*", &label, rate));
        }
    }
    for (cell, label) in PINNED_CELLS {
        let (regime, class) = split_class(label)?;
        match measure(cells, cell, regime, class) {
            Some(rate) => entries.push(entry(cell, label, rate)),
            None => return Err(format!("pinned cell {cell} missing from the report")),
        }
    }
    let doc = Value::Obj(vec![
        (
            "comment".to_string(),
            Value::Str(
                "Kernel-overhead budget: fallback fine-steps per simulated hour over the \
                 benign scenario matrix. Refresh with `attribution_gate --write-baseline` \
                 after an intentional kernel change."
                    .to_string(),
            ),
        ),
        ("entries".to_string(), Value::Arr(entries)),
    ]);
    let json = serde_json::to_string(&doc).map_err(|e| format!("serialize baseline: {e:?}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
    println!("attribution_gate: baseline written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();

    if args.get(1).map(String::as_str) == Some("--write-baseline") {
        let (Some(out), Some(cur)) = (args.get(2), args.get(3)) else {
            eprintln!("usage: attribution_gate --write-baseline <path> <current-attribution.json>");
            return ExitCode::from(2);
        };
        let result = load_value(cur)
            .and_then(|v| parse_cells(&v))
            .and_then(|cells| write_baseline(out, &cells));
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("attribution_gate: {e}");
                ExitCode::from(2)
            }
        };
    }

    if args.len() < 3 {
        eprintln!("usage: attribution_gate <baseline.json> <current-attribution.json> [max-drift]");
        return ExitCode::from(2);
    }
    let max_drift: f64 = match args.get(3) {
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("attribution_gate: max-drift must be a number, got {s:?}");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_MAX_DRIFT,
    };

    let loaded = (
        load_value(&args[1]).and_then(|v| parse_baseline(&v)),
        load_value(&args[2]).and_then(|v| parse_cells(&v)),
    );
    let (baseline, cells) = match loaded {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("attribution_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut offenders: Vec<String> = Vec::new();
    println!(
        "{:<34} {:<28} {:>10} {:>10} {:>10}  verdict",
        "cell", "class", "base/h", "cur/h", "slack/h"
    );
    for entry in &baseline {
        let (regime, class) = match split_class(&entry.class) {
            Ok(pair) => pair,
            Err(e) => {
                offenders.push(format!("{}: {e}", entry.cell));
                continue;
            }
        };
        let slack = (entry.steps_per_hour * max_drift).max(ABS_SLACK_PER_HOUR);
        match measure(&cells, &entry.cell, regime, class) {
            Some(cur) => {
                let verdict = if cur > entry.steps_per_hour + slack {
                    offenders.push(format!(
                        "{} {}: {:.1} steps/h exceeds the {:.1}/h budget (+{:.1}/h slack) — \
                         kernel-overhead regression, a collapsed fallback path re-opened",
                        entry.cell, entry.class, cur, entry.steps_per_hour, slack
                    ));
                    "REGRESSED"
                } else if cur < entry.steps_per_hour - slack {
                    offenders.push(format!(
                        "{} {}: {:.1} steps/h is far below the {:.1}/h budget (−{:.1}/h slack) — \
                         baseline is stale, re-pin the win: attribution_gate --write-baseline \
                         ci/attribution-baseline.json <current-attribution.json>",
                        entry.cell, entry.class, cur, entry.steps_per_hour, slack
                    ));
                    "STALE BASELINE"
                } else {
                    "ok"
                };
                println!(
                    "{:<34} {:<28} {:>10.1} {:>10.1} {:>10.1}  {verdict}",
                    entry.cell, entry.class, entry.steps_per_hour, cur, slack
                );
            }
            None => {
                offenders.push(format!(
                    "{} {}: cell missing from the current attribution report",
                    entry.cell, entry.class
                ));
                println!(
                    "{:<34} {:<28} {:>10.1} {:>10} {:>10.1}  MISSING",
                    entry.cell, entry.class, entry.steps_per_hour, "-", slack
                );
            }
        }
    }

    if offenders.is_empty() {
        println!(
            "attribution_gate: all {} class budgets within ±{:.0}% (abs slack {:.0}/h)",
            baseline.len(),
            max_drift * 100.0,
            ABS_SLACK_PER_HOUR
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("attribution_gate: {} budget(s) violated:", offenders.len());
        for o in &offenders {
            eprintln!("  {o}");
        }
        ExitCode::FAILURE
    }
}
