//! Round-trip and determinism properties of the streaming sources.
//!
//! The contract under test: materializing any [`PowerSource`] into a
//! fixed-`dt` [`PowerTrace`] and re-wrapping it in [`TraceSource`]
//! reproduces `power_at` within sampling error — *exactly* on the
//! sampling grid, where no error term exists — and seeded sources are
//! bit-identical across two instantiations, including after the
//! graceful rewind a backward (non-monotone) probe triggers.

use proptest::prelude::*;
use react_env::{
    materialize, Cap, Diurnal, EnergyAttack, MarkovRf, Mix, Mobility, PowerSource, Scale, Splice,
    TraceSource,
};
use react_units::{Seconds, Watts};

/// Builds one of several representative sources from sampled
/// parameters — the "any `PowerSource`" quantifier of the property.
fn build_source(which: usize, seed: u64, p_mw: f64, dwell_s: f64) -> Box<dyn PowerSource> {
    let rf = || {
        MarkovRf::new(
            "rf",
            Watts::from_milli(p_mw),
            Watts::from_micro(10.0),
            Seconds::new(dwell_s),
            Seconds::new(3.0 * dwell_s),
            seed,
        )
        .with_jitter(0.4)
    };
    let sun = || {
        Diurnal::new("sun", Watts::from_milli(p_mw), seed)
            .with_period(Seconds::new(240.0), 0.5)
            .with_envelope_step(Seconds::new(10.0))
            .with_clouds(Seconds::new(4.0 * dwell_s), Seconds::new(dwell_s), 0.3)
    };
    let walk = || {
        Mobility::cyclic(
            "walk",
            vec![
                (Seconds::new(0.0), Watts::from_micro(40.0)),
                (Seconds::new(20.0), Watts::from_milli(p_mw)),
                (Seconds::new(45.0), Watts::from_micro(1.0)),
            ],
            Seconds::new(90.0),
        )
    };
    match which % 6 {
        0 => Box::new(rf()),
        1 => Box::new(sun()),
        2 => Box::new(walk()),
        3 => Box::new(
            EnergyAttack::new(rf())
                .with_spoof(
                    Seconds::new(60.0),
                    Seconds::new(5.0),
                    Seconds::new(4.0),
                    Watts::from_milli(20.0),
                )
                .with_blackout(Seconds::new(60.0), Seconds::new(30.0), Seconds::new(10.0)),
        ),
        4 => Box::new(Mix::new(Scale::new(sun(), 0.5), rf())),
        _ => Box::new(Splice::new(
            walk(),
            Cap::new(rf(), Watts::from_milli(4.0)),
            Seconds::new(37.0),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Materialize → TraceSource reproduces the source on the sampling
    /// grid exactly (zero-order hold both sides), and seeded sources
    /// are bit-identical across two instantiations.
    #[test]
    fn materialized_sources_round_trip(
        which in 0usize..6,
        seed in 0u64..10_000,
        p_mw in 0.5..20.0f64,
        dwell_s in 0.5..12.0f64,
        dt_ms in 20.0..500.0f64,
    ) {
        let horizon = Seconds::new(600.0);
        let dt = Seconds::new(dt_ms / 1e3);
        let mut original = build_source(which, seed, p_mw, dwell_s);
        let trace = materialize(
            &mut build_source(which, seed, p_mw, dwell_s),
            "mat",
            dt,
            horizon,
        );
        let mut wrapped = TraceSource::new(trace);
        // Interior of each hold window, the wrapped source must return
        // the original's grid sample bit for bit (probing safely inside
        // the window sidesteps the one-ulp grid-boundary ambiguity of
        // `t/dt` — the only sampling error the contract allows there).
        for i in 0..(horizon.get() / dt.get()) as usize {
            let grid = Seconds::new(i as f64 * dt.get());
            for frac in [0.31, 0.5, 0.93] {
                let probe = Seconds::new((i as f64 + frac) * dt.get());
                prop_assert_eq!(
                    wrapped.power_at(probe),
                    original.power_at(grid),
                    "held sample {} at frac {}",
                    i,
                    frac
                );
            }
        }
    }

    /// Two instantiations of the same seeded source agree bit for bit
    /// along any shared probe sequence, even when one of them is
    /// dragged through backward probes (graceful rewind).
    #[test]
    fn seeded_sources_are_bit_identical(
        which in 0usize..6,
        seed in 0u64..10_000,
        p_mw in 0.5..20.0f64,
        dwell_s in 0.5..12.0f64,
    ) {
        let mut a = build_source(which, seed, p_mw, dwell_s);
        let mut b = build_source(which, seed, p_mw, dwell_s);
        // Walk `a` far ahead, then yank it backwards: the rewind must
        // land it on exactly the stream a fresh walker sees.
        let _ = a.power_at(Seconds::new(5000.0));
        for i in 0..400 {
            let t = Seconds::new(i as f64 * 1.37);
            prop_assert_eq!(a.power_at(t), b.power_at(t), "at step {}", i);
        }
        // And segments agree with power values at their own start.
        for i in 0..40 {
            let t = Seconds::new(11.0 * i as f64);
            let seg = a.segment(t);
            prop_assert!(seg.end > t, "segment must extend past its query");
            prop_assert_eq!(seg.power, b.power_at(t));
        }
    }

    /// Segment spans are internally constant: probing anywhere inside
    /// a reported span returns the span's power.
    #[test]
    fn segments_hold_constant_power(
        which in 0usize..6,
        seed in 0u64..10_000,
        p_mw in 0.5..20.0f64,
        dwell_s in 0.5..12.0f64,
    ) {
        let mut src = build_source(which, seed, p_mw, dwell_s);
        let mut probe = build_source(which, seed, p_mw, dwell_s);
        let mut t = 0.0;
        for _ in 0..120 {
            let seg = src.segment(Seconds::new(t));
            let end = seg.end.get().min(t + 500.0);
            for frac in [0.25, 0.5, 0.9] {
                let inside = t + frac * (end - t);
                prop_assert_eq!(
                    probe.power_at(Seconds::new(inside)),
                    seg.power,
                    "inside segment [{}, {})",
                    t,
                    seg.end.get()
                );
            }
            if seg.end.get() == f64::INFINITY {
                break;
            }
            t = seg.end.get();
        }
    }
}

/// Regression for the streaming kernel's backward probes: the probe
/// pattern the adaptive kernel emits (a window query at `t`, then a
/// stamped sample one step back) must never corrupt a source's stream.
#[test]
fn kernel_style_backward_probes_are_harmless() {
    let mut src = build_source(0, 77, 4.0, 2.0);
    let mut reference = build_source(0, 77, 4.0, 2.0);
    let dt = 0.01;
    let mut t = 0.0;
    while t < 2000.0 {
        let seg = src.segment(Seconds::new(t));
        // Stamp "one step back", as the probe series does.
        let back = (t - dt).max(0.0);
        assert_eq!(
            src.power_at(Seconds::new(back)),
            reference.power_at(Seconds::new(back)),
            "backward stamp at {back}"
        );
        assert_eq!(src.power_at(Seconds::new(t)), seg.power);
        t = seg.end.get().min(t + 50.0);
    }
}
