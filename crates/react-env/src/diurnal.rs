//! Diurnal solar model: day/night envelope × Markov cloud process.
//!
//! Multi-day intermittency — the regime behind the paper's persistence
//! claims — is fundamentally diurnal: a deterministic irradiance
//! envelope (zero all night, a smooth hump across the day) modulated by
//! a stochastic cloud process. The envelope is quantized onto a
//! configurable step so the signal stays piecewise-constant (what the
//! adaptive kernel's closed-form idle integrator needs); an entire
//! night is a *single* zero-power segment, which is what lets week-long
//! runs cross outages in a handful of strides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use react_units::{Seconds, Watts};

use crate::markov::exp_dwell;
use crate::source::{PowerSource, Segment};

/// A seeded diurnal solar source.
///
/// Power at `t` is `envelope(t) × cloud(t)`, where the envelope is a
/// raised `sin²` day hump (zero at night) held constant over
/// `envelope_step` spans, and the cloud factor is a two-state Markov
/// chain (clear = 1, cloudy = `attenuation`) with exponential dwells.
/// Deterministic given its seed, unbounded, rewindable.
#[derive(Clone, Debug)]
pub struct Diurnal {
    name: String,
    peak: f64,
    period: f64,
    day_fraction: f64,
    env_step: f64,
    attenuation: f64,
    mean_clear: f64,
    mean_cloudy: f64,
    seed: u64,
    rng: StdRng,
    cloudy: bool,
    cloud_start: f64,
    cloud_end: f64,
}

impl Diurnal {
    /// Creates a diurnal source with a 24 h period, 50 % daylight, a
    /// 5 min envelope step, and mild clouds (mean 30 min clear / 4 min
    /// cloudy at 25 % transmission).
    ///
    /// # Panics
    ///
    /// Panics unless `peak` is non-negative.
    pub fn new(name: impl Into<String>, peak: Watts, seed: u64) -> Self {
        assert!(peak.get() >= 0.0, "peak power must be non-negative");
        let mut source = Self {
            name: name.into(),
            peak: peak.get(),
            period: 86_400.0,
            day_fraction: 0.5,
            env_step: 300.0,
            attenuation: 0.25,
            mean_clear: 1800.0,
            mean_cloudy: 240.0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            cloudy: false,
            cloud_start: 0.0,
            cloud_end: 0.0,
        };
        source.reset();
        source
    }

    /// Overrides the day/night period (useful for compressed tests).
    ///
    /// # Panics
    ///
    /// Panics unless `period` is positive.
    pub fn with_period(mut self, period: Seconds, day_fraction: f64) -> Self {
        assert!(period.get() > 0.0, "period must be positive");
        assert!(
            (0.0..=1.0).contains(&day_fraction),
            "day fraction must be in [0, 1]"
        );
        self.period = period.get();
        self.day_fraction = day_fraction;
        self.env_step = self.env_step.min(self.period / 4.0);
        self.reset();
        self
    }

    /// Overrides the envelope quantization step.
    ///
    /// # Panics
    ///
    /// Panics unless `step` is positive.
    pub fn with_envelope_step(mut self, step: Seconds) -> Self {
        assert!(step.get() > 0.0, "envelope step must be positive");
        self.env_step = step.get();
        self.reset();
        self
    }

    /// Overrides the cloud process (`attenuation` is the cloudy-state
    /// transmission factor).
    ///
    /// # Panics
    ///
    /// Panics unless both dwell means are positive and `attenuation`
    /// is in `[0, 1]`.
    pub fn with_clouds(
        mut self,
        mean_clear: Seconds,
        mean_cloudy: Seconds,
        attenuation: f64,
    ) -> Self {
        assert!(
            mean_clear.get() > 0.0 && mean_cloudy.get() > 0.0,
            "cloud dwell means must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&attenuation),
            "attenuation must be in [0, 1]"
        );
        self.mean_clear = mean_clear.get();
        self.mean_cloudy = mean_cloudy.get();
        self.attenuation = attenuation;
        self.reset();
        self
    }

    /// Restarts the cloud chain from its seed.
    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        let stationary_cloudy = self.mean_cloudy / (self.mean_clear + self.mean_cloudy);
        self.cloudy = self.rng.gen_bool(stationary_cloudy);
        self.cloud_start = 0.0;
        let mean = if self.cloudy {
            self.mean_cloudy
        } else {
            self.mean_clear
        };
        self.cloud_end = exp_dwell(&mut self.rng, mean);
    }

    /// Steps the cloud chain to its next dwell.
    fn cloud_advance(&mut self) {
        self.cloud_start = self.cloud_end;
        self.cloudy = !self.cloudy;
        let mean = if self.cloudy {
            self.mean_cloudy
        } else {
            self.mean_clear
        };
        self.cloud_end = self.cloud_start + exp_dwell(&mut self.rng, mean);
    }

    /// Positions the cloud walker over `t`, rewinding for backward
    /// queries.
    fn cloud_covers(&mut self, t: f64) {
        if t < self.cloud_start {
            self.reset();
        }
        while t >= self.cloud_end {
            self.cloud_advance();
        }
    }

    /// The quantized envelope window covering `t`: `(power, end)`. A
    /// whole night collapses into one zero-power window ending at the
    /// next sunrise.
    fn envelope_window(&self, t: f64) -> (f64, f64) {
        let day_len = self.day_fraction * self.period;
        let (cycle_base, phase) = crate::source::cycle_phase(t, self.period);
        if phase >= day_len || day_len == 0.0 {
            // Night: dark until the next cycle's sunrise.
            return (0.0, cycle_base + self.period);
        }
        let k = (phase / self.env_step).floor();
        let lo = k * self.env_step;
        let hi = ((k + 1.0) * self.env_step).min(day_len);
        // Hold the midpoint irradiance across the span.
        let mid = 0.5 * (lo + hi);
        let s = (std::f64::consts::PI * mid / day_len).sin();
        (self.peak * s * s, cycle_base + hi)
    }
}

impl PowerSource for Diurnal {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let tt = t.get();
        if !tt.is_finite() || tt < 0.0 {
            return Segment::dark(Seconds::ZERO);
        }
        let (envelope, env_end) = self.envelope_window(tt);
        if envelope == 0.0 {
            // Clouds cannot modulate darkness: the whole night really
            // is one segment (the stride that lets week-long runs cross
            // outages in a handful of steps). The cloud walker catches
            // up lazily at the next daylight query.
            return Segment::dark(Seconds::new(crate::source::end_after(tt, env_end)));
        }
        self.cloud_covers(tt);
        let factor = if self.cloudy { self.attenuation } else { 1.0 };
        Segment {
            power: Watts::new(envelope * factor),
            end: Seconds::new(crate::source::end_after(tt, env_end.min(self.cloud_end))),
        }
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sun() -> Diurnal {
        Diurnal::new("sun", Watts::from_milli(20.0), 11)
    }

    #[test]
    fn night_is_dark_and_one_segment() {
        let mut src = sun().with_clouds(Seconds::new(1e7), Seconds::new(1.0), 0.5);
        // Deep in the first night (day ends at 43 200 s).
        let seg = src.segment(Seconds::new(50_000.0));
        assert_eq!(seg.power, Watts::ZERO);
        assert!((seg.end.get() - 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn night_is_one_segment_even_under_active_clouds() {
        // The default cloud chain (minutes-scale dwells) must not chop
        // the night: darkness modulated by anything is still darkness,
        // and the adaptive kernel crosses it in one stride.
        let mut src = sun();
        let seg = src.segment(Seconds::new(50_000.0));
        assert_eq!(seg.power, Watts::ZERO);
        assert!((seg.end.get() - 86_400.0).abs() < 1e-6, "end {:?}", seg.end);
    }

    #[test]
    fn day_boundary_ulp_queries_always_advance() {
        // Regression: a rounded-up `t / period` quotient used to yield
        // a negative phase and a non-advancing segment at midnight.
        let mut src = sun();
        for k in 1..40u64 {
            let boundary = k as f64 * 86_400.0;
            for ulps in [-2i64, -1, 0, 1, 2] {
                let tt = f64::from_bits((boundary.to_bits() as i64 + ulps) as u64);
                let seg = src.segment(Seconds::new(tt));
                assert!(seg.end.get() > tt, "segment stalled at {tt}");
            }
        }
    }

    #[test]
    fn noon_is_near_peak() {
        let mut src = sun().with_clouds(Seconds::new(1e7), Seconds::new(1.0), 0.5);
        let noon = src.power_at(Seconds::new(21_600.0));
        assert!(noon.to_milli() > 19.0, "noon {noon:?}");
        // Sunrise edge is weak.
        let dawn = src.power_at(Seconds::new(120.0));
        assert!(dawn < noon);
    }

    #[test]
    fn clouds_attenuate_deterministically() {
        let mut a = sun();
        let mut b = sun();
        let mut attenuated = 0usize;
        for i in 0..2000 {
            let t = Seconds::new(i as f64 * 20.0);
            let (pa, pb) = (a.power_at(t), b.power_at(t));
            assert_eq!(pa, pb);
            let (env, _) = a.envelope_window(t.get());
            if env > 0.0 && pa.get() < 0.9 * env {
                attenuated += 1;
            }
        }
        assert!(attenuated > 0, "clouds never attenuated");
    }

    #[test]
    fn rewind_reproduces_the_stream() {
        let mut src = sun();
        let reference: Vec<Watts> = (0..200)
            .map(|i| sun().power_at(Seconds::new(i as f64 * 300.0)))
            .collect();
        let _ = src.power_at(Seconds::new(200_000.0));
        let _ = src.power_at(Seconds::new(10.0)); // backward: rewinds
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(src.power_at(Seconds::new(i as f64 * 300.0)), *want);
        }
    }
}
