//! Scheduled field-strength mobility model.
//!
//! A harvester carried through a deployment sees *scheduled* regime
//! changes — home, commute, subway, office — rather than random ones:
//! field strength is a function of where the wearer is, and where the
//! wearer is follows a timetable. [`Mobility`] models exactly that: a
//! piecewise-constant schedule of `(offset, power)` breakpoints, either
//! one-shot (holding the last level forever) or cycled with a period
//! (the daily commute, repeated all week).

use react_units::{Seconds, Watts};

use crate::source::{PowerSource, Segment};

/// A deterministic, piecewise-constant field-strength schedule.
#[derive(Clone, Debug)]
pub struct Mobility {
    name: String,
    /// `(offset_s, power_w)` breakpoints, strictly increasing offsets,
    /// first at 0.
    points: Vec<(f64, f64)>,
    /// Cycle length; `None` holds the last level forever.
    period: Option<f64>,
}

impl Mobility {
    /// Validates and stores the breakpoint list.
    fn build(name: String, points: Vec<(Seconds, Watts)>, period: Option<f64>) -> Self {
        assert!(!points.is_empty(), "schedule needs at least one point");
        let points: Vec<(f64, f64)> = points
            .into_iter()
            .map(|(t, p)| (t.get(), p.get()))
            .collect();
        assert!(points[0].0 == 0.0, "first breakpoint must be at t = 0");
        for pair in points.windows(2) {
            assert!(
                pair[1].0 > pair[0].0,
                "breakpoint offsets must strictly increase"
            );
        }
        assert!(
            points.iter().all(|&(_, p)| p >= 0.0 && p.is_finite()),
            "powers must be finite and non-negative"
        );
        if let Some(p) = period {
            assert!(
                points.last().expect("nonempty").0 < p,
                "breakpoints must fit inside the period"
            );
        }
        Self {
            name,
            points,
            period,
        }
    }

    /// A one-shot schedule: each breakpoint's power holds until the
    /// next offset; the last holds forever.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty, does not start at 0, is not
    /// strictly increasing, or contains a negative/non-finite power.
    pub fn schedule(name: impl Into<String>, points: Vec<(Seconds, Watts)>) -> Self {
        Self::build(name.into(), points, None)
    }

    /// A cyclic schedule repeating every `period` (e.g. one day).
    ///
    /// # Panics
    ///
    /// As [`Mobility::schedule`], plus if any offset reaches `period`.
    pub fn cyclic(name: impl Into<String>, points: Vec<(Seconds, Watts)>, period: Seconds) -> Self {
        assert!(period.get() > 0.0, "period must be positive");
        Self::build(name.into(), points, Some(period.get()))
    }

    /// The schedule interval covering local phase `phase`:
    /// `(power, local_end)` where `local_end` is the next breakpoint
    /// offset, the period, or `+inf` for a one-shot tail.
    fn interval(&self, phase: f64) -> (f64, f64) {
        let idx = self.points.partition_point(|&(off, _)| off <= phase) - 1;
        let power = self.points[idx].1;
        let end = match self.points.get(idx + 1) {
            Some(&(next, _)) => next,
            None => self.period.unwrap_or(f64::INFINITY),
        };
        (power, end)
    }
}

impl PowerSource for Mobility {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let tt = t.get();
        if !tt.is_finite() || tt < 0.0 {
            return Segment::dark(Seconds::ZERO);
        }
        let (base, phase) = match self.period {
            Some(p) => crate::source::cycle_phase(tt, p),
            None => (0.0, tt),
        };
        let (power, local_end) = self.interval(phase);
        Segment {
            power: Watts::new(power),
            // `base + breakpoint` can round back onto `t` when the
            // breakpoint is not exactly representable; end_after keeps
            // the walker-advancement contract.
            end: Seconds::new(crate::source::end_after(tt, base + local_end)),
        }
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commute() -> Mobility {
        Mobility::cyclic(
            "commute",
            vec![
                (Seconds::new(0.0), Watts::from_micro(50.0)),
                (Seconds::new(100.0), Watts::from_milli(4.0)),
                (Seconds::new(160.0), Watts::from_micro(2.0)),
                (Seconds::new(400.0), Watts::from_micro(300.0)),
            ],
            Seconds::new(600.0),
        )
    }

    #[test]
    fn cyclic_schedule_repeats() {
        let mut src = commute();
        for cycle in 0..3 {
            let base = cycle as f64 * 600.0;
            assert_eq!(
                src.power_at(Seconds::new(base + 10.0)),
                Watts::from_micro(50.0)
            );
            let seg = src.segment(Seconds::new(base + 120.0));
            assert_eq!(seg.power, Watts::from_milli(4.0));
            assert!((seg.end.get() - (base + 160.0)).abs() < 1e-9);
            // Tail interval runs to the period boundary.
            let seg = src.segment(Seconds::new(base + 500.0));
            assert!((seg.end.get() - (base + 600.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn one_shot_holds_final_level_forever() {
        let mut src = Mobility::schedule(
            "walk",
            vec![
                (Seconds::new(0.0), Watts::from_milli(1.0)),
                (Seconds::new(50.0), Watts::from_milli(2.0)),
            ],
        );
        let seg = src.segment(Seconds::new(1e9));
        assert_eq!(seg.power, Watts::from_milli(2.0));
        assert_eq!(seg.end.get(), f64::INFINITY);
        assert_eq!(src.duration(), None);
    }

    #[test]
    fn cycle_boundary_ulp_queries_never_panic_and_advance() {
        // Regression: at multiples of the period, `t / period` can
        // round up to the next integer, driving the raw phase one ulp
        // negative — which used to underflow the breakpoint lookup.
        let mut src = commute();
        for k in 1..2000u64 {
            let boundary = k as f64 * 600.0;
            for ulps in [-2i64, -1, 0, 1, 2] {
                let tt = f64::from_bits((boundary.to_bits() as i64 + ulps) as u64);
                let seg = src.segment(Seconds::new(tt));
                assert!(seg.end.get() > tt, "segment stalled at {tt}");
                assert!(seg.power.get().is_finite());
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_points_panic() {
        Mobility::schedule(
            "bad",
            vec![
                (Seconds::new(0.0), Watts::ZERO),
                (Seconds::new(5.0), Watts::ZERO),
                (Seconds::new(5.0), Watts::ZERO),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "first breakpoint")]
    fn missing_origin_panics() {
        Mobility::schedule("bad", vec![(Seconds::new(1.0), Watts::ZERO)]);
    }
}
