//! Energy-attack adversary: blackouts that starve the harvester and
//! spoofed bursts that trick it.
//!
//! Application-aware energy attacks (see PAPERS.md, "Application-aware
//! Energy Attack Mitigation in the Battery-less IoT") come in two
//! flavors this model reproduces as a wrapper around any benign
//! environment:
//!
//! * **blackout** — the attacker suppresses the field in periodic
//!   windows, starving the node exactly when it expects income, and
//! * **spoofed burst** — the attacker presents a strong fake field in
//!   short windows, baiting an adaptive buffer into reconfiguring for
//!   surplus (REACT expanding its bank array) before yanking the power.
//!
//! Windows are deterministic periodic spans, so attacked environments
//! stay seeded-reproducible end to end.

use react_units::{Seconds, Watts};

use crate::source::{PowerSource, Segment, VictimEvent};

/// A periodic attack window: active whenever
/// `t mod period ∈ [offset, offset + len)`.
#[derive(Clone, Copy, Debug)]
struct AttackWindow {
    period: f64,
    offset: f64,
    len: f64,
}

impl AttackWindow {
    fn new(period: Seconds, offset: Seconds, len: Seconds) -> Self {
        let (period, offset, len) = (period.get(), offset.get(), len.get());
        assert!(period > 0.0, "attack period must be positive");
        assert!(len > 0.0, "attack window must have positive length");
        assert!(
            offset >= 0.0 && offset + len <= period,
            "attack window must fit inside the period"
        );
        Self {
            period,
            offset,
            len,
        }
    }

    /// Whether the window is active at `t ≥ 0`, plus the absolute time
    /// of the next activation edge (either kind).
    fn probe(&self, t: f64) -> (bool, f64) {
        let (cycle_base, phase) = crate::source::cycle_phase(t, self.period);
        if phase < self.offset {
            (false, cycle_base + self.offset)
        } else if phase < self.offset + self.len {
            (true, cycle_base + self.offset + self.len)
        } else {
            (false, cycle_base + self.period + self.offset)
        }
    }
}

/// An adversary wrapped around a benign power source.
///
/// Precedence: blackout beats spoof beats the inner environment (an
/// attacker that can null the field nulls its own bait too).
#[derive(Clone, Debug)]
pub struct EnergyAttack<S> {
    inner: S,
    name: String,
    blackout: Option<AttackWindow>,
    spoof: Option<AttackWindow>,
    spoof_power: f64,
}

impl<S: PowerSource> EnergyAttack<S> {
    /// Wraps `inner` with no attacks configured (a transparent
    /// pass-through until windows are added).
    pub fn new(inner: S) -> Self {
        let name = format!("attack({})", inner.name());
        Self {
            inner,
            name,
            blackout: None,
            spoof: None,
            spoof_power: 0.0,
        }
    }

    /// Adds periodic blackout windows
    /// (`t mod period ∈ [offset, offset + len)` → zero power).
    ///
    /// # Panics
    ///
    /// Panics unless the window fits inside a positive period.
    pub fn with_blackout(mut self, period: Seconds, offset: Seconds, len: Seconds) -> Self {
        self.blackout = Some(AttackWindow::new(period, offset, len));
        self
    }

    /// Adds periodic spoofed-burst windows presenting `power` regardless
    /// of the real field.
    ///
    /// # Panics
    ///
    /// Panics unless the window fits inside a positive period and
    /// `power` is non-negative.
    pub fn with_spoof(
        mut self,
        period: Seconds,
        offset: Seconds,
        len: Seconds,
        power: Watts,
    ) -> Self {
        assert!(power.get() >= 0.0, "spoof power must be non-negative");
        self.spoof = Some(AttackWindow::new(period, offset, len));
        self.spoof_power = power.get();
        self
    }
}

impl<S: PowerSource + Clone + 'static> PowerSource for EnergyAttack<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let tt = t.get();
        if !tt.is_finite() || tt < 0.0 {
            return Segment::dark(Seconds::ZERO);
        }
        // Always walk the inner source so its cursor stays warm, then
        // clip the segment at every attack-window edge. Shorter
        // segments are always safe — the kernel just strides again.
        let inner = self.inner.segment(t);
        let mut end = inner.end.get();
        let mut power = inner.power.get();
        if let Some(w) = self.spoof {
            let (active, edge) = w.probe(tt);
            if active {
                power = self.spoof_power;
            }
            end = end.min(edge);
        }
        if let Some(w) = self.blackout {
            let (active, edge) = w.probe(tt);
            if active {
                power = 0.0;
            }
            end = end.min(edge);
        }
        Segment {
            power: Watts::new(power),
            // Attack-window edges are `cycle_base + offset` sums that
            // can round back onto `t`; keep the walker advancing.
            end: Seconds::new(crate::source::end_after(tt, end)),
        }
    }

    fn duration(&self) -> Option<Seconds> {
        // Spoof windows inject power forever, regardless of the inner
        // source — a spoofed signal is never bounded. Blackouts only
        // null the field, so they preserve the inner bound (zero stays
        // zero past it).
        if self.spoof.is_some() {
            None
        } else {
            self.inner.duration()
        }
    }

    fn observe(&mut self, event: VictimEvent) {
        // The fixed-window adversary ignores feedback; its benign
        // inner environment still gets the forward (combinators nest).
        self.inner.observe(event);
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mobility;

    fn steady(power_mw: f64) -> Mobility {
        Mobility::schedule(
            "steady",
            vec![(Seconds::new(0.0), Watts::from_milli(power_mw))],
        )
    }

    #[test]
    fn blackout_nulls_the_field_inside_windows() {
        let mut src = EnergyAttack::new(steady(2.0)).with_blackout(
            Seconds::new(100.0),
            Seconds::new(20.0),
            Seconds::new(10.0),
        );
        assert_eq!(src.power_at(Seconds::new(5.0)), Watts::from_milli(2.0));
        assert_eq!(src.power_at(Seconds::new(25.0)), Watts::ZERO);
        assert_eq!(src.power_at(Seconds::new(35.0)), Watts::from_milli(2.0));
        // And again next period.
        assert_eq!(src.power_at(Seconds::new(125.0)), Watts::ZERO);
        // Segment edges line up with window edges.
        let seg = src.segment(Seconds::new(5.0));
        assert!((seg.end.get() - 20.0).abs() < 1e-9);
        let seg = src.segment(Seconds::new(25.0));
        assert!((seg.end.get() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn spoof_presents_fake_power_and_blackout_wins() {
        let mut src = EnergyAttack::new(steady(1.0))
            .with_spoof(
                Seconds::new(60.0),
                Seconds::new(0.0),
                Seconds::new(5.0),
                Watts::from_milli(25.0),
            )
            .with_blackout(Seconds::new(60.0), Seconds::new(2.0), Seconds::new(6.0));
        // Spoof active, blackout not yet: bait power.
        assert_eq!(src.power_at(Seconds::new(1.0)), Watts::from_milli(25.0));
        // Both active: blackout wins.
        assert_eq!(src.power_at(Seconds::new(3.0)), Watts::ZERO);
        // Only blackout: still dark.
        assert_eq!(src.power_at(Seconds::new(6.0)), Watts::ZERO);
        // Neither: the real field.
        assert_eq!(src.power_at(Seconds::new(30.0)), Watts::from_milli(1.0));
    }

    #[test]
    fn spoof_unbinds_duration_but_blackout_preserves_it() {
        use crate::TraceSource;
        use react_traces::PowerTrace;

        let trace = PowerTrace::constant(
            "t",
            Watts::from_milli(2.0),
            Seconds::new(10.0),
            Seconds::new(0.1),
        );
        // Blackouts only null the field: past the inner end the signal
        // stays zero, so the bound survives.
        let mut dark = EnergyAttack::new(TraceSource::new(trace.clone())).with_blackout(
            Seconds::new(4.0),
            Seconds::new(1.0),
            Seconds::new(1.0),
        );
        assert_eq!(dark.duration(), Some(Seconds::new(10.0)));
        assert_eq!(dark.power_at(Seconds::new(50.0)), Watts::ZERO);
        // A spoofed field keeps injecting power forever, so the source
        // must report itself unbounded.
        let mut baited = EnergyAttack::new(TraceSource::new(trace)).with_spoof(
            Seconds::new(4.0),
            Seconds::new(0.0),
            Seconds::new(1.0),
            Watts::from_milli(25.0),
        );
        assert_eq!(baited.duration(), None);
        assert_eq!(baited.power_at(Seconds::new(40.5)), Watts::from_milli(25.0));
    }

    #[test]
    fn window_boundary_ulp_probes_always_advance() {
        let mut src = EnergyAttack::new(steady(1.0)).with_blackout(
            Seconds::new(100.0),
            Seconds::new(0.0),
            Seconds::new(10.0),
        );
        for k in 1..500u64 {
            let boundary = k as f64 * 100.0;
            for ulps in [-2i64, -1, 0, 1, 2] {
                let tt = f64::from_bits((boundary.to_bits() as i64 + ulps) as u64);
                let seg = src.segment(Seconds::new(tt));
                assert!(seg.end.get() > tt, "segment stalled at {tt}");
            }
        }
    }

    #[test]
    fn pass_through_without_windows() {
        let mut src = EnergyAttack::new(steady(3.0));
        let seg = src.segment(Seconds::new(42.0));
        assert_eq!(seg.power, Watts::from_milli(3.0));
        assert_eq!(seg.end.get(), f64::INFINITY);
        assert_eq!(src.name(), "attack(steady)");
    }
}
