//! Gilbert–Elliott on/off RF field model.
//!
//! Ambient RF harvest is bursty: the harvester sits in a strong field
//! while a transmitter is near/unobstructed ("on") and in a weak floor
//! otherwise ("off"), with dwell times far longer than the sample
//! interval of any recording. The classic two-state Gilbert–Elliott
//! chain with exponential dwells captures exactly that — and as a
//! streaming source its segments *are* the dwells, so a week of field
//! history costs the adaptive kernel a few thousand strides instead of
//! millions of samples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use react_units::{Seconds, Watts};

use crate::source::{PowerSource, Segment};

/// Samples an exponential dwell with the given mean, floored so a
/// pathological draw can never produce a zero-length segment (which
/// would stall segment walkers).
pub(crate) fn exp_dwell(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-9..1.0);
    (-u.ln() * mean).max(1e-3)
}

/// A seeded two-state (Gilbert–Elliott) on/off RF field.
///
/// Dwells in each state are exponential with configurable means; the
/// on-state power takes a fresh uniform amplitude jitter each dwell
/// (field strength varies burst to burst). Deterministic given its
/// seed, unbounded in time, and rewindable: a backward query restarts
/// the chain from the seed and replays forward.
#[derive(Clone, Debug)]
pub struct MarkovRf {
    name: String,
    p_on: f64,
    p_off: f64,
    mean_on: f64,
    mean_off: f64,
    jitter: f64,
    seed: u64,
    rng: StdRng,
    on: bool,
    power: f64,
    seg_start: f64,
    seg_end: f64,
}

impl MarkovRf {
    /// Creates the chain. The initial state is drawn from the
    /// stationary distribution (`mean_on / (mean_on + mean_off)`), so
    /// time averages converge from `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics unless both dwell means are positive.
    pub fn new(
        name: impl Into<String>,
        p_on: Watts,
        p_off: Watts,
        mean_on: Seconds,
        mean_off: Seconds,
        seed: u64,
    ) -> Self {
        assert!(
            mean_on.get() > 0.0 && mean_off.get() > 0.0,
            "dwell means must be positive"
        );
        let mut source = Self {
            name: name.into(),
            p_on: p_on.get(),
            p_off: p_off.get(),
            mean_on: mean_on.get(),
            mean_off: mean_off.get(),
            jitter: 0.0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            on: false,
            power: 0.0,
            seg_start: 0.0,
            seg_end: 0.0,
        };
        source.reset();
        source
    }

    /// Per-dwell on-power amplitude jitter in `[0, 1)`: each on dwell
    /// scales `p_on` by a uniform factor in `[1 − j, 1 + j]`.
    ///
    /// # Panics
    ///
    /// Panics unless `jitter` is in `[0, 1)`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self.reset();
        self
    }

    /// Restarts the chain from its seed (the graceful rewind backing
    /// non-monotone queries).
    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        let stationary_on = self.mean_on / (self.mean_on + self.mean_off);
        self.on = self.rng.gen_bool(stationary_on);
        self.seg_start = 0.0;
        self.seg_end = 0.0;
        self.begin_segment();
    }

    /// Samples the current state's dwell and power, starting at
    /// `seg_start`.
    fn begin_segment(&mut self) {
        let mean = if self.on { self.mean_on } else { self.mean_off };
        self.seg_end = self.seg_start + exp_dwell(&mut self.rng, mean);
        // Draw the jitter unconditionally so the stream of dwells does
        // not depend on whether jitter is configured.
        let j: f64 = self.rng.gen_range(-1.0..1.0);
        self.power = if self.on {
            self.p_on * (1.0 + self.jitter * j)
        } else {
            self.p_off
        };
    }

    /// Steps to the next dwell.
    fn advance(&mut self) {
        self.seg_start = self.seg_end;
        self.on = !self.on;
        self.begin_segment();
    }

    /// Positions the walker on the segment covering `t` (rewinding from
    /// the seed for backward queries).
    fn ensure_covers(&mut self, t: f64) {
        if t < self.seg_start {
            self.reset();
        }
        while t >= self.seg_end {
            self.advance();
        }
    }
}

impl PowerSource for MarkovRf {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let tt = t.get();
        if !tt.is_finite() || tt < 0.0 {
            return Segment::dark(Seconds::ZERO);
        }
        self.ensure_covers(tt);
        Segment {
            power: Watts::new(self.power),
            end: Seconds::new(self.seg_end),
        }
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> MarkovRf {
        MarkovRf::new(
            "ge",
            Watts::from_milli(6.0),
            Watts::from_micro(30.0),
            Seconds::new(8.0),
            Seconds::new(45.0),
            7,
        )
        .with_jitter(0.3)
    }

    #[test]
    fn deterministic_and_two_valued() {
        let mut a = field();
        let mut b = field();
        let mut on_time = 0.0;
        let dt = 0.5;
        let mut t = 0.0;
        while t < 3600.0 {
            let s = Seconds::new(t);
            let (pa, pb) = (a.power_at(s), b.power_at(s));
            assert_eq!(pa, pb, "at t={t}");
            if pa.to_milli() > 1.0 {
                on_time += dt;
            }
            t += dt;
        }
        // Stationary on-share ≈ 8/53 ≈ 15 %; allow wide slack on 1 h.
        let share = on_time / 3600.0;
        assert!((0.04..0.4).contains(&share), "on share {share}");
    }

    #[test]
    fn segments_are_constant_within_their_span() {
        let mut src = field();
        let mut t = 0.0;
        while t < 600.0 {
            let seg = src.segment(Seconds::new(t));
            let probe = 0.5 * (t + seg.end.get().min(t + 60.0));
            assert_eq!(src.power_at(Seconds::new(probe)), seg.power);
            t = seg.end.get();
        }
    }

    #[test]
    fn backward_queries_rewind_gracefully() {
        let mut src = field();
        let late = src.power_at(Seconds::new(900.0));
        let early = src.power_at(Seconds::new(3.0));
        assert_eq!(early, field().power_at(Seconds::new(3.0)));
        assert_eq!(src.power_at(Seconds::new(900.0)), late);
    }

    #[test]
    fn unbounded_and_guarded() {
        let mut src = field();
        assert_eq!(src.duration(), None);
        assert_eq!(src.power_at(Seconds::new(-4.0)), Watts::ZERO);
        assert_eq!(src.power_at(Seconds::new(f64::NAN)), Watts::ZERO);
    }
}
