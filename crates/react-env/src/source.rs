//! The streaming power-source abstraction and the recorded-trace
//! adapter.
//!
//! A [`PowerSource`] is the generalization of a bounded
//! [`PowerTrace`]: a piecewise-constant harvested-power signal that may
//! extend over an *unbounded* horizon, materialized lazily segment by
//! segment. Two queries make it usable by the simulation engine without
//! ever sampling the whole signal:
//!
//! * [`PowerSource::power_at`] — the fine-step query the kernel issues
//!   while the MCU runs, and
//! * [`PowerSource::segment`] — the piecewise-constant span covering a
//!   time, whose end is the *next-event hint* the adaptive kernel uses
//!   to integrate whole MCU-off stretches in closed form.
//!
//! Sources are stateful cursors (generative models keep an RNG and the
//! current dwell), but they are *logically pure*: a seeded source
//! answers every time query with the same value no matter the query
//! order. Backward queries trigger a graceful rewind — the generator
//! restarts from its seed and replays forward — so out-of-order probes
//! (easy to trigger from the streaming kernel) are always correct, just
//! slower.

use std::sync::Arc;

use react_traces::PowerTrace;
use react_units::{Seconds, Watts};

/// One piecewise-constant span of a power signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Constant available power over the span.
    pub power: Watts,
    /// Time at which the power next changes (`+inf` for a constant
    /// tail). The adaptive kernel integrates analytically up to here.
    pub end: Seconds,
}

impl Segment {
    /// A zero-power segment ending at `end`.
    pub fn dark(end: Seconds) -> Self {
        Self {
            power: Watts::ZERO,
            end,
        }
    }
}

/// A streaming harvested-power signal: seeded, piecewise-constant, and
/// (for generative models) unbounded.
///
/// Implementations take `&mut self` because they are cursors — they
/// cache the segment covering the last query — but they must behave as
/// pure functions of time: any query order yields the same values, with
/// non-monotone queries handled by an internal rewind.
pub trait PowerSource: std::fmt::Debug + Send {
    /// Human-readable source name (shows up in scenario listings).
    fn name(&self) -> &str;

    /// The piecewise-constant segment covering `t`. Negative or
    /// non-finite times yield a degenerate zero segment.
    fn segment(&mut self, t: Seconds) -> Segment;

    /// Available power at `t`; the default resolves through
    /// [`PowerSource::segment`].
    fn power_at(&mut self, t: Seconds) -> Watts {
        self.segment(t).power
    }

    /// Bounded signal duration, or `None` for unbounded streaming
    /// sources. Bounded sources deliver zero power past their duration
    /// (matching [`PowerTrace::power_at`] semantics); simulations over
    /// unbounded sources must pick an explicit horizon.
    fn duration(&self) -> Option<Seconds> {
        None
    }

    /// Clones the source behind a box, preserving seed and
    /// configuration (the cursor position need not survive — a clone
    /// may rewind). Lets `Box<dyn PowerSource>` registries hand out
    /// per-run cursors.
    fn clone_source(&self) -> Box<dyn PowerSource>;
}

impl PowerSource for Box<dyn PowerSource> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        (**self).segment(t)
    }

    fn power_at(&mut self, t: Seconds) -> Watts {
        (**self).power_at(t)
    }

    fn duration(&self) -> Option<Seconds> {
        (**self).duration()
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        (**self).clone_source()
    }
}

impl Clone for Box<dyn PowerSource> {
    fn clone(&self) -> Self {
        self.clone_source()
    }
}

/// Splits `t ≥ 0` into `(cycle_base, phase)` for a periodic signal:
/// `cycle_base = floor(t/period)·period`, phase clamped non-negative.
/// The quotient can round *up* exactly at a cycle boundary, which would
/// otherwise yield a one-ulp-negative phase — and, downstream, an
/// underflowing breakpoint lookup or a non-advancing segment. Every
/// periodic model resolves its phase through here so that boundary
/// subtlety lives in one place.
#[inline]
pub(crate) fn cycle_phase(t: f64, period: f64) -> (f64, f64) {
    let base = (t / period).floor() * period;
    (base, (t - base).max(0.0))
}

/// A recorded [`PowerTrace`] viewed as a [`PowerSource`].
///
/// This is the adapter that makes every pre-existing code path one
/// instance of the streaming abstraction: the trace is held behind an
/// [`Arc`] (shared with sweep/matrix runners), and queries resolve
/// through the same [`WindowCache`] fast path `PowerCursor` uses, so
/// `power_at` here is bit-identical to [`PowerTrace::power_at`] for
/// every input.
///
/// [`WindowCache`]: react_traces::WindowCache
#[derive(Clone, Debug)]
pub struct TraceSource {
    trace: Arc<PowerTrace>,
    cache: react_traces::WindowCache,
}

impl TraceSource {
    /// Wraps a trace (owned or already shared) as a streaming source.
    pub fn new(trace: impl Into<Arc<PowerTrace>>) -> Self {
        let trace = trace.into();
        let mut cache = react_traces::WindowCache::new();
        cache.lookup(&trace, 0.0);
        Self { trace, cache }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// A cheap handle on the shared trace (for parallel runners).
    pub fn shared_trace(&self) -> Arc<PowerTrace> {
        Arc::clone(&self.trace)
    }
}

impl PowerSource for TraceSource {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let (power, end) = self.cache.lookup(&self.trace, t.get());
        Segment {
            power: Watts::new(power),
            end: Seconds::new(end),
        }
    }

    fn duration(&self) -> Option<Seconds> {
        Some(self.trace.duration())
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

/// Samples a source onto a fixed-`dt` grid, producing a bounded
/// [`PowerTrace`] with zero-order-hold semantics (sample `i` holds
/// `power_at(i·dt)`). The trace covers the *whole* horizon: when the
/// horizon is not a multiple of `dt`, the trailing partial window is
/// held at full width rather than dropped. This is the *opposite* of
/// how the engine normally consumes sources — the whole point of
/// streaming is never doing this at fine resolution over long
/// horizons — but it is what comparison baselines, CSV export, and the
/// round-trip tests need.
///
/// # Panics
///
/// Panics if `dt` is not positive or `horizon < dt`.
pub fn materialize(
    source: &mut dyn PowerSource,
    name: impl Into<String>,
    dt: Seconds,
    horizon: Seconds,
) -> PowerTrace {
    assert!(dt.get() > 0.0, "sample interval must be positive");
    assert!(horizon >= dt, "horizon shorter than one sample");
    // Ceil so no tail of the horizon is silently zeroed; the 1e-9
    // guard keeps near-exact quotients (600.0 / 0.1 → 6000.000…01)
    // from gaining a spurious extra sample.
    let n = ((horizon.get() / dt.get()) - 1e-9).ceil().max(1.0) as usize;
    let samples = (0..n)
        .map(|i| source.power_at(Seconds::new(i as f64 * dt.get())))
        .collect();
    PowerTrace::new(name, dt, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_traces::PowerTrace;

    fn ramp() -> PowerTrace {
        let samples = (0..10).map(|i| Watts::from_milli(i as f64)).collect();
        PowerTrace::new("ramp", Seconds::new(0.5), samples)
    }

    #[test]
    fn trace_source_matches_power_at_everywhere() {
        let trace = ramp();
        let mut source = TraceSource::new(trace.clone());
        let mut time = -0.25;
        while time < 6.5 {
            let s = Seconds::new(time);
            assert_eq!(source.power_at(s), trace.power_at(s), "at t={time}");
            time += 0.003;
        }
        // Scrambled probes, including past-end, negative, and NaN.
        for &time in &[3.1, 0.2, 4.9, 0.0, 7.5, -1.0, 2.6, 100.0, 1.1] {
            let s = Seconds::new(time);
            assert_eq!(source.power_at(s), trace.power_at(s), "at t={time}");
        }
        assert_eq!(source.power_at(Seconds::new(f64::NAN)), Watts::ZERO);
    }

    #[test]
    fn trace_source_segments_cover_sample_windows() {
        let trace = ramp();
        let mut source = TraceSource::new(trace);
        let seg = source.segment(Seconds::new(1.26));
        assert!((seg.power.to_milli() - 2.0).abs() < 1e-12);
        assert!((seg.end.get() - 1.5).abs() < 1e-12);
        // Past the end: the infinite zero tail.
        let seg = source.segment(Seconds::new(9.0));
        assert_eq!(seg.power, Watts::ZERO);
        assert_eq!(seg.end.get(), f64::INFINITY);
        assert_eq!(source.duration(), Some(Seconds::new(5.0)));
    }

    #[test]
    fn materialize_round_trips_a_trace() {
        let trace = ramp();
        let mut source = TraceSource::new(trace.clone());
        let back = materialize(&mut source, "ramp", Seconds::new(0.5), Seconds::new(5.0));
        assert_eq!(back, trace);
    }

    #[test]
    fn boxed_sources_clone_and_forward() {
        let mut boxed: Box<dyn PowerSource> = Box::new(TraceSource::new(ramp()));
        let mut copy = boxed.clone();
        let t = Seconds::new(2.6);
        assert_eq!(boxed.power_at(t), copy.power_at(t));
        assert_eq!(boxed.name(), "ramp");
        assert_eq!(boxed.duration(), Some(Seconds::new(5.0)));
    }
}
