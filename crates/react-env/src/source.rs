//! The streaming power-source abstraction and the recorded-trace
//! adapter.
//!
//! A [`PowerSource`] is the generalization of a bounded
//! [`PowerTrace`]: a piecewise-constant harvested-power signal that may
//! extend over an *unbounded* horizon, materialized lazily segment by
//! segment. Two queries make it usable by the simulation engine without
//! ever sampling the whole signal:
//!
//! * [`PowerSource::power_at`] — the fine-step query the kernel issues
//!   while the MCU runs, and
//! * [`PowerSource::segment`] — the piecewise-constant span covering a
//!   time, whose end is the *next-event hint* the adaptive kernel uses
//!   to integrate whole MCU-off stretches in closed form.
//!
//! Sources are stateful cursors (generative models keep an RNG and the
//! current dwell), but they are *logically pure*: a seeded source
//! answers every time query with the same value no matter the query
//! order. Backward queries trigger a graceful rewind — the generator
//! restarts from its seed and replays forward — so out-of-order probes
//! (easy to trigger from the streaming kernel) are always correct, just
//! slower.

use std::sync::Arc;

use react_traces::PowerTrace;
use react_units::{Seconds, Watts};

/// Derives the seed salt for one node of a fleet from the fleet seed
/// and the node's index — the cheap per-node stream fan-out the fleet
/// runner jitters its environments with.
///
/// A splitmix64-style finalizer: each (seed, index) pair lands on a
/// decorrelated 64-bit salt without allocating or streaming state, so
/// fanning a base scenario out to 10⁵⁺ nodes costs one multiply chain
/// per node. The identity case is preserved: fleet seed 0, node 0
/// yields salt 0 — the canonical registry stream every existing
/// baseline pins down.
pub fn node_salt(fleet_seed: u64, node_index: u64) -> u64 {
    let mut z = fleet_seed ^ node_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One observable event in the victim's execution, reported back to the
/// environment through the simulator's feedback channel.
///
/// A real energy attacker cannot read the node's registers, but it can
/// watch externally visible behavior: the power gate snapping closed
/// (boot), the rail collapsing (brown-out), the radio keying up, and —
/// with an oscilloscope on the harvesting rail — the capacitance steps
/// of an adaptive buffer reconfiguring. Stateful adversaries
/// ([`AdaptiveAttack`](crate::AdaptiveAttack)) consume these events to
/// time their strikes; benign sources ignore them (the default
/// [`PowerSource::observe`] is a no-op).
///
/// Event times are the simulator's clock at emission. The feedback
/// contract is causal: an event at time `t` may only influence the
/// source's output at times `≥ t` (asserted by the adversary property
/// tests — an attacker can never rewrite the past it was already
/// queried about).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VictimEvent {
    /// The power gate enabled the MCU (cold or warm boot).
    Boot {
        /// Simulator clock at the gate transition.
        at: Seconds,
    },
    /// The rail fell to the brown-out threshold and the gate opened.
    BrownOut {
        /// Simulator clock at the gate transition.
        at: Seconds,
    },
    /// The workload keyed a power-hungry peripheral (radio) on.
    RadioOn {
        /// Simulator clock at the rising edge.
        at: Seconds,
    },
    /// The radio-class peripheral released.
    RadioOff {
        /// Simulator clock at the falling edge.
        at: Seconds,
    },
    /// The buffer's controller reconfigured its capacitance.
    Reconfig {
        /// Simulator clock when the reconfiguration became visible.
        at: Seconds,
    },
}

impl VictimEvent {
    /// The event's timestamp.
    pub fn at(self) -> Seconds {
        match self {
            VictimEvent::Boot { at }
            | VictimEvent::BrownOut { at }
            | VictimEvent::RadioOn { at }
            | VictimEvent::RadioOff { at }
            | VictimEvent::Reconfig { at } => at,
        }
    }
}

/// One piecewise-constant span of a power signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Constant available power over the span.
    pub power: Watts,
    /// Time at which the power next changes (`+inf` for a constant
    /// tail). The adaptive kernel integrates analytically up to here.
    pub end: Seconds,
}

impl Segment {
    /// A zero-power segment ending at `end`.
    pub fn dark(end: Seconds) -> Self {
        Self {
            power: Watts::ZERO,
            end,
        }
    }
}

/// A streaming harvested-power signal: seeded, piecewise-constant, and
/// (for generative models) unbounded.
///
/// Implementations take `&mut self` because they are cursors — they
/// cache the segment covering the last query — but they must behave as
/// pure functions of time: any query order yields the same values, with
/// non-monotone queries handled by an internal rewind.
pub trait PowerSource: std::fmt::Debug + Send {
    /// Human-readable source name (shows up in scenario listings).
    fn name(&self) -> &str;

    /// The piecewise-constant segment covering `t`. Negative or
    /// non-finite times yield a degenerate zero segment.
    fn segment(&mut self, t: Seconds) -> Segment;

    /// Available power at `t`; the default resolves through
    /// [`PowerSource::segment`].
    fn power_at(&mut self, t: Seconds) -> Watts {
        self.segment(t).power
    }

    /// Bounded signal duration, or `None` for unbounded streaming
    /// sources. Bounded sources deliver zero power past their duration
    /// (matching [`PowerTrace::power_at`] semantics); simulations over
    /// unbounded sources must pick an explicit horizon.
    fn duration(&self) -> Option<Seconds> {
        None
    }

    /// Feedback channel: the simulator reports externally visible
    /// victim behavior ([`VictimEvent`]) back to the environment.
    /// Benign sources ignore it (this default); stateful adversaries
    /// adapt their strike schedule to it. Implementations must stay
    /// causal — an event at `t` may only change outputs at times `≥ t`.
    fn observe(&mut self, event: VictimEvent) {
        let _ = event;
    }

    /// Clones the source behind a box, preserving seed and
    /// configuration (the cursor position need not survive — a clone
    /// may rewind). Lets `Box<dyn PowerSource>` registries hand out
    /// per-run cursors.
    fn clone_source(&self) -> Box<dyn PowerSource>;
}

impl PowerSource for Box<dyn PowerSource> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        (**self).segment(t)
    }

    fn power_at(&mut self, t: Seconds) -> Watts {
        (**self).power_at(t)
    }

    fn duration(&self) -> Option<Seconds> {
        (**self).duration()
    }

    fn observe(&mut self, event: VictimEvent) {
        (**self).observe(event)
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        (**self).clone_source()
    }
}

impl Clone for Box<dyn PowerSource> {
    fn clone(&self) -> Self {
        self.clone_source()
    }
}

/// Clamps a computed segment end to land strictly after the query
/// time `t` (which must be finite and non-negative — models
/// early-return degenerate segments before reaching their end
/// arithmetic otherwise). Base-plus-offset boundary arithmetic can
/// round an end back onto `t` itself — `floor(t/period)·period +
/// breakpoint` with an inexact breakpoint, or `(idx+1)·dt` on a
/// quantized grid — which would hand segment walkers a non-advancing
/// window and hang them. Every model routes its final end through
/// here, so the `end > t` trait contract holds at every representable
/// time; the claimed constant span in the degenerate case is one ulp
/// (trivially true), which the kernel treats as a fine step anyway.
#[inline]
pub(crate) fn end_after(t: f64, end: f64) -> f64 {
    if end > t {
        end
    } else {
        f64::from_bits(t.to_bits() + 1)
    }
}

/// Splits `t ≥ 0` into `(cycle_base, phase)` for a periodic signal:
/// `cycle_base = floor(t/period)·period`, phase clamped non-negative.
/// The quotient can round *up* exactly at a cycle boundary, which would
/// otherwise yield a one-ulp-negative phase — and, downstream, an
/// underflowing breakpoint lookup or a non-advancing segment. Every
/// periodic model resolves its phase through here so that boundary
/// subtlety lives in one place.
#[inline]
pub(crate) fn cycle_phase(t: f64, period: f64) -> (f64, f64) {
    let base = (t / period).floor() * period;
    (base, (t - base).max(0.0))
}

/// A recorded [`PowerTrace`] viewed as a [`PowerSource`].
///
/// This is the adapter that makes every pre-existing code path one
/// instance of the streaming abstraction: the trace is held behind an
/// [`Arc`] (shared with sweep/matrix runners), and queries resolve
/// through the same [`WindowCache`] fast path `PowerCursor` uses, so
/// `power_at` here is bit-identical to [`PowerTrace::power_at`] for
/// every input.
///
/// [`WindowCache`]: react_traces::WindowCache
#[derive(Clone, Debug)]
pub struct TraceSource {
    trace: Arc<PowerTrace>,
    cache: react_traces::WindowCache,
}

impl TraceSource {
    /// Wraps a trace (owned or already shared) as a streaming source.
    pub fn new(trace: impl Into<Arc<PowerTrace>>) -> Self {
        let trace = trace.into();
        let mut cache = react_traces::WindowCache::new();
        cache.lookup(&trace, 0.0);
        Self { trace, cache }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// A cheap handle on the shared trace (for parallel runners).
    pub fn shared_trace(&self) -> Arc<PowerTrace> {
        Arc::clone(&self.trace)
    }
}

impl PowerSource for TraceSource {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let (power, end) = self.cache.lookup(&self.trace, t.get());
        // A query can land exactly on its window's float-degenerate
        // upper boundary (`(idx+1)·dt` rounds to `t` itself); the
        // power value stays `power_at(t)` bit-for-bit and the end is
        // nudged one ulp so walkers always advance.
        let end = if t.get() >= 0.0 && t.get().is_finite() {
            end_after(t.get(), end)
        } else {
            end
        };
        Segment {
            power: Watts::new(power),
            end: Seconds::new(end),
        }
    }

    fn duration(&self) -> Option<Seconds> {
        Some(self.trace.duration())
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

/// Samples a source onto a fixed-`dt` grid, producing a bounded
/// [`PowerTrace`] with zero-order-hold semantics (sample `i` holds
/// `power_at(i·dt)`). The trace covers the *whole* horizon: when the
/// horizon is not a multiple of `dt`, the trailing partial window is
/// held at full width rather than dropped. This is the *opposite* of
/// how the engine normally consumes sources — the whole point of
/// streaming is never doing this at fine resolution over long
/// horizons — but it is what comparison baselines, CSV export, and the
/// round-trip tests need.
///
/// # Panics
///
/// Panics if `dt` is not positive or `horizon < dt`.
pub fn materialize(
    source: &mut dyn PowerSource,
    name: impl Into<String>,
    dt: Seconds,
    horizon: Seconds,
) -> PowerTrace {
    assert!(dt.get() > 0.0, "sample interval must be positive");
    assert!(horizon >= dt, "horizon shorter than one sample");
    // Ceil so no tail of the horizon is silently zeroed; the 1e-9
    // guard keeps near-exact quotients (600.0 / 0.1 → 6000.000…01)
    // from gaining a spurious extra sample.
    let n = ((horizon.get() / dt.get()) - 1e-9).ceil().max(1.0) as usize;
    let samples = (0..n)
        .map(|i| source.power_at(Seconds::new(i as f64 * dt.get())))
        .collect();
    PowerTrace::new(name, dt, samples)
}

/// Environment-side outage statistics over a bounded window, computed
/// by walking native segments (the signal is never materialized).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DarkStats {
    /// Longest contiguous span at or below the dark floor, in seconds
    /// (adjacent dark segments are merged).
    pub longest_dark_s: f64,
    /// Fraction of the window spent at or below the dark floor.
    pub dark_fraction: f64,
    /// Native piecewise-constant segments the window decomposes into —
    /// the work the adaptive kernel actually pays for the environment.
    pub segments: u64,
}

/// Walks `source` segment by segment over `[0, horizon)` and reduces it
/// to [`DarkStats`] against a `floor` power threshold. This is the
/// environment half of the scenario report's responsiveness story: the
/// longest outage an environment *presents* is what a buffer's longest
/// outage *survived* is judged against.
pub fn dark_stats(source: &mut dyn PowerSource, horizon: Seconds, floor: Watts) -> DarkStats {
    assert!(
        horizon.get() > 0.0 && horizon.get().is_finite(),
        "dark_stats needs a bounded positive window"
    );
    let mut stats = DarkStats::default();
    let mut dark_run = 0.0_f64;
    let mut dark_total = 0.0_f64;
    let mut t = 0.0;
    while t < horizon.get() {
        let seg = source.segment(Seconds::new(t));
        let end = seg.end.get().min(horizon.get());
        let span = (end - t).max(0.0);
        stats.segments += 1;
        if seg.power <= floor {
            dark_run += span;
            dark_total += span;
            stats.longest_dark_s = stats.longest_dark_s.max(dark_run);
        } else {
            dark_run = 0.0;
        }
        if seg.end.get() >= horizon.get() {
            break;
        }
        // Defense in depth: a source that ever hands back a
        // non-advancing segment (contract violation) must not hang the
        // walk — step one ulp and keep going.
        t = if seg.end.get() > t {
            seg.end.get()
        } else {
            f64::from_bits(t.to_bits() + 1)
        };
    }
    stats.dark_fraction = dark_total / horizon.get();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_traces::PowerTrace;

    fn ramp() -> PowerTrace {
        let samples = (0..10).map(|i| Watts::from_milli(i as f64)).collect();
        PowerTrace::new("ramp", Seconds::new(0.5), samples)
    }

    #[test]
    fn trace_source_matches_power_at_everywhere() {
        let trace = ramp();
        let mut source = TraceSource::new(trace.clone());
        let mut time = -0.25;
        while time < 6.5 {
            let s = Seconds::new(time);
            assert_eq!(source.power_at(s), trace.power_at(s), "at t={time}");
            time += 0.003;
        }
        // Scrambled probes, including past-end, negative, and NaN.
        for &time in &[3.1, 0.2, 4.9, 0.0, 7.5, -1.0, 2.6, 100.0, 1.1] {
            let s = Seconds::new(time);
            assert_eq!(source.power_at(s), trace.power_at(s), "at t={time}");
        }
        assert_eq!(source.power_at(Seconds::new(f64::NAN)), Watts::ZERO);
    }

    #[test]
    fn trace_source_segments_cover_sample_windows() {
        let trace = ramp();
        let mut source = TraceSource::new(trace);
        let seg = source.segment(Seconds::new(1.26));
        assert!((seg.power.to_milli() - 2.0).abs() < 1e-12);
        assert!((seg.end.get() - 1.5).abs() < 1e-12);
        // Past the end: the infinite zero tail.
        let seg = source.segment(Seconds::new(9.0));
        assert_eq!(seg.power, Watts::ZERO);
        assert_eq!(seg.end.get(), f64::INFINITY);
        assert_eq!(source.duration(), Some(Seconds::new(5.0)));
    }

    #[test]
    fn materialize_round_trips_a_trace() {
        let trace = ramp();
        let mut source = TraceSource::new(trace.clone());
        let back = materialize(&mut source, "ramp", Seconds::new(0.5), Seconds::new(5.0));
        assert_eq!(back, trace);
    }

    #[test]
    fn segment_walk_advances_across_degenerate_dt_boundaries() {
        // 0.1 s is inexact in binary: for some k, `k·0.1` rounds to a
        // double whose quotient by 0.1 floors back to `k − 1`, so a
        // walker standing exactly on that boundary used to get a
        // window ending at its own query time and spin forever (seen
        // at t = 43·0.1 on the RF Cart paper trace). The source must
        // uphold the `end > t` contract at every representable time.
        let trace = PowerTrace::constant(
            "w",
            Watts::from_milli(1.0),
            Seconds::new(100.0),
            Seconds::new(0.1),
        );
        let mut source = TraceSource::new(trace);
        let mut t = 0.0;
        let mut n = 0u64;
        while t < 100.0 {
            let seg = source.segment(Seconds::new(t));
            assert!(seg.end.get() > t, "non-advancing segment at t={t}");
            n += 1;
            assert!(n < 1_100, "walk did not terminate");
            t = seg.end.get();
        }
    }

    #[test]
    fn periodic_models_advance_across_inexact_breakpoints() {
        // `floor(t/period)·period + breakpoint` with an inexact 0.1 s
        // breakpoint rounds an interval end back onto the query time a
        // few cycles in (verified numerically: a Mobility walker used
        // to stall on the third segment with period 0.7). Every
        // periodic model must keep `end > t` anyway.
        let mut m = crate::Mobility::cyclic(
            "m",
            vec![
                (Seconds::new(0.0), Watts::from_milli(1.0)),
                (Seconds::new(0.1), Watts::from_milli(2.0)),
            ],
            Seconds::new(0.7),
        );
        let mut t = 0.0;
        for _ in 0..64 {
            let seg = m.segment(Seconds::new(t));
            assert!(seg.end.get() > t, "mobility stalled at t={t:.17}");
            t = seg.end.get();
        }
        // Same base-plus-offset arithmetic under an attack wrapper.
        let mut a = crate::EnergyAttack::new(m).with_blackout(
            Seconds::new(0.7),
            Seconds::new(0.1),
            Seconds::new(0.3),
        );
        let mut t = 0.0;
        for _ in 0..64 {
            let seg = a.segment(Seconds::new(t));
            assert!(seg.end.get() > t, "attack stalled at t={t:.17}");
            t = seg.end.get();
        }
    }

    #[test]
    fn dark_stats_merge_adjacent_dark_segments() {
        // 0-2 s dark, 2-3 s lit, 3-5 s dark (two 1 s samples merge).
        let samples = vec![
            Watts::ZERO,
            Watts::ZERO,
            Watts::from_milli(5.0),
            Watts::ZERO,
            Watts::ZERO,
        ];
        let trace = PowerTrace::new("d", Seconds::new(1.0), samples);
        let mut source = TraceSource::new(trace);
        let stats = dark_stats(&mut source, Seconds::new(5.0), Watts::from_micro(1.0));
        assert!((stats.longest_dark_s - 2.0).abs() < 1e-9, "{stats:?}");
        assert!((stats.dark_fraction - 0.8).abs() < 1e-9, "{stats:?}");
        assert!(stats.segments >= 4);
        // The window clamps: only the first dark second counts.
        let mut source = TraceSource::new(PowerTrace::new(
            "d2",
            Seconds::new(1.0),
            vec![Watts::ZERO, Watts::from_milli(1.0)],
        ));
        let stats = dark_stats(&mut source, Seconds::new(1.5), Watts::from_micro(1.0));
        assert!((stats.longest_dark_s - 1.0).abs() < 1e-9, "{stats:?}");
    }

    #[test]
    fn node_salt_fan_out_is_distinct_and_identity_preserving() {
        // Fleet seed 0 node 0 must be the canonical (unsalted) stream.
        assert_eq!(node_salt(0, 0), 0);
        // Consecutive node indices must land on decorrelated salts, and
        // different fleet seeds must not collide for the same node.
        let mut seen = std::collections::HashSet::new();
        for node in 0..10_000u64 {
            assert!(seen.insert(node_salt(7, node)), "collision at node {node}");
        }
        for node in 1..1_000u64 {
            assert_ne!(node_salt(7, node), node_salt(8, node));
            // And no low-bit degeneracy: neighbors differ in many bits.
            let x = node_salt(7, node) ^ node_salt(7, node + 1);
            assert!(x.count_ones() > 8, "weak diffusion at node {node}");
        }
    }

    #[test]
    fn boxed_sources_clone_and_forward() {
        let mut boxed: Box<dyn PowerSource> = Box::new(TraceSource::new(ramp()));
        let mut copy = boxed.clone();
        let t = Seconds::new(2.6);
        assert_eq!(boxed.power_at(t), copy.power_at(t));
        assert_eq!(boxed.name(), "ramp");
        assert_eq!(boxed.duration(), Some(Seconds::new(5.0)));
    }
}
