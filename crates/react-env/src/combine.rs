//! Source combinators: build compound environments from simple ones.
//!
//! Every combinator preserves the piecewise-constant contract by
//! intersecting its operands' segments — the combined segment ends at
//! the *earliest* operand boundary — so the adaptive kernel's
//! closed-form idle strides stay exact through arbitrarily nested
//! compositions.

use react_units::{Seconds, Watts};

use crate::source::{PowerSource, Segment, VictimEvent};

/// The sum of two sources (e.g. solar + ambient RF on one rail).
#[derive(Clone, Debug)]
pub struct Mix<A, B> {
    a: A,
    b: B,
    name: String,
}

impl<A: PowerSource, B: PowerSource> Mix<A, B> {
    /// Combines two sources additively.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("{}+{}", a.name(), b.name());
        Self { a, b, name }
    }
}

impl<A, B> PowerSource for Mix<A, B>
where
    A: PowerSource + Clone + 'static,
    B: PowerSource + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let sa = self.a.segment(t);
        let sb = self.b.segment(t);
        Segment {
            power: sa.power + sb.power,
            end: sa.end.min(sb.end),
        }
    }

    fn duration(&self) -> Option<Seconds> {
        // Bounded only when both operands are: past its duration a
        // bounded source contributes zero, so the mix runs as long as
        // the longer one.
        match (self.a.duration(), self.b.duration()) {
            (Some(da), Some(db)) => Some(da.max(db)),
            _ => None,
        }
    }

    fn observe(&mut self, event: VictimEvent) {
        self.a.observe(event);
        self.b.observe(event);
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

/// A source scaled by a constant factor (panel area, antenna gain).
#[derive(Clone, Debug)]
pub struct Scale<S> {
    inner: S,
    factor: f64,
    name: String,
}

impl<S: PowerSource> Scale<S> {
    /// Multiplies every power value by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and non-negative.
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        let name = format!("{factor}x {}", inner.name());
        Self {
            inner,
            factor,
            name,
        }
    }
}

impl<S: PowerSource + Clone + 'static> PowerSource for Scale<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let seg = self.inner.segment(t);
        Segment {
            power: seg.power * self.factor,
            end: seg.end,
        }
    }

    fn duration(&self) -> Option<Seconds> {
        self.inner.duration()
    }

    fn observe(&mut self, event: VictimEvent) {
        self.inner.observe(event);
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

/// A source clamped to a ceiling (a converter's input saturation).
#[derive(Clone, Debug)]
pub struct Cap<S> {
    inner: S,
    cap: f64,
    name: String,
}

impl<S: PowerSource> Cap<S> {
    /// Clamps every power value to at most `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `cap` is non-negative.
    pub fn new(inner: S, cap: Watts) -> Self {
        assert!(cap.get() >= 0.0, "cap must be non-negative");
        let name = format!("cap({})", inner.name());
        Self {
            inner,
            cap: cap.get(),
            name,
        }
    }
}

impl<S: PowerSource + Clone + 'static> PowerSource for Cap<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let seg = self.inner.segment(t);
        Segment {
            power: seg.power.min(Watts::new(self.cap)),
            end: seg.end,
        }
    }

    fn duration(&self) -> Option<Seconds> {
        self.inner.duration()
    }

    fn observe(&mut self, event: VictimEvent) {
        self.inner.observe(event);
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

/// Source `a` until `at`, then source `b` with its clock rebased to the
/// splice point (deployment relocation, season change).
#[derive(Clone, Debug)]
pub struct Splice<A, B> {
    a: A,
    b: B,
    at: f64,
    name: String,
}

impl<A: PowerSource, B: PowerSource> Splice<A, B> {
    /// Switches from `a` to `b` at time `at`; `b` sees time starting
    /// from zero at the splice.
    ///
    /// # Panics
    ///
    /// Panics unless `at` is positive and finite.
    pub fn new(a: A, b: B, at: Seconds) -> Self {
        assert!(
            at.get() > 0.0 && at.get().is_finite(),
            "splice point must be positive and finite"
        );
        let name = format!("{}|{}", a.name(), b.name());
        Self {
            a,
            b,
            at: at.get(),
            name,
        }
    }
}

impl<A, B> PowerSource for Splice<A, B>
where
    A: PowerSource + Clone + 'static,
    B: PowerSource + Clone + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let tt = t.get();
        if !tt.is_finite() || tt < 0.0 {
            return Segment::dark(Seconds::ZERO);
        }
        if tt < self.at {
            let seg = self.a.segment(t);
            Segment {
                power: seg.power,
                end: seg.end.min(Seconds::new(self.at)),
            }
        } else {
            let seg = self.b.segment(Seconds::new(tt - self.at));
            Segment {
                power: seg.power,
                // `+inf + at` stays `+inf`, so constant tails survive;
                // the rebase sum can also round back onto `t`, so the
                // end is clamped strictly past the query.
                end: Seconds::new(crate::source::end_after(tt, seg.end.get() + self.at)),
            }
        }
    }

    fn duration(&self) -> Option<Seconds> {
        self.b.duration().map(|d| Seconds::new(self.at) + d)
    }

    fn observe(&mut self, event: VictimEvent) {
        self.a.observe(event);
        self.b.observe(event);
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MarkovRf, Mobility};

    fn steady(power_mw: f64, name: &str) -> Mobility {
        Mobility::schedule(name, vec![(Seconds::new(0.0), Watts::from_milli(power_mw))])
    }

    fn bursty() -> MarkovRf {
        MarkovRf::new(
            "rf",
            Watts::from_milli(5.0),
            Watts::from_micro(10.0),
            Seconds::new(4.0),
            Seconds::new(20.0),
            3,
        )
    }

    #[test]
    fn mix_adds_and_intersects_segments() {
        let mut mixed = Mix::new(steady(1.0, "a"), bursty());
        let mut rf = bursty();
        for i in 0..200 {
            let t = Seconds::new(i as f64 * 1.7);
            let want = Watts::from_milli(1.0) + rf.power_at(t);
            assert_eq!(mixed.power_at(t), want, "at {t:?}");
        }
        let seg = mixed.segment(Seconds::new(10.0));
        let rf_seg = rf.segment(Seconds::new(10.0));
        assert_eq!(seg.end, rf_seg.end); // steady's end is +inf
    }

    #[test]
    fn scale_and_cap_compose() {
        let mut src = Cap::new(Scale::new(steady(4.0, "s"), 3.0), Watts::from_milli(10.0));
        // 4 mW × 3 = 12 mW, capped at 10 mW.
        assert_eq!(src.power_at(Seconds::new(1.0)), Watts::from_milli(10.0));
        let mut unclipped = Cap::new(Scale::new(steady(2.0, "s"), 3.0), Watts::from_milli(10.0));
        assert_eq!(
            unclipped.power_at(Seconds::new(1.0)),
            Watts::from_milli(6.0)
        );
    }

    #[test]
    fn splice_switches_and_rebases_time() {
        let mut src = Splice::new(steady(1.0, "before"), bursty(), Seconds::new(100.0));
        assert_eq!(src.power_at(Seconds::new(50.0)), Watts::from_milli(1.0));
        // The pre-splice segment is clipped at the splice point.
        let seg = src.segment(Seconds::new(50.0));
        assert!((seg.end.get() - 100.0).abs() < 1e-9);
        // After the splice, b sees rebased time.
        let mut b = bursty();
        for i in 0..100 {
            let t = 100.0 + i as f64 * 2.3;
            assert_eq!(
                src.power_at(Seconds::new(t)),
                b.power_at(Seconds::new(t - 100.0)),
                "at t={t}"
            );
        }
    }
}
