//! Stateful, feedback-driven energy adversaries.
//!
//! [`EnergyAttack`](crate::EnergyAttack) models *fixed-schedule*
//! adversaries: periodic blackout/spoof windows chosen before the run.
//! The attack-mitigation literature (see PAPERS.md, "Application-aware
//! Energy Attack Mitigation in the Battery-less IoT") shows the
//! damaging adversaries are *adaptive* — they watch the victim and
//! time their energy faults against its observable behavior. This
//! module promotes the wrapper into that family: an [`AdaptiveAttack`]
//! consumes [`VictimEvent`]s from the simulator's feedback channel and
//! commits strike windows in response.
//!
//! Three policies cover the taxonomy:
//!
//! * [`AttackPolicy::BootTriggered`] — strike just after each cold
//!   start, when the buffer is shallow and the workload has not yet
//!   banked any progress: the highest damage per blackout second.
//! * [`AttackPolicy::SpoofBait`] — present a strong fake field, wait
//!   for the victim to *commit* to the surplus (an adaptive buffer
//!   reconfiguring, a radio keying up), then cut power entirely.
//! * [`AttackPolicy::Budgeted`] — a boot-triggered attacker that
//!   rations a finite budget of blackout seconds, modelling a jammer
//!   with its own energy constraint.
//!
//! Determinism and causality are load-bearing: the attacker's committed
//! schedule is an append-only list of windows derived purely from the
//! event stream, every window starts at or after its triggering event,
//! and an event at time `t` never changes the signal at times `< t` —
//! so seeded runs stay bit-reproducible and the adversary can never
//! act on the victim's future (asserted by the property tests below).

use react_units::{Seconds, Watts};

use crate::source::{end_after, PowerSource, Segment, VictimEvent};

/// How an [`AdaptiveAttack`] reacts to the victim's observable events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttackPolicy {
    /// Strike `delay` after every boot, for `strike` seconds, then stay
    /// quiet until `rearm` seconds past the strike's end (the next boot
    /// after that re-triggers).
    BootTriggered {
        /// Lag between the observed boot and the blackout's start.
        delay: Seconds,
        /// Blackout length per strike.
        strike: Seconds,
        /// Quiet period after each strike before re-arming.
        rearm: Seconds,
    },
    /// Offer a spoofed `bait` field whenever the victim is down, and
    /// cut to a `blackout` the moment it commits to the surplus (first
    /// observed reconfiguration or radio-on).
    SpoofBait {
        /// Spoofed available power presented while baiting.
        bait: Watts,
        /// Blackout length once the victim commits.
        blackout: Seconds,
        /// Quiet period after the blackout before baiting again.
        rearm: Seconds,
    },
    /// [`AttackPolicy::BootTriggered`], but the total committed
    /// blackout time is capped by a finite `budget` of seconds.
    Budgeted {
        /// Lag between the observed boot and the blackout's start.
        delay: Seconds,
        /// Blackout length per strike (clipped to the remaining budget).
        strike: Seconds,
        /// Total blackout seconds the attacker may ever spend.
        budget: Seconds,
    },
}

impl AttackPolicy {
    fn validate(&self) {
        let pos = |v: Seconds, what: &str| {
            assert!(
                v.get() > 0.0 && v.get().is_finite(),
                "{what} must be positive and finite"
            );
        };
        let nonneg = |v: Seconds, what: &str| {
            assert!(
                v.get() >= 0.0 && v.get().is_finite(),
                "{what} must be non-negative and finite"
            );
        };
        match *self {
            AttackPolicy::BootTriggered {
                delay,
                strike,
                rearm,
            } => {
                nonneg(delay, "strike delay");
                pos(strike, "strike length");
                nonneg(rearm, "rearm period");
            }
            AttackPolicy::SpoofBait {
                bait,
                blackout,
                rearm,
            } => {
                assert!(
                    bait.get() >= 0.0 && bait.get().is_finite(),
                    "bait power must be non-negative and finite"
                );
                pos(blackout, "blackout length");
                nonneg(rearm, "rearm period");
            }
            AttackPolicy::Budgeted {
                delay,
                strike,
                budget,
            } => {
                nonneg(delay, "strike delay");
                pos(strike, "strike length");
                pos(budget, "blackout budget");
            }
        }
    }

    fn label(&self) -> &'static str {
        match self {
            AttackPolicy::BootTriggered { .. } => "boot-strike",
            AttackPolicy::SpoofBait { .. } => "bait-switch",
            AttackPolicy::Budgeted { .. } => "budgeted",
        }
    }
}

/// A half-open committed window `[start, end)` on the attack timeline.
type Window = (f64, f64);

/// A stateful adversary wrapped around a benign power source, adapting
/// its strike schedule to the victim's observed behavior.
///
/// Precedence matches [`EnergyAttack`](crate::EnergyAttack): blackout
/// beats spoof beats the inner environment.
#[derive(Clone, Debug)]
pub struct AdaptiveAttack<S> {
    inner: S,
    name: String,
    policy: AttackPolicy,
    /// Committed blackout windows, ascending and non-overlapping
    /// (append-only: commits only ever extend the tail).
    blackouts: Vec<Window>,
    /// Closed spoof spans, ascending and non-overlapping.
    spoofs: Vec<Window>,
    /// An open-ended spoof span (bait on the air right now); closed —
    /// into `spoofs` — by the victim's commit event.
    open_spoof: Option<f64>,
    /// Earliest time the policy accepts its next trigger.
    armed_at: f64,
    /// Remaining blackout budget (`+inf` for unbudgeted policies).
    budget_left: f64,
    /// Monotone high-water mark of observed event times.
    last_event: f64,
}

impl<S: PowerSource> AdaptiveAttack<S> {
    /// Wraps `inner` under the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy's durations/powers are out of range.
    pub fn new(inner: S, policy: AttackPolicy) -> Self {
        policy.validate();
        let name = format!("{}({})", policy.label(), inner.name());
        let budget_left = match policy {
            AttackPolicy::Budgeted { budget, .. } => budget.get(),
            _ => f64::INFINITY,
        };
        // The spoof-baiter opens its bait immediately: the victim
        // starts dead, which is exactly the state the bait exploits.
        let open_spoof = match policy {
            AttackPolicy::SpoofBait { .. } => Some(0.0),
            _ => None,
        };
        Self {
            inner,
            name,
            policy,
            blackouts: Vec::new(),
            spoofs: Vec::new(),
            open_spoof,
            armed_at: 0.0,
            budget_left,
            last_event: 0.0,
        }
    }

    /// The attack policy in force.
    pub fn policy(&self) -> AttackPolicy {
        self.policy
    }

    /// Number of blackout strikes committed so far.
    pub fn strikes(&self) -> usize {
        self.blackouts.len()
    }

    /// Total blackout seconds committed so far.
    pub fn committed_blackout_seconds(&self) -> f64 {
        self.blackouts.iter().map(|(s, e)| e - s).sum()
    }

    /// Commits a blackout window starting at `start` (≥ the triggering
    /// event, preserving causality) for `len` seconds, clipped to the
    /// remaining budget.
    fn commit_blackout(&mut self, start: f64, len: f64) -> Option<Window> {
        let len = len.min(self.budget_left);
        if len <= 0.0 {
            return None;
        }
        self.budget_left -= len;
        let window = (start, start + len);
        debug_assert!(
            self.blackouts.last().is_none_or(|&(_, e)| e <= start),
            "blackout commits must be append-only"
        );
        self.blackouts.push(window);
        Some(window)
    }

    /// The regime at `tt` given the committed schedule: blackout and
    /// spoof membership plus the next schedule boundary after `tt`.
    fn probe_schedule(&self, tt: f64) -> (bool, bool, f64) {
        let mut edge = f64::INFINITY;
        let mut dark = false;
        for &(s, e) in &self.blackouts {
            if tt < s {
                edge = edge.min(s);
                break;
            }
            if tt < e {
                dark = true;
                edge = edge.min(e);
                break;
            }
        }
        let mut spoofed = false;
        for &(s, e) in &self.spoofs {
            if tt < s {
                edge = edge.min(s);
                break;
            }
            if tt < e {
                spoofed = true;
                edge = edge.min(e);
                break;
            }
        }
        if let Some(start) = self.open_spoof {
            if tt < start {
                edge = edge.min(start);
            } else {
                // Open-ended: the close will arrive as a future event,
                // which can only land at a fine step the simulator has
                // not integrated past yet.
                spoofed = true;
            }
        }
        (dark, spoofed, edge)
    }
}

impl<S: PowerSource + Clone + 'static> PowerSource for AdaptiveAttack<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn segment(&mut self, t: Seconds) -> Segment {
        let tt = t.get();
        if !tt.is_finite() || tt < 0.0 {
            return Segment::dark(Seconds::ZERO);
        }
        // Walk the inner source regardless of the attack regime so its
        // cursor stays warm, then clip at every committed boundary.
        let inner = self.inner.segment(t);
        let mut power = inner.power.get();
        let mut end = inner.end.get();
        let (dark, spoofed, edge) = self.probe_schedule(tt);
        if spoofed {
            if let AttackPolicy::SpoofBait { bait, .. } = self.policy {
                power = bait.get();
            }
        }
        if dark {
            power = 0.0;
        }
        end = end.min(edge);
        Segment {
            power: Watts::new(power),
            end: Seconds::new(end_after(tt, end)),
        }
    }

    fn duration(&self) -> Option<Seconds> {
        // A spoof-capable adversary injects power of its own, so the
        // signal is never bounded; blackout-only policies just null
        // the field and preserve the inner bound.
        match self.policy {
            AttackPolicy::SpoofBait { .. } => None,
            _ => self.inner.duration(),
        }
    }

    fn observe(&mut self, event: VictimEvent) {
        self.inner.observe(event);
        let at = event.at().get();
        if !at.is_finite() || at < 0.0 {
            return;
        }
        // Clamp monotone: a straggler event cannot reopen the past.
        let at = at.max(self.last_event);
        self.last_event = at;
        match self.policy {
            AttackPolicy::BootTriggered {
                delay,
                strike,
                rearm,
            } => {
                if matches!(event, VictimEvent::Boot { .. }) && at >= self.armed_at {
                    let start = at + delay.get();
                    if let Some((_, end)) = self.commit_blackout(start, strike.get()) {
                        self.armed_at = end + rearm.get();
                    }
                }
            }
            AttackPolicy::Budgeted { delay, strike, .. } => {
                if matches!(event, VictimEvent::Boot { .. }) && at >= self.armed_at {
                    let start = at + delay.get();
                    if let Some((_, end)) = self.commit_blackout(start, strike.get()) {
                        // Ration the budget: stay quiet for one strike
                        // length after each strike, so a boot-looping
                        // victim cannot drain the budget instantly.
                        self.armed_at = end + strike.get();
                    }
                }
            }
            AttackPolicy::SpoofBait {
                blackout, rearm, ..
            } => match event {
                // Victim down and the attacker re-armed: bait again.
                VictimEvent::BrownOut { .. }
                    if self.open_spoof.is_none() && at >= self.armed_at =>
                {
                    self.open_spoof = Some(at);
                }
                VictimEvent::Reconfig { .. } | VictimEvent::RadioOn { .. } => {
                    // The victim committed to the spoofed surplus: close
                    // the bait and yank the power.
                    if let Some(start) = self.open_spoof.take() {
                        if at > start {
                            self.spoofs.push((start, at));
                        }
                        if let Some((_, end)) = self.commit_blackout(at, blackout.get()) {
                            self.armed_at = end + rearm.get();
                        }
                    }
                }
                _ => {}
            },
        }
    }

    fn clone_source(&self) -> Box<dyn PowerSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MarkovRf, Mobility};

    fn steady(power_mw: f64) -> Mobility {
        Mobility::schedule(
            "steady",
            vec![(Seconds::new(0.0), Watts::from_milli(power_mw))],
        )
    }

    fn boot(at: f64) -> VictimEvent {
        VictimEvent::Boot {
            at: Seconds::new(at),
        }
    }

    fn boot_strike(inner: Mobility) -> AdaptiveAttack<Mobility> {
        AdaptiveAttack::new(
            inner,
            AttackPolicy::BootTriggered {
                delay: Seconds::new(0.5),
                strike: Seconds::new(30.0),
                rearm: Seconds::new(10.0),
            },
        )
    }

    #[test]
    fn boot_triggered_strikes_after_each_boot_and_rearms() {
        let mut a = boot_strike(steady(2.0));
        assert_eq!(a.power_at(Seconds::new(10.0)), Watts::from_milli(2.0));
        a.observe(boot(100.0));
        // Before the delayed strike: the real field.
        assert_eq!(a.power_at(Seconds::new(100.2)), Watts::from_milli(2.0));
        // Inside the strike window [100.5, 130.5).
        assert_eq!(a.power_at(Seconds::new(101.0)), Watts::ZERO);
        assert_eq!(a.power_at(Seconds::new(130.4)), Watts::ZERO);
        // After: field restored.
        assert_eq!(a.power_at(Seconds::new(131.0)), Watts::from_milli(2.0));
        // A boot before re-arm (130.5 + 10) is ignored…
        a.observe(boot(135.0));
        assert_eq!(a.strikes(), 1);
        // …and one after it triggers again.
        a.observe(boot(141.0));
        assert_eq!(a.strikes(), 2);
        assert_eq!(a.power_at(Seconds::new(142.0)), Watts::ZERO);
        // Segment edges line up with the committed window.
        let seg = a.segment(Seconds::new(100.2));
        assert!((seg.end.get() - 100.5).abs() < 1e-9);
        let seg = a.segment(Seconds::new(101.0));
        assert!((seg.end.get() - 130.5).abs() < 1e-9);
    }

    #[test]
    fn spoof_baiter_baits_then_cuts_on_commit() {
        let mut a = AdaptiveAttack::new(
            steady(0.5),
            AttackPolicy::SpoofBait {
                bait: Watts::from_milli(25.0),
                blackout: Seconds::new(60.0),
                rearm: Seconds::new(5.0),
            },
        );
        // The bait is on the air from t = 0 (victim starts dead).
        assert_eq!(a.power_at(Seconds::new(3.0)), Watts::from_milli(25.0));
        // The victim boots and commits (reconfigures for the surplus).
        a.observe(boot(8.0));
        a.observe(VictimEvent::Reconfig {
            at: Seconds::new(12.0),
        });
        // History is preserved: the bait still covers [0, 12).
        assert_eq!(a.power_at(Seconds::new(3.0)), Watts::from_milli(25.0));
        assert_eq!(a.power_at(Seconds::new(11.9)), Watts::from_milli(25.0));
        // The blackout covers [12, 72); then the real field returns.
        assert_eq!(a.power_at(Seconds::new(12.5)), Watts::ZERO);
        assert_eq!(a.power_at(Seconds::new(71.9)), Watts::ZERO);
        assert_eq!(a.power_at(Seconds::new(73.0)), Watts::from_milli(0.5));
        // The victim browns out again after the re-arm: bait returns.
        a.observe(VictimEvent::BrownOut {
            at: Seconds::new(80.0),
        });
        assert_eq!(a.power_at(Seconds::new(81.0)), Watts::from_milli(25.0));
        assert_eq!(a.strikes(), 1);
    }

    #[test]
    fn budgeted_attacker_never_exceeds_its_budget() {
        let mut a = AdaptiveAttack::new(
            steady(2.0),
            AttackPolicy::Budgeted {
                delay: Seconds::new(0.0),
                strike: Seconds::new(40.0),
                budget: Seconds::new(100.0),
            },
        );
        // Boots arriving forever: 40 + 40 + 20 (clipped) and then dry.
        let mut t = 0.0;
        for _ in 0..50 {
            a.observe(boot(t));
            t += 200.0;
        }
        assert_eq!(a.strikes(), 3);
        assert!((a.committed_blackout_seconds() - 100.0).abs() < 1e-9);
        // The last strike is the clipped 20 s remainder.
        let (s, e) = a.blackouts[2];
        assert!((e - s - 20.0).abs() < 1e-9);
        // Exhausted: later boots commit nothing.
        a.observe(boot(1e6));
        assert_eq!(a.strikes(), 3);
    }

    /// The causality contract: an event at time `T` never changes the
    /// signal at any time `< T` the attacker was already queried about.
    #[test]
    fn feedback_never_rewrites_the_past() {
        let policies = [
            AttackPolicy::BootTriggered {
                delay: Seconds::new(0.5),
                strike: Seconds::new(20.0),
                rearm: Seconds::new(5.0),
            },
            AttackPolicy::SpoofBait {
                bait: Watts::from_milli(25.0),
                blackout: Seconds::new(30.0),
                rearm: Seconds::new(5.0),
            },
            AttackPolicy::Budgeted {
                delay: Seconds::new(1.0),
                strike: Seconds::new(15.0),
                budget: Seconds::new(45.0),
            },
        ];
        let events = |at: f64| {
            [
                boot(at),
                VictimEvent::Reconfig {
                    at: Seconds::new(at + 3.0),
                },
                VictimEvent::BrownOut {
                    at: Seconds::new(at + 7.0),
                },
                VictimEvent::RadioOn {
                    at: Seconds::new(at + 9.0),
                },
            ]
        };
        for policy in policies {
            let mut a = AdaptiveAttack::new(steady(2.0), policy);
            // Interleave event batches with probes, snapshotting the
            // past each round before injecting strictly-future events.
            let mut past: Vec<(f64, u64)> = Vec::new();
            for round in 0..12 {
                let horizon = round as f64 * 50.0;
                for k in 0..25 {
                    let t = horizon * (k as f64 / 25.0);
                    let p = a.power_at(Seconds::new(t)).get().to_bits();
                    past.push((t, p));
                }
                for (t, bits) in &past {
                    assert_eq!(
                        a.power_at(Seconds::new(*t)).get().to_bits(),
                        *bits,
                        "{policy:?}: past rewritten at t={t} after round {round}"
                    );
                }
                for e in events(horizon) {
                    a.observe(e);
                }
            }
        }
    }

    /// Reruns with the same event stream are bit-identical, and the
    /// seed salt reaches the wrapped environment.
    #[test]
    fn reruns_are_bit_identical_and_salt_reaches_the_inner_field() {
        let field = |seed: u64| {
            MarkovRf::new(
                "rf",
                Watts::from_milli(5.0),
                Watts::from_micro(20.0),
                Seconds::new(5.0),
                Seconds::new(30.0),
                seed,
            )
        };
        let policy = AttackPolicy::BootTriggered {
            delay: Seconds::new(0.5),
            strike: Seconds::new(20.0),
            rearm: Seconds::new(5.0),
        };
        let run = |seed: u64| {
            let mut a = AdaptiveAttack::new(field(seed), policy);
            let mut out = Vec::new();
            for k in 0..400 {
                let t = k as f64 * 1.3;
                if k % 60 == 30 {
                    a.observe(boot(t));
                }
                out.push(a.power_at(Seconds::new(t)).get().to_bits());
            }
            out
        };
        assert_eq!(run(9), run(9), "same seed must replay bit-identically");
        assert_ne!(run(9), run(10), "a different seed must change the field");
    }

    #[test]
    fn out_of_range_probes_and_events_are_inert() {
        let mut a = boot_strike(steady(1.0));
        assert_eq!(a.segment(Seconds::new(-1.0)), Segment::dark(Seconds::ZERO));
        assert_eq!(
            a.segment(Seconds::new(f64::NAN)),
            Segment::dark(Seconds::ZERO)
        );
        a.observe(boot(f64::NAN));
        a.observe(boot(-5.0));
        assert_eq!(a.strikes(), 0);
        // Blackout-only policies preserve the inner bound; the baiter
        // is unbounded by construction.
        assert_eq!(a.duration(), None); // Mobility schedules are unbounded
        let bait = AdaptiveAttack::new(
            steady(1.0),
            AttackPolicy::SpoofBait {
                bait: Watts::from_milli(10.0),
                blackout: Seconds::new(10.0),
                rearm: Seconds::new(1.0),
            },
        );
        assert_eq!(bait.duration(), None);
        assert!(bait.name().starts_with("bait-switch("));
    }

    #[test]
    fn segment_walk_always_advances_through_committed_windows() {
        let mut a = boot_strike(steady(2.0));
        for k in 0..8 {
            a.observe(boot(k as f64 * 97.3));
        }
        let mut t = 0.0;
        for _ in 0..256 {
            let seg = a.segment(Seconds::new(t));
            assert!(seg.end.get() > t, "segment stalled at {t}");
            if seg.end.get() == f64::INFINITY {
                break;
            }
            t = seg.end.get();
        }
    }
}
