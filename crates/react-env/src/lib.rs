//! Streaming stochastic environment engine for the REACT reproduction.
//!
//! The paper evaluates on five recorded traces (Table 3), but its core
//! claims — responsiveness under dynamic harvesting, persistence across
//! long outages — are claims about *environment classes*. This crate
//! models those classes directly as seeded, unbounded, streaming
//! [`PowerSource`]s instead of bounded sample arrays:
//!
//! * [`Diurnal`] — day/night solar envelope × Markov cloud process.
//! * [`MarkovRf`] — Gilbert–Elliott on/off ambient-RF field.
//! * [`Mobility`] — scheduled field-strength transitions (commutes).
//! * [`EnergyAttack`] — fixed-schedule blackout/spoof adversary.
//! * [`AdaptiveAttack`] — stateful adversaries ([`AttackPolicy`]) that
//!   watch the victim through [`VictimEvent`] feedback and adapt.
//!
//! Composable via [`Mix`] / [`Scale`] / [`Splice`] / [`Cap`], with
//! [`TraceSource`] wrapping any recorded [`PowerTrace`]
//! (react-traces) so every pre-existing code path is one instance of
//! the same abstraction, and [`materialize`] going the other way for
//! baselines and export.
//!
//! The key engine contract is [`PowerSource::segment`]: sources are
//! piecewise-constant and report the end of the span covering any
//! query time, so the adaptive simulation kernel keeps doing
//! closed-form idle advances over *unbounded* horizons — a week-long
//! blackout is one stride, never a million samples.
//!
//! [`PowerTrace`]: react_traces::PowerTrace
//!
//! # Examples
//!
//! ```
//! use react_env::{Diurnal, EnergyAttack, PowerSource};
//! use react_units::{Seconds, Watts};
//!
//! // A solar deployment under periodic hour-long blackout attacks.
//! let mut env = EnergyAttack::new(Diurnal::new("sun", Watts::from_milli(20.0), 42))
//!     .with_blackout(Seconds::new(4.0 * 3600.0), Seconds::ZERO, Seconds::new(3600.0));
//! let seg = env.segment(Seconds::new(2.0 * 3600.0));
//! assert!(seg.power.get() >= 0.0);
//! assert!(seg.end > Seconds::new(2.0 * 3600.0));
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod adaptive;
mod attack;
mod combine;
mod diurnal;
mod markov;
mod mobility;
mod source;

pub use adaptive::{AdaptiveAttack, AttackPolicy};
pub use attack::EnergyAttack;
pub use combine::{Cap, Mix, Scale, Splice};
pub use diurnal::Diurnal;
pub use markov::MarkovRf;
pub use mobility::Mobility;
pub use source::{
    dark_stats, materialize, node_salt, DarkStats, PowerSource, Segment, TraceSource, VictimEvent,
};
