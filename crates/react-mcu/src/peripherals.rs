//! Peripheral power models.
//!
//! The paper emulates each benchmark's peripherals by toggling a resistor
//! sized to the relevant datasheet (§4.2). We keep the same abstraction:
//! a peripheral is a named current draw that the workload switches on and
//! off.

use react_units::{Amps, Ohms, Volts};

/// A peripheral as a switchable current draw at the system rail.
#[derive(Clone, Debug, PartialEq)]
pub struct Peripheral {
    name: String,
    current: Amps,
    enabled: bool,
}

impl Peripheral {
    /// Creates a disabled peripheral drawing `current` when enabled.
    pub fn new(name: impl Into<String>, current: Amps) -> Self {
        Self {
            name: name.into(),
            current,
            enabled: false,
        }
    }

    /// Knowles SPU0414HR5H analogue microphone \[11\]: ≈155 µA.
    pub fn microphone() -> Self {
        Self::new("microphone", Amps::from_micro(155.0))
    }

    /// Microsemi ZL70251-class ultra-low-power sub-GHz radio in
    /// transmit \[31\]: ≈5 mA.
    pub fn radio_tx() -> Self {
        Self::new("radio-tx", Amps::from_milli(5.0))
    }

    /// The same radio in receive: ≈4 mA.
    pub fn radio_rx() -> Self {
        Self::new("radio-rx", Amps::from_milli(4.0))
    }

    /// Fraunhofer RFicient-class always-on wake-up receiver \[18\]: ≈3 µA.
    pub fn wakeup_receiver() -> Self {
        Self::new("wakeup-rx", Amps::from_micro(3.0))
    }

    /// The paper's emulation approach: a resistor toggled by a GPIO,
    /// sized to draw the peripheral's current at the nominal rail.
    pub fn emulation_resistor(name: impl Into<String>, r: Ohms, rail: Volts) -> Self {
        Self::new(name, rail / r)
    }

    /// Peripheral name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` if currently switched on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Switches the peripheral on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Current drawn right now (zero when disabled).
    pub fn current(&self) -> Amps {
        if self.enabled {
            self.current
        } else {
            Amps::ZERO
        }
    }

    /// Current drawn when enabled, regardless of present state.
    pub fn rated_current(&self) -> Amps {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_draws_nothing() {
        let p = Peripheral::microphone();
        assert!(!p.is_enabled());
        assert_eq!(p.current(), Amps::ZERO);
        assert!((p.rated_current().to_micro() - 155.0).abs() < 1e-9);
    }

    #[test]
    fn toggling() {
        let mut p = Peripheral::radio_tx();
        p.set_enabled(true);
        assert!((p.current().to_milli() - 5.0).abs() < 1e-9);
        p.set_enabled(false);
        assert_eq!(p.current(), Amps::ZERO);
    }

    #[test]
    fn datasheet_values() {
        assert!((Peripheral::radio_rx().rated_current().to_milli() - 4.0).abs() < 1e-9);
        assert!((Peripheral::wakeup_receiver().rated_current().to_micro() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn emulation_resistor_matches_ohms_law() {
        // 2.2 kΩ at 3.3 V = 1.5 mA, the paper's §2.1 active draw.
        let p = Peripheral::emulation_resistor("fake-radio", Ohms::new(2200.0), Volts::new(3.3));
        assert!((p.rated_current().to_milli() - 1.5).abs() < 1e-9);
        assert_eq!(p.name(), "fake-radio");
    }
}
