//! MSP430-class microcontroller and peripheral models.
//!
//! The paper's testbed is an MSP430FR5994 \[22\] behind a comparator power
//! gate (enable at 3.3 V, disconnect at 1.8 V, §4), with benchmark
//! peripherals emulated by toggling a resistor sized to the relevant
//! datasheet (§4.2). This crate models exactly that:
//!
//! * [`Mcu`] / [`McuSpec`] / [`PowerMode`] — active/LPM3/deep-sleep
//!   current draws and boot cost.
//! * [`PowerGate`] — the enable/brown-out comparator circuit.
//! * [`ThresholdComparator`] / [`BufferSignal`] — REACT's two-comparator
//!   voltage instrumentation (§3.2.1).
//! * [`Peripheral`] — microphone \[11\], sub-GHz radio \[31\], wake-up
//!   receiver \[18\], and the paper's emulation resistor.
//! * [`PeriodicTimer`] and [`RemanenceTimekeeper`] — deadline scheduling,
//!   including across power failures (cited work \[8\]).
//! * [`Fram`] — nonvolatile state that survives power cycles.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod checkpoint;
mod fram;
mod gate;
mod mcu;
mod peripherals;
mod timer;

pub use checkpoint::{CheckpointCosts, Checkpointer};
pub use fram::Fram;
pub use gate::{BufferSignal, PowerGate, ThresholdComparator};
pub use mcu::{Mcu, McuSpec, PowerMode};
pub use peripherals::Peripheral;
pub use timer::{PeriodicTimer, RemanenceTimekeeper};
