//! Timers: periodic deadlines and remanence-based timekeeping.

use react_units::Seconds;

/// A free-running periodic timer that generates deadlines (the SC
/// benchmark's five-second sensing schedule, §4.2). Deadlines are
/// anchored to wall-clock time — they keep arriving even while the system
/// is powered off, which is exactly what makes reactivity matter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicTimer {
    period: Seconds,
    next_deadline: Seconds,
    fired: u64,
}

impl PeriodicTimer {
    /// Creates a timer whose first deadline is one period from t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(period: Seconds) -> Self {
        assert!(period.get() > 0.0, "timer period must be positive");
        Self {
            period,
            next_deadline: period,
            fired: 0,
        }
    }

    /// The configured period.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Number of deadlines that have fired.
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// The next pending deadline.
    pub fn next_deadline(&self) -> Seconds {
        self.next_deadline
    }

    /// Advances to wall-clock time `now`; returns how many deadlines
    /// fired during the step (0 or more — a long off period can skip
    /// several).
    pub fn poll(&mut self, now: Seconds) -> u64 {
        let mut count = 0;
        while now >= self.next_deadline {
            self.next_deadline += self.period;
            self.fired += 1;
            count += 1;
        }
        count
    }
}

/// A remanence-based timekeeper (cited work \[8\]): estimates elapsed
/// off-time after a power failure from the decay of a known capacitor,
/// with a bounded measurement error. Workloads use it to decide whether a
/// deadline passed while the system was dark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemanenceTimekeeper {
    /// Maximum off-interval the decay curve can resolve.
    range: Seconds,
    /// Relative measurement error (e.g. 0.05 = ±5 %).
    relative_error: f64,
    /// Wall-clock time when power was lost, if currently dark.
    powered_down_at: Option<Seconds>,
}

impl RemanenceTimekeeper {
    /// Creates a timekeeper with the given resolvable range and error.
    ///
    /// # Panics
    ///
    /// Panics if `relative_error` is negative.
    pub fn new(range: Seconds, relative_error: f64) -> Self {
        assert!(relative_error >= 0.0, "negative error");
        Self {
            range,
            relative_error,
            powered_down_at: None,
        }
    }

    /// The cited design resolves ~minutes with a few percent error.
    pub fn typical() -> Self {
        Self::new(Seconds::from_minutes(10.0), 0.03)
    }

    /// Records a power-down at wall-clock `now`.
    pub fn power_down(&mut self, now: Seconds) {
        self.powered_down_at = Some(now);
    }

    /// On power-up at wall-clock `now`, estimates the off interval.
    /// Returns `None` if no power-down was recorded or the interval
    /// exceeded the resolvable range (the capacitor fully decayed).
    pub fn power_up(&mut self, now: Seconds) -> Option<Seconds> {
        let down_at = self.powered_down_at.take()?;
        let actual = now - down_at;
        if actual > self.range {
            return None;
        }
        // Deterministic worst-case bias keeps the simulation repeatable:
        // the estimate reads slightly long.
        Some(actual * (1.0 + self.relative_error))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_fires_on_schedule() {
        let mut t = PeriodicTimer::new(Seconds::new(5.0));
        assert_eq!(t.poll(Seconds::new(4.9)), 0);
        assert_eq!(t.poll(Seconds::new(5.0)), 1);
        assert_eq!(t.poll(Seconds::new(9.0)), 0);
        assert_eq!(t.poll(Seconds::new(10.0)), 1);
        assert_eq!(t.fired_count(), 2);
        assert!((t.next_deadline().get() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_catches_up_after_gap() {
        let mut t = PeriodicTimer::new(Seconds::new(5.0));
        // System dark from 0 to 23 s: deadlines at 5, 10, 15, 20 fired.
        assert_eq!(t.poll(Seconds::new(23.0)), 4);
        assert_eq!(t.fired_count(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        PeriodicTimer::new(Seconds::ZERO);
    }

    #[test]
    fn remanence_estimates_off_time() {
        let mut k = RemanenceTimekeeper::new(Seconds::new(600.0), 0.03);
        k.power_down(Seconds::new(100.0));
        let est = k.power_up(Seconds::new(150.0)).unwrap();
        assert!((est.get() - 50.0 * 1.03).abs() < 1e-9);
    }

    #[test]
    fn remanence_saturates_beyond_range() {
        let mut k = RemanenceTimekeeper::new(Seconds::new(60.0), 0.0);
        k.power_down(Seconds::new(0.0));
        assert_eq!(k.power_up(Seconds::new(120.0)), None);
    }

    #[test]
    fn remanence_without_power_down_is_none() {
        let mut k = RemanenceTimekeeper::typical();
        assert_eq!(k.power_up(Seconds::new(10.0)), None);
    }

    #[test]
    fn remanence_is_single_shot() {
        let mut k = RemanenceTimekeeper::typical();
        k.power_down(Seconds::new(0.0));
        assert!(k.power_up(Seconds::new(1.0)).is_some());
        assert_eq!(k.power_up(Seconds::new(2.0)), None);
    }
}
