//! The microcontroller power model.

use react_units::{Amps, Hertz, Seconds};

/// MCU operating mode, mirroring MSP430 low-power modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PowerMode {
    /// CPU running (benchmark code executing).
    Active,
    /// LPM3: CPU halted, timer running — the "responsive sleep" the paper
    /// uses while waiting for deadlines or REACT charge levels.
    Sleep,
    /// LPM4.5-style deep sleep: only the wake-up circuitry is powered.
    #[default]
    DeepSleep,
}

/// Static electrical parameters of the microcontroller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McuSpec {
    /// Supply current while [`PowerMode::Active`].
    pub active_current: Amps,
    /// Supply current in [`PowerMode::Sleep`] (timer alive).
    pub sleep_current: Amps,
    /// Supply current in [`PowerMode::DeepSleep`].
    pub deep_sleep_current: Amps,
    /// CPU clock while active.
    pub clock: Hertz,
    /// Time spent booting (active current) after the gate enables.
    pub boot_time: Seconds,
}

impl McuSpec {
    /// MSP430FR5994-class numbers at 3.3 V: 1.5 mA active (the paper's
    /// §2.1 representative figure), 2 µA LPM3, 0.5 µA deep sleep,
    /// 8 MHz clock, 5 ms boot.
    pub fn msp430fr5994() -> Self {
        Self {
            active_current: Amps::from_milli(1.5),
            sleep_current: Amps::from_micro(2.0),
            deep_sleep_current: Amps::from_micro(0.5),
            clock: Hertz::new(8e6),
            boot_time: Seconds::from_milli(5.0),
        }
    }

    /// Supply current in `mode`.
    pub fn current(&self, mode: PowerMode) -> Amps {
        match mode {
            PowerMode::Active => self.active_current,
            PowerMode::Sleep => self.sleep_current,
            PowerMode::DeepSleep => self.deep_sleep_current,
        }
    }

    /// Wall-clock time to execute `cycles` CPU cycles.
    pub fn cycles_to_time(&self, cycles: u64) -> Seconds {
        Seconds::new(cycles as f64 / self.clock.get())
    }
}

/// A live MCU: mode plus boot-sequencing state.
///
/// The MCU draws no current at all while the power gate holds it off;
/// when the gate enables, it boots (active current for
/// [`McuSpec::boot_time`]) and then enters the mode the workload
/// requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mcu {
    spec: McuSpec,
    mode: PowerMode,
    powered: bool,
    boot_remaining: Seconds,
    /// Count of completed power-on boots.
    boots: u64,
}

impl Mcu {
    /// Creates an unpowered MCU.
    pub fn new(spec: McuSpec) -> Self {
        Self {
            spec,
            mode: PowerMode::DeepSleep,
            powered: false,
            boot_remaining: Seconds::ZERO,
            boots: 0,
        }
    }

    /// The static parameters.
    pub fn spec(&self) -> &McuSpec {
        &self.spec
    }

    /// Current operating mode (meaningful only while powered).
    pub fn mode(&self) -> PowerMode {
        self.mode
    }

    /// `true` if the power gate has the MCU enabled.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// `true` if the MCU is powered and past its boot sequence.
    pub fn is_running(&self) -> bool {
        self.powered && self.boot_remaining.get() <= 0.0
    }

    /// Number of completed boots (power cycles) so far.
    pub fn boot_count(&self) -> u64 {
        self.boots
    }

    /// Power gate turned on: begin the boot sequence.
    pub fn power_on(&mut self) {
        if !self.powered {
            self.powered = true;
            self.boot_remaining = self.spec.boot_time;
            self.mode = PowerMode::Active;
            self.boots += 1;
        }
    }

    /// Power gate turned off: state is lost (FRAM contents live in
    /// [`Fram`](crate::Fram) cells, which persist).
    pub fn power_off(&mut self) {
        self.powered = false;
        self.boot_remaining = Seconds::ZERO;
        self.mode = PowerMode::DeepSleep;
    }

    /// Requests an operating mode (no-op while off or booting).
    pub fn set_mode(&mut self, mode: PowerMode) {
        if self.is_running() {
            self.mode = mode;
        }
    }

    /// Supply current the MCU draws in its present state, without
    /// advancing time: zero while unpowered, active current while
    /// booting, otherwise the present mode's current. This is what a
    /// coarse sleep stride integrates — [`step`](Self::step) returns
    /// the same value but also advances the boot sequence, so the
    /// adaptive kernel's closed-form paths must read it from here.
    pub fn running_current(&self) -> Amps {
        if !self.powered {
            return Amps::ZERO;
        }
        if self.boot_remaining.get() > 0.0 {
            return self.spec.active_current;
        }
        self.spec.current(self.mode)
    }

    /// Advances time; returns the supply current drawn over the step.
    pub fn step(&mut self, dt: Seconds) -> Amps {
        if !self.powered {
            return Amps::ZERO;
        }
        if self.boot_remaining.get() > 0.0 {
            self.boot_remaining = (self.boot_remaining - dt).max(Seconds::ZERO);
            return self.spec.active_current;
        }
        self.spec.current(self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_currents() {
        let s = McuSpec::msp430fr5994();
        assert!((s.current(PowerMode::Active).to_milli() - 1.5).abs() < 1e-12);
        assert!((s.current(PowerMode::Sleep).to_micro() - 2.0).abs() < 1e-12);
        assert!((s.current(PowerMode::DeepSleep).to_micro() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_time_at_8mhz() {
        let s = McuSpec::msp430fr5994();
        assert!((s.cycles_to_time(8_000_000).get() - 1.0).abs() < 1e-12);
        assert!((s.cycles_to_time(80_000).to_milli() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unpowered_draws_nothing() {
        let mut m = Mcu::new(McuSpec::msp430fr5994());
        assert!(!m.is_powered());
        assert_eq!(m.step(Seconds::from_milli(1.0)), Amps::ZERO);
    }

    #[test]
    fn boot_sequence_draws_active_current() {
        let mut m = Mcu::new(McuSpec::msp430fr5994());
        m.power_on();
        assert!(m.is_powered());
        assert!(!m.is_running());
        // During the 5 ms boot, active current even if sleep requested.
        m.set_mode(PowerMode::Sleep); // ignored while booting
        let i = m.step(Seconds::from_milli(1.0));
        assert!((i.to_milli() - 1.5).abs() < 1e-12);
        for _ in 0..5 {
            m.step(Seconds::from_milli(1.0));
        }
        assert!(m.is_running());
        assert_eq!(m.boot_count(), 1);
    }

    #[test]
    fn mode_changes_once_running() {
        let mut m = Mcu::new(McuSpec::msp430fr5994());
        m.power_on();
        for _ in 0..6 {
            m.step(Seconds::from_milli(1.0));
        }
        m.set_mode(PowerMode::Sleep);
        let i = m.step(Seconds::from_milli(1.0));
        assert!((i.to_micro() - 2.0).abs() < 1e-12);
        m.set_mode(PowerMode::DeepSleep);
        let i = m.step(Seconds::from_milli(1.0));
        assert!((i.to_micro() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn running_current_reads_without_stepping() {
        let mut m = Mcu::new(McuSpec::msp430fr5994());
        assert_eq!(m.running_current(), Amps::ZERO);
        m.power_on();
        // Booting: active current, and reading does not advance boot.
        assert!((m.running_current().to_milli() - 1.5).abs() < 1e-12);
        assert!(!m.is_running());
        for _ in 0..6 {
            m.step(Seconds::from_milli(1.0));
        }
        m.set_mode(PowerMode::Sleep);
        // The sleep stride integrates exactly this 2 µA LPM3 draw.
        assert!((m.running_current().to_micro() - 2.0).abs() < 1e-12);
        assert_eq!(m.running_current(), m.step(Seconds::from_milli(1.0)));
    }

    #[test]
    fn power_off_resets_mode() {
        let mut m = Mcu::new(McuSpec::msp430fr5994());
        m.power_on();
        for _ in 0..6 {
            m.step(Seconds::from_milli(1.0));
        }
        m.set_mode(PowerMode::Active);
        m.power_off();
        assert!(!m.is_powered());
        assert_eq!(m.mode(), PowerMode::DeepSleep);
        // Re-boot increments the counter.
        m.power_on();
        assert_eq!(m.boot_count(), 2);
    }

    #[test]
    fn double_power_on_is_idempotent() {
        let mut m = Mcu::new(McuSpec::msp430fr5994());
        m.power_on();
        m.power_on();
        assert_eq!(m.boot_count(), 1);
    }
}
