//! Comparator circuits: the power gate and REACT's voltage
//! instrumentation.

use react_units::Volts;

/// The enable/brown-out power gate (§4): connects the MCU once the
/// buffer reaches the enable voltage and disconnects it at the brown-out
//  voltage, with hysteresis in between.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerGate {
    enable_at: Volts,
    brownout_at: Volts,
    closed: bool,
}

impl PowerGate {
    /// Creates an open gate.
    ///
    /// # Panics
    ///
    /// Panics if `enable_at <= brownout_at` (no hysteresis band).
    pub fn new(enable_at: Volts, brownout_at: Volts) -> Self {
        assert!(
            enable_at > brownout_at,
            "enable voltage must exceed brown-out voltage"
        );
        Self {
            enable_at,
            brownout_at,
            closed: false,
        }
    }

    /// The paper's testbed gate: enable at 3.3 V, disconnect at 1.8 V.
    pub fn paper_testbed() -> Self {
        Self::new(Volts::new(3.3), Volts::new(1.8))
    }

    /// Enable threshold.
    pub fn enable_voltage(&self) -> Volts {
        self.enable_at
    }

    /// Brown-out threshold.
    pub fn brownout_voltage(&self) -> Volts {
        self.brownout_at
    }

    /// `true` while the load is connected.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Moves the enable threshold — the defensive "raised gate"
    /// response to a suspected energy attack (boot only once more
    /// charge is banked), and its restoration once the alarm clears.
    /// Only the *enable* side moves; the brown-out threshold is fixed
    /// by the regulator's dropout and never a software knob.
    ///
    /// # Panics
    ///
    /// Panics if `enable_at <= brownout_at` (no hysteresis band).
    pub fn set_enable_voltage(&mut self, enable_at: Volts) {
        assert!(
            enable_at > self.brownout_at,
            "enable voltage must exceed brown-out voltage"
        );
        self.enable_at = enable_at;
    }

    /// Forces the gate switch to a fixed state regardless of the
    /// comparator thresholds — the stuck-open/stuck-closed hardware
    /// fault model. Returns `true` if the gate state changed.
    pub fn force(&mut self, closed: bool) -> bool {
        let changed = closed != self.closed;
        self.closed = closed;
        changed
    }

    /// Updates the gate with the present buffer voltage; returns `true`
    /// if the gate state changed.
    pub fn update(&mut self, v: Volts) -> bool {
        let next = if self.closed {
            v > self.brownout_at
        } else {
            v >= self.enable_at
        };
        let changed = next != self.closed;
        self.closed = next;
        changed
    }
}

/// What REACT's two-comparator instrumentation reports (§3.2.1): the
/// buffer is near capacity, near empty, or in the healthy band.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferSignal {
    /// Voltage at or above the upper threshold — add capacitance.
    NearCapacity,
    /// Between the thresholds.
    Ok,
    /// Voltage at or below the lower threshold — reclaim charge.
    NearEmpty,
}

/// Two low-power comparators watching the last-level buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdComparator {
    v_high: Volts,
    v_low: Volts,
}

impl ThresholdComparator {
    /// Creates the comparator pair.
    ///
    /// # Panics
    ///
    /// Panics if `v_high <= v_low`.
    pub fn new(v_high: Volts, v_low: Volts) -> Self {
        assert!(v_high > v_low, "upper threshold must exceed lower");
        Self { v_high, v_low }
    }

    /// Upper (near-capacity) threshold.
    pub fn v_high(&self) -> Volts {
        self.v_high
    }

    /// Lower (near-empty) threshold.
    pub fn v_low(&self) -> Volts {
        self.v_low
    }

    /// Classifies a buffer voltage.
    pub fn classify(&self, v: Volts) -> BufferSignal {
        if v >= self.v_high {
            BufferSignal::NearCapacity
        } else if v <= self.v_low {
            BufferSignal::NearEmpty
        } else {
            BufferSignal::Ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_hysteresis() {
        let mut g = PowerGate::paper_testbed();
        assert!(!g.is_closed());
        assert!(!g.update(Volts::new(3.0))); // below enable: stays open
        assert!(g.update(Volts::new(3.3))); // enables
        assert!(g.is_closed());
        assert!(!g.update(Volts::new(2.0))); // above brown-out: stays closed
        assert!(g.update(Volts::new(1.8))); // browns out (v must exceed 1.8)
        assert!(!g.is_closed());
        assert!(!g.update(Volts::new(2.5))); // needs full 3.3 V again
    }

    #[test]
    fn raised_enable_gate_defers_the_boot() {
        let mut g = PowerGate::paper_testbed();
        g.set_enable_voltage(Volts::new(3.5));
        assert!(!g.update(Volts::new(3.3))); // old threshold no longer boots
        assert!(g.update(Volts::new(3.5)));
        assert!(g.is_closed());
        g.set_enable_voltage(Volts::new(3.3)); // restore: closed state kept
        assert!(g.is_closed());
        assert_eq!(g.enable_voltage(), Volts::new(3.3));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn raising_below_brownout_panics() {
        let mut g = PowerGate::paper_testbed();
        g.set_enable_voltage(Volts::new(1.5));
    }

    #[test]
    fn gate_reports_thresholds() {
        let g = PowerGate::paper_testbed();
        assert_eq!(g.enable_voltage(), Volts::new(3.3));
        assert_eq!(g.brownout_voltage(), Volts::new(1.8));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn inverted_gate_panics() {
        PowerGate::new(Volts::new(1.8), Volts::new(3.3));
    }

    #[test]
    fn comparator_classifies_three_bands() {
        let c = ThresholdComparator::new(Volts::new(3.5), Volts::new(1.9));
        assert_eq!(c.classify(Volts::new(3.6)), BufferSignal::NearCapacity);
        assert_eq!(c.classify(Volts::new(3.5)), BufferSignal::NearCapacity);
        assert_eq!(c.classify(Volts::new(2.5)), BufferSignal::Ok);
        assert_eq!(c.classify(Volts::new(1.9)), BufferSignal::NearEmpty);
        assert_eq!(c.classify(Volts::new(0.0)), BufferSignal::NearEmpty);
        assert_eq!(c.v_high(), Volts::new(3.5));
        assert_eq!(c.v_low(), Volts::new(1.9));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn inverted_comparator_panics() {
        ThresholdComparator::new(Volts::new(1.0), Volts::new(2.0));
    }
}
