//! Checkpointing for intermittent execution.
//!
//! Batteryless systems lose volatile state at every brown-out; the
//! intermittent-computing literature the paper builds on (Mementos \[40\],
//! Alpaca \[28\], Clank \[17\], …) checkpoints program state into
//! nonvolatile memory so work resumes instead of restarting. This module
//! provides the substrate: a double-buffered, torn-write-safe checkpoint
//! cell with an energy/time cost model, so workloads (and downstream
//! users) can study checkpoint policies on top of the REACT simulator.
//!
//! The commit protocol is the standard two-slot scheme: write the
//! inactive slot, then atomically flip a sequence-numbered selector.
//! A power failure mid-write leaves the previous checkpoint intact.

use react_units::{Joules, Seconds};

/// Cost model for one checkpoint commit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointCosts {
    /// Wall-clock time to persist one byte (FRAM write bandwidth).
    pub seconds_per_byte: f64,
    /// Energy to persist one byte.
    pub energy_per_byte: Joules,
    /// Fixed per-commit overhead (selector flip, bookkeeping).
    pub commit_overhead: Seconds,
}

impl CheckpointCosts {
    /// MSP430FR5994-class FRAM: ~8 MB/s effective, ~1 nJ/byte.
    pub fn msp430_fram() -> Self {
        Self {
            seconds_per_byte: 1.25e-7,
            energy_per_byte: Joules::new(1e-9),
            commit_overhead: Seconds::from_micro(50.0),
        }
    }

    /// Cost of committing `bytes` of state.
    pub fn commit_cost(&self, bytes: usize) -> (Seconds, Joules) {
        (
            Seconds::new(self.seconds_per_byte * bytes as f64) + self.commit_overhead,
            self.energy_per_byte * bytes as f64,
        )
    }
}

/// One checkpoint slot: a snapshot plus its sequence number.
#[derive(Clone, Debug, PartialEq)]
struct Slot<T> {
    sequence: u64,
    /// `None` until the slot has ever been committed.
    snapshot: Option<T>,
}

/// A double-buffered, torn-write-safe checkpoint cell.
///
/// `begin_commit` starts writing the inactive slot; the write completes
/// only after the modelled commit latency has elapsed (`advance`). A
/// [`power_failure`](Checkpointer::power_failure) before completion
/// discards the partial write; [`restore`](Checkpointer::restore) always
/// returns the most recent *completed* checkpoint.
#[derive(Clone, Debug)]
pub struct Checkpointer<T: Clone> {
    slots: [Slot<T>; 2],
    costs: CheckpointCosts,
    /// In-flight commit: (slot index, pending snapshot, time left).
    in_flight: Option<(usize, T, Seconds)>,
    next_sequence: u64,
    commits: u64,
    torn_writes: u64,
}

impl<T: Clone> Checkpointer<T> {
    /// Creates an empty checkpointer.
    pub fn new(costs: CheckpointCosts) -> Self {
        Self {
            slots: [
                Slot {
                    sequence: 0,
                    snapshot: None,
                },
                Slot {
                    sequence: 0,
                    snapshot: None,
                },
            ],
            costs,
            in_flight: None,
            next_sequence: 1,
            commits: 0,
            torn_writes: 0,
        }
    }

    /// Completed commits.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Commits lost to power failures.
    pub fn torn_write_count(&self) -> u64 {
        self.torn_writes
    }

    /// `true` while a commit is being persisted.
    pub fn is_committing(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Starts committing `state` (`bytes` is its serialized size).
    /// Returns the energy cost the caller must draw from the buffer; the
    /// time cost is paid by calling [`advance`](Checkpointer::advance).
    ///
    /// # Panics
    ///
    /// Panics if a commit is already in flight.
    pub fn begin_commit(&mut self, state: T, bytes: usize) -> Joules {
        assert!(self.in_flight.is_none(), "commit already in flight");
        let (time, energy) = self.costs.commit_cost(bytes);
        // Write the slot that does NOT hold the newest checkpoint.
        let target = if self.slots[0].sequence <= self.slots[1].sequence {
            0
        } else {
            1
        };
        self.in_flight = Some((target, state, time));
        energy
    }

    /// Advances persistence by `dt`; returns `true` if a commit
    /// completed this step.
    pub fn advance(&mut self, dt: Seconds) -> bool {
        let Some((slot, state, left)) = self.in_flight.take() else {
            return false;
        };
        let left = left - dt;
        if left.get() > 0.0 {
            self.in_flight = Some((slot, state, left));
            return false;
        }
        // Atomic selector flip: the slot becomes the newest checkpoint.
        self.slots[slot] = Slot {
            sequence: self.next_sequence,
            snapshot: Some(state),
        };
        self.next_sequence += 1;
        self.commits += 1;
        true
    }

    /// Power failure: any in-flight commit is torn and discarded.
    pub fn power_failure(&mut self) {
        if self.in_flight.take().is_some() {
            self.torn_writes += 1;
        }
    }

    /// Restores the most recent completed checkpoint, if any.
    pub fn restore(&self) -> Option<&T> {
        let newest = if self.slots[0].sequence >= self.slots[1].sequence {
            0
        } else {
            1
        };
        self.slots[newest].snapshot.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt() -> Checkpointer<Vec<u8>> {
        Checkpointer::new(CheckpointCosts::msp430_fram())
    }

    #[test]
    fn commit_and_restore() {
        let mut c = ckpt();
        assert!(c.restore().is_none());
        let energy = c.begin_commit(vec![1, 2, 3], 1024);
        assert!(energy.get() > 0.0);
        // 1 KiB at 8 MB/s ≈ 128 µs + 50 µs overhead.
        assert!(!c.advance(Seconds::from_micro(100.0)));
        assert!(c.advance(Seconds::from_micro(100.0)));
        assert_eq!(c.restore(), Some(&vec![1, 2, 3]));
        assert_eq!(c.commit_count(), 1);
    }

    #[test]
    fn torn_write_preserves_previous_checkpoint() {
        let mut c = ckpt();
        c.begin_commit(vec![1], 64);
        while !c.advance(Seconds::from_micro(10.0)) {}
        // Second commit interrupted by power failure.
        c.begin_commit(vec![2], 64);
        c.advance(Seconds::from_micro(5.0));
        c.power_failure();
        assert_eq!(c.restore(), Some(&vec![1]));
        assert_eq!(c.torn_write_count(), 1);
        // A fresh commit still works.
        c.begin_commit(vec![3], 64);
        while !c.advance(Seconds::from_micro(10.0)) {}
        assert_eq!(c.restore(), Some(&vec![3]));
    }

    #[test]
    fn slots_alternate() {
        let mut c = ckpt();
        for i in 0..5u8 {
            c.begin_commit(vec![i], 16);
            while !c.advance(Seconds::from_micro(10.0)) {}
            assert_eq!(c.restore(), Some(&vec![i]));
        }
        assert_eq!(c.commit_count(), 5);
    }

    #[test]
    #[should_panic(expected = "commit already in flight")]
    fn overlapping_commits_panic() {
        let mut c = ckpt();
        c.begin_commit(vec![1], 1024);
        c.begin_commit(vec![2], 1024);
    }

    #[test]
    fn cost_model_scales_with_size() {
        let costs = CheckpointCosts::msp430_fram();
        let (t1, e1) = costs.commit_cost(100);
        let (t2, e2) = costs.commit_cost(10_000);
        assert!(t2 > t1);
        assert!((e2.get() / e1.get() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn power_failure_with_no_commit_is_harmless() {
        let mut c = ckpt();
        c.power_failure();
        assert_eq!(c.torn_write_count(), 0);
    }
}
