//! Nonvolatile (FRAM) state cells.
//!
//! The MSP430FR5994's FRAM lets intermittent systems keep state across
//! power failures without the energy cost of flash. REACT's bank state
//! machines and the workloads' progress counters live in [`Fram`] cells:
//! values survive [`Mcu::power_off`](crate::Mcu::power_off), and every
//! write is counted so experiments can report wear and write overhead.

/// A nonvolatile cell holding a value of type `T`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fram<T> {
    value: T,
    writes: u64,
}

impl<T> Fram<T> {
    /// Creates a cell with an initial (factory-programmed) value.
    pub fn new(value: T) -> Self {
        Self { value, writes: 0 }
    }

    /// Reads the stored value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Writes a new value; counts the write.
    pub fn set(&mut self, value: T) {
        self.value = value;
        self.writes += 1;
    }

    /// Mutates the value in place through a closure; counts one write.
    pub fn update(&mut self, f: impl FnOnce(&mut T)) {
        f(&mut self.value);
        self.writes += 1;
    }

    /// Number of writes so far (wear/overhead accounting).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Consumes the cell, returning the stored value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T: Copy> Fram<T> {
    /// Copies the stored value out.
    pub fn load(&self) -> T {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_write_count() {
        let mut cell = Fram::new(0u32);
        assert_eq!(*cell.get(), 0);
        cell.set(7);
        cell.set(9);
        assert_eq!(cell.load(), 9);
        assert_eq!(cell.write_count(), 2);
    }

    #[test]
    fn update_in_place() {
        let mut cell = Fram::new(vec![1, 2]);
        cell.update(|v| v.push(3));
        assert_eq!(cell.get().as_slice(), &[1, 2, 3]);
        assert_eq!(cell.write_count(), 1);
    }

    #[test]
    fn into_inner_returns_value() {
        let cell = Fram::new("persisted".to_owned());
        assert_eq!(cell.into_inner(), "persisted");
    }

    #[test]
    fn default_works_for_default_types() {
        let cell: Fram<u64> = Fram::default();
        assert_eq!(cell.load(), 0);
        assert_eq!(cell.write_count(), 0);
    }
}
