//! Per-run metrics: what the paper's tables are made of.

use react_circuit::EnergyLedger;
use react_units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Everything measured over one simulated deployment.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Completed benchmark operations (Table 2 / Table 5 "Tx").
    pub ops_completed: u64,
    /// Operations lost to power failure.
    pub ops_failed: u64,
    /// Secondary count (Table 5 "Rx" for PF).
    pub aux_completed: u64,
    /// External events the system could not serve.
    pub events_missed: u64,
    /// Time from cold start to the first gate-enable (Table 4). `None`
    /// if the system never started.
    pub first_on_latency: Option<Seconds>,
    /// Total time the power gate was closed.
    pub on_time: Seconds,
    /// Total simulated time (trace + drain).
    pub total_time: Seconds,
    /// Completed power cycles (gate close → open).
    pub boots: u64,
    /// Mean uninterrupted on-period (the §2.1.1 longevity measure).
    pub mean_on_period: Seconds,
    /// Longest uninterrupted on-period.
    pub max_on_period: Seconds,
    /// Longest outage *survived*: the longest span the gate stayed open
    /// that still ended in a reboot (includes the cold start; excludes
    /// the trailing drain-out the system never returns from). The
    /// scenario report's persistence column.
    pub max_off_period: Seconds,
    /// Kernel iterations the engine executed: fine steps plus coarse
    /// idle strides. The adaptive/fixed ratio of this count is the
    /// structural speedup of a run (see the `engine` bench).
    pub engine_steps: u64,
    /// Capacitance reconfigurations the buffer's controller performed
    /// (REACT bank switches, Morphy ladder moves; zero for statics).
    pub reconfigurations: u64,
    /// Spans where the kernel's invariant guard tripped (non-finite
    /// harvest power or rail voltage) and the engine degraded to
    /// fine-stepping instead of propagating garbage. Zero for every
    /// well-posed run — the kernel-equivalence suite asserts it.
    #[serde(default)]
    pub guard_fallbacks: u64,
    /// Energy-attack alarms the defense raised (0 when undefended).
    #[serde(default)]
    pub detections: u64,
    /// Alarms that cleared with no suspicious activity after the raise
    /// — benign variance mistaken for an attack.
    #[serde(default)]
    pub false_positives: u64,
    /// Capacitance reconfigurations commanded by the *defense* (also
    /// included in [`reconfigurations`](Self::reconfigurations)).
    #[serde(default)]
    pub defensive_reconfigurations: u64,
    /// Hardware-drift fault events the fault plan injected mid-run.
    #[serde(default)]
    pub faults_injected: u64,
    /// Committed strides the invariant auditor cross-checked.
    #[serde(default)]
    pub audit_checks: u64,
    /// Auditor divergences: strides whose cross-checks failed, each
    /// permanently degrading the affected regime's fast path to fine
    /// stepping. Zero for every benign run — the fault suite asserts it.
    #[serde(default)]
    pub audit_trips: u64,
    /// Time spent at each capacitance level (§3.4.1 surrogate), in
    /// ascending level order. Empty for buffers without levels.
    pub capacitance_dwell: Vec<LevelDwell>,
    /// Energy accounting.
    pub ledger: EnergyLedger,
    /// Stored energy at the start of the run.
    pub initial_stored: Joules,
    /// Stored energy left at the end of the run.
    pub final_stored: Joules,
}

/// Time spent at one capacitance level over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelDwell {
    /// The buffer's capacitance level (bank/ladder step).
    pub level: u32,
    /// Seconds spent at that level.
    pub seconds: f64,
}

impl RunMetrics {
    /// Seconds the buffer spent at capacitance `level` (0.0 if never).
    pub fn dwell_at(&self, level: u32) -> f64 {
        self.capacitance_dwell
            .iter()
            .find(|d| d.level == level)
            .map_or(0.0, |d| d.seconds)
    }

    /// Fraction of the run the system was on (§2.1.2 operational duty).
    pub fn duty_cycle(&self) -> f64 {
        if self.total_time.get() <= 0.0 {
            0.0
        } else {
            self.on_time.get() / self.total_time.get()
        }
    }

    /// Conservation residual relative to harvested energy; ≈0 for a
    /// sound simulation.
    pub fn relative_conservation_error(&self) -> f64 {
        let scale = self
            .ledger
            .harvested
            .get()
            .max(self.initial_stored.get())
            .max(1e-12);
        self.ledger
            .conservation_residual(self.initial_stored, self.final_stored)
            .get()
            .abs()
            / scale
    }
}

/// One probed sample of the run (Fig. 1 / Fig. 6 series).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VoltageSample {
    /// Wall-clock time in seconds.
    pub time_s: f64,
    /// Buffer rail voltage in volts.
    pub voltage_v: f64,
    /// Whether the system was on.
    pub on: bool,
    /// Equivalent buffer capacitance in farads (REACT/Morphy vary it).
    pub capacitance_f: f64,
}

/// A finished run: metrics plus the optional probe series.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Scalar results.
    pub metrics: RunMetrics,
    /// Voltage series (present when probing was enabled).
    pub voltage_series: Vec<VoltageSample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle() {
        let m = RunMetrics {
            on_time: Seconds::new(25.0),
            total_time: Seconds::new(100.0),
            ..Default::default()
        };
        assert!((m.duty_cycle() - 0.25).abs() < 1e-12);
        assert_eq!(RunMetrics::default().duty_cycle(), 0.0);
    }

    #[test]
    fn conservation_error_zero_for_balanced() {
        let mut m = RunMetrics::default();
        m.ledger.delivered = Joules::new(2.0);
        m.ledger.load_consumed = Joules::new(1.5);
        m.final_stored = Joules::new(0.5);
        m.ledger.harvested = Joules::new(2.0);
        assert!(m.relative_conservation_error() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let m = RunMetrics {
            ops_completed: 42,
            first_on_latency: Some(Seconds::new(6.65)),
            ..Default::default()
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
