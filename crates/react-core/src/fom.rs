//! Figures of merit and normalization (Fig. 7).
//!
//! The paper quantifies each benchmark with a figure of merit — completed
//! operations for DE/SC/RT, packets handled for PF — and plots each
//! buffer's performance normalized to REACT, averaged across traces.

use react_buffers::BufferKind;
use react_units::Seconds;

use crate::experiment::{ExperimentMatrix, WorkloadKind};
use crate::metrics::RunMetrics;

/// The benchmark figure of merit for one run.
pub fn figure_of_merit(workload: WorkloadKind, metrics: &RunMetrics) -> f64 {
    match workload {
        WorkloadKind::DataEncryption | WorkloadKind::SenseCompute | WorkloadKind::RadioTransmit => {
            metrics.ops_completed as f64
        }
        // PF: packets received plus packets forwarded (both matter in
        // Table 5).
        WorkloadKind::PacketForward => (metrics.aux_completed + metrics.ops_completed) as f64,
    }
}

/// The figure of merit as a rate per deployed hour, so cells with
/// hour-, day-, and week-long horizons land on one comparable scale
/// (the drain tail past the horizon still counts toward the FoM but
/// not toward the denominator — it is part of the same deployment).
pub fn fom_per_hour(workload: WorkloadKind, metrics: &RunMetrics, horizon: Seconds) -> f64 {
    if horizon.get() <= 0.0 {
        return 0.0;
    }
    figure_of_merit(workload, metrics) / (horizon.get() / 3600.0)
}

/// One buffer's normalized score for a benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedScore {
    /// Buffer design.
    pub buffer: BufferKind,
    /// Mean over traces of (FoM / REACT's FoM on the same trace).
    pub score: f64,
}

/// Normalizes a matrix to REACT per trace and averages across traces —
/// exactly Fig. 7's bars for one benchmark.
pub fn normalize_to_react(matrix: &ExperimentMatrix) -> Vec<NormalizedScore> {
    let buffers: Vec<BufferKind> = matrix
        .rows
        .first()
        .map(|r| r.cells.iter().map(|c| c.buffer).collect())
        .unwrap_or_default();

    buffers
        .iter()
        .map(|&buffer| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for row in &matrix.rows {
                let react = row
                    .cells
                    .iter()
                    .find(|c| c.buffer == BufferKind::React)
                    .map(|c| figure_of_merit(matrix.workload, &c.outcome.metrics))
                    .unwrap_or(0.0);
                let this = row
                    .cells
                    .iter()
                    .find(|c| c.buffer == buffer)
                    .map(|c| figure_of_merit(matrix.workload, &c.outcome.metrics))
                    .unwrap_or(0.0);
                if react > 0.0 {
                    sum += this / react;
                    count += 1;
                }
            }
            NormalizedScore {
                buffer,
                score: if count > 0 { sum / count as f64 } else { 0.0 },
            }
        })
        .collect()
}

/// REACT's mean improvement over `baseline` across benchmarks, from a
/// set of per-benchmark normalized scores: `1/score − 1` averaged.
pub fn mean_improvement_over(
    scores_per_benchmark: &[Vec<NormalizedScore>],
    baseline: BufferKind,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for scores in scores_per_benchmark {
        if let Some(s) = scores.iter().find(|s| s.buffer == baseline) {
            if s.score > 0.0 {
                sum += 1.0 / s.score - 1.0;
                n += 1;
            }
        }
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MatrixCell, MatrixRow};
    use crate::metrics::RunOutcome;
    use react_traces::PaperTrace;

    fn outcome(ops: u64, aux: u64) -> RunOutcome {
        RunOutcome {
            metrics: RunMetrics {
                ops_completed: ops,
                aux_completed: aux,
                ..Default::default()
            },
            voltage_series: Vec::new(),
        }
    }

    fn tiny_matrix() -> ExperimentMatrix {
        ExperimentMatrix {
            workload: WorkloadKind::DataEncryption,
            rows: vec![MatrixRow {
                trace: PaperTrace::RfCart,
                cells: vec![
                    MatrixCell {
                        buffer: BufferKind::Static770uF,
                        outcome: outcome(50, 0),
                    },
                    MatrixCell {
                        buffer: BufferKind::React,
                        outcome: outcome(100, 0),
                    },
                ],
            }],
        }
    }

    #[test]
    fn fom_counts_ops_for_de() {
        let m = RunMetrics {
            ops_completed: 7,
            ..Default::default()
        };
        assert_eq!(figure_of_merit(WorkloadKind::DataEncryption, &m), 7.0);
    }

    #[test]
    fn fom_rate_scales_by_horizon() {
        let m = RunMetrics {
            ops_completed: 120,
            ..Default::default()
        };
        let rate = fom_per_hour(WorkloadKind::SenseCompute, &m, Seconds::new(2.0 * 3600.0));
        assert!((rate - 60.0).abs() < 1e-12);
        assert_eq!(
            fom_per_hour(WorkloadKind::SenseCompute, &m, Seconds::ZERO),
            0.0
        );
    }

    #[test]
    fn fom_counts_rx_plus_tx_for_pf() {
        let m = RunMetrics {
            ops_completed: 3,
            aux_completed: 5,
            ..Default::default()
        };
        assert_eq!(figure_of_merit(WorkloadKind::PacketForward, &m), 8.0);
    }

    #[test]
    fn normalization_to_react() {
        let scores = normalize_to_react(&tiny_matrix());
        let s770 = scores
            .iter()
            .find(|s| s.buffer == BufferKind::Static770uF)
            .unwrap();
        let sreact = scores
            .iter()
            .find(|s| s.buffer == BufferKind::React)
            .unwrap();
        assert!((s770.score - 0.5).abs() < 1e-12);
        assert!((sreact.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_over_baseline() {
        let scores = vec![normalize_to_react(&tiny_matrix())];
        // REACT doubled the 770 µF buffer's ops: improvement = 100 %.
        let imp = mean_improvement_over(&scores, BufferKind::Static770uF);
        assert!((imp - 1.0).abs() < 1e-12);
        assert_eq!(mean_improvement_over(&scores, BufferKind::Morphy), 0.0);
    }
}
