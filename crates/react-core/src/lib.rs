//! Simulation engine and experiment harness for the REACT reproduction.
//!
//! This crate assembles the substrates — traces, harvester, buffers,
//! MCU, workloads — into the paper's testbed (§4) and drives the
//! evaluation (§5):
//!
//! * [`Simulator`] — the simulation loop (harvester replay → buffer
//!   physics → power gate → MCU → workload), generic over buffer and
//!   workload, with two kernels: the fixed-`dt` reference and the
//!   default adaptive kernel that integrates MCU-off charge phases
//!   analytically ([`KernelMode`]).
//! * [`Experiment`] / [`ExperimentMatrix`] — one (buffer, workload) pair
//!   against a trace, or the full trace × buffer matrix behind
//!   Tables 2, 4, and 5 (every cell in parallel, traces shared via
//!   `Arc`).
//! * [`scenario`] — the named scenario registry: streaming `react-env`
//!   environments × buffer × workload × horizon, run through the same
//!   parallel engine (week-long horizons stream segment by segment,
//!   never materializing samples).
//! * [`RunMetrics`] / [`RunOutcome`] — what each run measures.
//! * [`fom`] — figures of merit and REACT-normalized scores (Fig. 7).
//! * [`report`] — text/CSV table rendering for the bench harnesses.
//! * [`calib`] — every calibration constant, with provenance.
//!
//! # Examples
//!
//! ```
//! use react_core::{Experiment, WorkloadKind};
//! use react_buffers::BufferKind;
//! use react_traces::{paper_trace, PaperTrace};
//!
//! // One cell of Table 2: DE on RF Cart with the 770 µF buffer.
//! let trace = paper_trace(PaperTrace::RfCart).truncated(react_units::Seconds::new(30.0));
//! let out = Experiment::new(BufferKind::Static770uF, WorkloadKind::DataEncryption)
//!     .run(&trace);
//! assert!(out.metrics.relative_conservation_error() < 1e-2);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod audit;
pub mod calib;
mod experiment;
pub mod fleet;
pub mod fom;
mod metrics;
pub mod report;
pub mod scenario;
pub mod scenario_report;
mod sim;
pub mod sweep;

pub use audit::{AuditConfig, AuditSnapshot, InvariantAuditor};
pub use experiment::{Experiment, ExperimentMatrix, MatrixCell, MatrixRow, WorkloadKind};
pub use fleet::{
    compare_fleet_reports, run_fleet, run_shard, run_shard_attributed, FleetAggregate, FleetBins,
    FleetCheckpoint, FleetReport, FleetRunOptions, FleetRunResult, FleetSim, FleetSimT, FleetSpec,
    FleetSummary, FleetTolerances, Histogram, NodeStats, PoisonedNode, ShardEntry, TimedOutNode,
};
pub use metrics::{LevelDwell, RunMetrics, RunOutcome, VoltageSample};
pub use scenario::{
    fault_scenario_registry, find_scenario, run_scenarios, scenario_registry, EnvKind, Scenario,
};
pub use scenario_report::{
    build_attributed_report, build_fault_report, build_full_report, build_report,
    build_report_with, compare_reports, merged_attribution, render_attribution, render_class_sinks,
    report_scenarios, CellAttribution, PoisonedCell, ResilienceRow, ScenarioCell, ScenarioReport,
    SurvivalRow, Tolerances,
};
pub use sim::{ConstantLoad, KernelMode, SimCore, SimError, Simulator};
pub use sweep::SweepOptions;
