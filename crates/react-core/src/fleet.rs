//! Fleet-scale batched simulation: one run, 100k+ devices.
//!
//! The scalar engine answers "how does *one* node behave under this
//! scenario?". Deployment questions are fleet questions: what is the
//! p5 figure of merit across 100 000 co-deployed tags whose harvests
//! are *almost* — but not exactly — the same? This module answers them
//! without giving up the scalar engine's semantics:
//!
//! * [`FleetSpec`] — a base [`Scenario`] fanned out to `nodes` cells,
//!   each re-salted with [`node_salt`] (splitmix64 over the fleet seed
//!   and node index) so every node sees statistically independent
//!   environment and workload streams from one committed seed.
//! * [`FleetSim`] — the batched kernel: a shard of resumable
//!   [`SimCore`] cells advanced through a min-clock event heap in
//!   bounded time chunks, so the whole shard strides through the
//!   horizon together. Because [`SimCore`] stepping is bit-identical
//!   to a monolithic [`Scenario::run`], fleet aggregates are
//!   *bit-comparable* to N independent scalar runs — the property the
//!   `fleet_vs_scalar` bench and tier-1 tests pin down.
//! * [`FleetAggregate`] / [`Histogram`] — streaming reduction. Memory
//!   is O(live shard + histogram bins), never O(nodes): a 100k-node
//!   week costs the same RAM as a 1k-node week.
//! * [`run_fleet`] — the sharded runner: rayon-parallel shards,
//!   deterministic in-order merge, and JSON checkpoint/resume keyed by
//!   a config fingerprint so an interrupted 100k run resumes instead
//!   of restarting.
//!
//! [`node_salt`]: react_env::node_salt

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::Mutex;

use rayon::prelude::*;
use react_env::node_salt;
use react_telemetry::{NullRecorder, Recorder, StepAttribution};
use react_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::fom::figure_of_merit;
use crate::scenario::Scenario;
use crate::sim::SimCore;
use crate::RunMetrics;

/// Default cells per shard: large enough to amortize per-shard
/// overhead, small enough that a checkpoint granule is cheap to lose.
pub const DEFAULT_SHARD_SIZE: usize = 1024;

/// Default heap chunk: each cell is advanced at most this far past the
/// fleet's minimum clock before re-queueing, keeping the shard's cells
/// striding through the horizon together (cache-friendly on the shared
/// scenario structure, and bounds per-cell memory between reductions).
pub const DEFAULT_CHUNK: Seconds = Seconds::new(3600.0);

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Fixed-bin streaming histogram.
///
/// Binning is fixed at construction (not adaptive) so histograms built
/// by different shards — possibly on different machines — merge
/// exactly. Values outside `[lo, lo + bins·width)` land in dedicated
/// underflow/overflow counters rather than silently clamping the
/// distribution.
///
/// Serialization note: `min`/`max` hold `0.0` (not ±inf) while
/// `count == 0` because the JSON layer cannot round-trip non-finite
/// floats; [`Histogram::merge`] and [`Histogram::record`] maintain the
/// convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of bin 0.
    pub lo: f64,
    /// Width of every bin.
    pub width: f64,
    /// Per-bin counts.
    pub bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bin edge.
    pub overflow: u64,
    /// Total samples recorded (including under/overflow).
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub sum: f64,
    /// Smallest sample seen (`0.0` while empty).
    pub min: f64,
    /// Largest sample seen (`0.0` while empty).
    pub max: f64,
}

impl Histogram {
    /// A histogram covering `[lo, hi)` with `bins` equal bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "degenerate histogram range");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
        if v < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((v - self.lo) / self.width) as usize;
            if idx >= self.bins.len() {
                self.overflow += 1;
            } else {
                self.bins[idx] += 1;
            }
        }
    }

    /// Merges another histogram with identical binning into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bins.len() == other.bins.len() && self.lo == other.lo && self.width == other.width,
            "merging histograms with mismatched binning"
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        for (b, o) in self.bins.iter_mut().zip(other.bins.iter()) {
            *b += o;
        }
    }

    /// Mean of all recorded samples (`0.0` while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` from bin midpoints, clamped
    /// to the exact observed `[min, max]`. Underflow mass reports
    /// `min`, overflow mass reports `max`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.underflow;
        if cum >= target {
            return self.min;
        }
        for (i, &b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                let mid = self.lo + (i as f64 + 0.5) * self.width;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Per-node stats and the streaming aggregate
// ---------------------------------------------------------------------------

/// The per-node scalars the fleet reduction keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Workload figure of merit ([`figure_of_merit`]).
    pub fom: f64,
    /// Fraction of the run spent powered on.
    pub on_frac: f64,
    /// Longest continuous off period, seconds.
    pub outage_s: f64,
    /// Boot count.
    pub boots: f64,
    /// Operations completed.
    pub ops: f64,
    /// Hardware-drift fault events injected (0 for benign fleets).
    pub faults: f64,
    /// Invariant-auditor trips that degraded a fast path.
    pub trips: f64,
}

impl NodeStats {
    /// Extracts the fleet-relevant scalars from one finished run.
    pub fn from_metrics(scenario: &Scenario, m: &RunMetrics) -> Self {
        NodeStats {
            fom: figure_of_merit(scenario.workload, m),
            on_frac: m.duty_cycle(),
            outage_s: m.max_off_period.get(),
            boots: m.boots as f64,
            ops: m.ops_completed as f64,
            faults: m.faults_injected as f64,
            trips: m.audit_trips as f64,
        }
    }
}

/// A fleet cell whose run panicked. The batched kernel catches the
/// unwind, records the node here, and keeps the shard going — one
/// diverging cell never takes down its 1023 neighbours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoisonedNode {
    /// Fleet node index.
    pub node: f64,
    /// The panic payload, when it was a string (it almost always is).
    pub message: String,
}

/// A fleet cell that exceeded its engine-step watchdog budget — a
/// fault-wedged cell (e.g. a welded switch fine-stepping below
/// brown-out forever) becomes a reported entry instead of a hung
/// shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedOutNode {
    /// Fleet node index.
    pub node: f64,
    /// Engine steps spent when the watchdog fired.
    pub engine_steps: f64,
    /// Simulated time reached when the watchdog fired, seconds.
    pub sim_time_s: f64,
}

/// Histogram binning bounds for a fleet run. Fixed per-run so every
/// shard bins identically and merges are exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetBins {
    /// FoM histogram upper edge (lower edge is 0).
    pub fom_cap: f64,
    /// Outage histogram upper edge, seconds (lower edge is 0).
    pub outage_cap_s: f64,
    /// Boot-count histogram upper edge (lower edge is 0).
    pub boots_cap: f64,
    /// Bin count shared by every histogram.
    pub bins: f64,
}

impl FleetBins {
    /// Bounds sized for the week-class scenario registry: FoM in ops
    /// (DE week ≈ 10⁵–10⁶), outages up to a full day, boots to 10⁴.
    pub fn default_for(horizon: Seconds) -> Self {
        FleetBins {
            fom_cap: 2.0e6,
            outage_cap_s: horizon.get().min(86_400.0),
            boots_cap: 1.0e4,
            bins: 512.0,
        }
    }

    /// Pilot-calibrated bounds: runs node 0 of the (seeded) fleet
    /// scalar and sizes each histogram to a few multiples of its
    /// stats, so the fleet's actual spread lands across many bins
    /// instead of collapsing into one. Deterministic for a given
    /// (scenario, seed) — the pilot is part of the fleet itself — and
    /// the resulting caps are covered by [`FleetSpec::fingerprint`],
    /// so a baseline can never silently compare across binnings.
    pub fn calibrated(base: &Scenario, fleet_seed: u64) -> Self {
        let pilot = base.with_seed_salt(node_salt(fleet_seed, 0));
        let out = pilot.run();
        let stats = NodeStats::from_metrics(&pilot, &out.metrics);
        FleetBins {
            fom_cap: (stats.fom * 4.0).max(16.0),
            outage_cap_s: (stats.outage_s * 4.0).clamp(60.0, base.horizon.get().max(60.0)),
            boots_cap: (stats.boots * 4.0).max(16.0),
            bins: 512.0,
        }
    }

    fn bin_count(&self) -> usize {
        (self.bins as usize).max(1)
    }
}

/// Streaming fleet-wide reduction: four fixed-bin histograms plus
/// exact totals. Memory is O(bins) regardless of fleet size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAggregate {
    /// Nodes folded in so far.
    pub nodes: f64,
    /// Exact total operations across the fleet.
    pub total_ops: f64,
    /// Figure-of-merit distribution.
    pub fom: Histogram,
    /// On-time fraction distribution.
    pub on_frac: Histogram,
    /// Longest-outage distribution (seconds).
    pub outage_s: Histogram,
    /// Boot-count distribution.
    pub boots: Histogram,
    /// Exact total fault events injected across the fleet.
    #[serde(default)]
    pub total_faults: f64,
    /// Exact total auditor trips across the fleet.
    #[serde(default)]
    pub total_trips: f64,
    /// Per-node auditor-trip distribution (degradation histogram).
    /// Fixed binning `[0, 64)` × 64 so shards merge exactly; `None`
    /// only when deserialized from a pre-fault-era checkpoint.
    #[serde(default)]
    pub trips: Option<Histogram>,
    /// Nodes whose run panicked (isolated, not fatal to the shard).
    /// Empty for a healthy fleet; any entry fails the CI gate.
    #[serde(default)]
    pub poisoned: Vec<PoisonedNode>,
    /// Nodes that blew their engine-step watchdog budget. Empty for a
    /// healthy fleet; any entry fails the CI gate.
    #[serde(default)]
    pub timed_out: Vec<TimedOutNode>,
}

impl FleetAggregate {
    /// Fixed binning of the per-node auditor-trip histogram: a cell
    /// trips at most once per (regime × fault window), so 64 covers
    /// any realistic campaign while staying merge-exact everywhere.
    pub const TRIPS_BINS: (f64, f64, usize) = (0.0, 64.0, 64);

    /// An empty aggregate with the given binning.
    pub fn new(bins: FleetBins) -> Self {
        let n = bins.bin_count();
        let (tlo, thi, tn) = Self::TRIPS_BINS;
        FleetAggregate {
            nodes: 0.0,
            total_ops: 0.0,
            fom: Histogram::new(0.0, bins.fom_cap, n),
            on_frac: Histogram::new(0.0, 1.0, n),
            outage_s: Histogram::new(0.0, bins.outage_cap_s, n),
            boots: Histogram::new(0.0, bins.boots_cap, n),
            total_faults: 0.0,
            total_trips: 0.0,
            trips: Some(Histogram::new(tlo, thi, tn)),
            poisoned: Vec::new(),
            timed_out: Vec::new(),
        }
    }

    /// Folds one node's stats into the aggregate.
    pub fn record(&mut self, s: &NodeStats) {
        self.nodes += 1.0;
        self.total_ops += s.ops;
        self.fom.record(s.fom);
        self.on_frac.record(s.on_frac);
        self.outage_s.record(s.outage_s);
        self.boots.record(s.boots);
        self.total_faults += s.faults;
        self.total_trips += s.trips;
        if let Some(trips) = &mut self.trips {
            trips.record(s.trips);
        }
    }

    /// Merges a shard aggregate (identical binning) into this one.
    pub fn merge(&mut self, other: &FleetAggregate) {
        self.nodes += other.nodes;
        self.total_ops += other.total_ops;
        self.fom.merge(&other.fom);
        self.on_frac.merge(&other.on_frac);
        self.outage_s.merge(&other.outage_s);
        self.boots.merge(&other.boots);
        self.total_faults += other.total_faults;
        self.total_trips += other.total_trips;
        // A pre-fault-era side (trips = None) contributes nothing: it
        // could only have recorded zero trips.
        if let Some(theirs) = &other.trips {
            match &mut self.trips {
                Some(mine) => mine.merge(theirs),
                None => self.trips = Some(theirs.clone()),
            }
        }
        self.poisoned.extend(other.poisoned.iter().cloned());
        self.timed_out.extend(other.timed_out.iter().cloned());
    }

    /// Collapses the aggregate into the headline percentile summary.
    pub fn summary(&self) -> FleetSummary {
        FleetSummary {
            nodes: self.nodes,
            total_ops: self.total_ops,
            fom_mean: self.fom.mean(),
            fom_p5: self.fom.quantile(0.05),
            fom_p50: self.fom.quantile(0.50),
            fom_p95: self.fom.quantile(0.95),
            fom_p99: self.fom.quantile(0.99),
            on_frac_mean: self.on_frac.mean(),
            on_frac_p5: self.on_frac.quantile(0.05),
            on_frac_p50: self.on_frac.quantile(0.50),
            outage_p50_s: self.outage_s.quantile(0.50),
            outage_p95_s: self.outage_s.quantile(0.95),
            outage_max_s: self.outage_s.max,
            boots_mean: self.boots.mean(),
            total_faults: self.total_faults,
            total_trips: self.total_trips,
            poisoned_nodes: self.poisoned.len() as f64,
            timed_out_nodes: self.timed_out.len() as f64,
        }
    }
}

/// Headline fleet percentiles — the quantities the CI gate pins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Nodes simulated.
    pub nodes: f64,
    /// Total operations completed fleet-wide.
    pub total_ops: f64,
    /// Mean figure of merit.
    pub fom_mean: f64,
    /// 5th-percentile FoM (the deployment's weak tail).
    pub fom_p5: f64,
    /// Median FoM.
    pub fom_p50: f64,
    /// 95th-percentile FoM.
    pub fom_p95: f64,
    /// 99th-percentile FoM.
    pub fom_p99: f64,
    /// Mean on-time fraction.
    pub on_frac_mean: f64,
    /// 5th-percentile on-time fraction.
    pub on_frac_p5: f64,
    /// Median on-time fraction.
    pub on_frac_p50: f64,
    /// Median longest outage, seconds.
    pub outage_p50_s: f64,
    /// 95th-percentile longest outage, seconds.
    pub outage_p95_s: f64,
    /// Worst outage across the fleet, seconds.
    pub outage_max_s: f64,
    /// Mean boot count.
    pub boots_mean: f64,
    /// Total fault events injected fleet-wide (0 for benign fleets).
    #[serde(default)]
    pub total_faults: f64,
    /// Total auditor trips fleet-wide.
    #[serde(default)]
    pub total_trips: f64,
    /// Nodes whose run panicked (any non-zero value fails the gate).
    #[serde(default)]
    pub poisoned_nodes: f64,
    /// Nodes that blew their watchdog budget (any non-zero value
    /// fails the gate).
    #[serde(default)]
    pub timed_out_nodes: f64,
}

// ---------------------------------------------------------------------------
// Fleet spec
// ---------------------------------------------------------------------------

/// A fleet run: one base scenario fanned out to `nodes` salted cells.
#[derive(Debug, Clone, Copy)]
pub struct FleetSpec {
    /// The shared topology every node runs.
    pub base: Scenario,
    /// Fleet size.
    pub nodes: usize,
    /// Root seed; node `i` runs salt [`node_salt`]`(fleet_seed, i)`.
    pub fleet_seed: u64,
    /// Cells per shard (checkpoint granule).
    pub shard_size: usize,
    /// Heap stride: max seconds a cell advances past the fleet's
    /// minimum clock before re-queueing.
    pub chunk: Seconds,
    /// Histogram binning shared by every shard.
    pub bins: FleetBins,
    /// Explicit per-cell engine-step watchdog budget. `None` (the
    /// default, and the only fingerprint-neutral value) derives the
    /// budget from the cell's scenario: `4·(horizon/dt) + 10_000`
    /// engine steps — four times what the fixed-`dt` reference would
    /// spend, so no honest cell can trip it while a fault-wedged cell
    /// becomes a [`TimedOutNode`] instead of a hung shard.
    pub step_budget: Option<u64>,
}

impl FleetSpec {
    /// A fleet of `nodes` cells over `base` with default sharding.
    pub fn new(base: Scenario, nodes: usize, fleet_seed: u64) -> Self {
        FleetSpec {
            base,
            nodes,
            fleet_seed,
            shard_size: DEFAULT_SHARD_SIZE,
            chunk: DEFAULT_CHUNK,
            bins: FleetBins::default_for(base.horizon),
            step_budget: None,
        }
    }

    /// The salted scenario node `i` runs.
    pub fn node_scenario(&self, i: usize) -> Scenario {
        self.base
            .with_seed_salt(node_salt(self.fleet_seed, i as u64))
    }

    /// Number of shards ([`FleetSpec::shard_size`]-sized, last ragged).
    pub fn shard_count(&self) -> usize {
        self.nodes.div_ceil(self.shard_size.max(1))
    }

    /// Node-index range `[start, end)` covered by shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        let start = s * self.shard_size;
        (start, (start + self.shard_size).min(self.nodes))
    }

    /// Config fingerprint (hex string) binding a checkpoint or a
    /// committed baseline to the exact fleet configuration: scenario
    /// name, node count, seed, sharding, horizon, and binning. FNV-1a
    /// over the rendered config — stable across toolchains, and a
    /// string because the JSON layer only round-trips integers up to
    /// 2^53 exactly.
    pub fn fingerprint(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut rendered = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.base.name,
            self.nodes,
            self.fleet_seed,
            self.shard_size,
            self.chunk.get(),
            self.base.horizon.get(),
            self.bins.fom_cap,
            self.bins.outage_cap_s,
            self.bins.bin_count(),
        );
        // Fault-era segments append only when non-default, so every
        // pre-fault fingerprint (and its committed baselines and
        // checkpoints) is untouched.
        if self.base.fault != react_circuit::FaultCampaign::None {
            rendered.push_str(&format!("|fault:{}", self.base.fault.label()));
        }
        if self.base.audited {
            rendered.push_str("|audited");
        }
        if let Some(budget) = self.step_budget {
            rendered.push_str(&format!("|budget:{budget}"));
        }
        let h = rendered
            .bytes()
            .fold(FNV_OFFSET, |h, b| (h ^ b as u64).wrapping_mul(FNV_PRIME));
        format!("{h:016x}")
    }
}

// ---------------------------------------------------------------------------
// The batched kernel
// ---------------------------------------------------------------------------

type Cell<R> = SimCore<
    Box<dyn react_buffers::EnergyBuffer>,
    Box<dyn react_workloads::Workload>,
    Box<dyn react_env::PowerSource>,
    R,
>;

/// The batched fleet kernel: a set of resumable [`SimCore`] cells
/// advanced through a min-clock heap so the whole batch strides
/// through the horizon together.
///
/// Each pop advances the laggard cell by at most one chunk past the
/// current fleet minimum, then re-queues it. Finished cells drain into
/// per-node outcome slots; [`FleetSim::run`] folds those into a
/// [`FleetAggregate`] in *node-index order*, so the order-sensitive
/// f64 reductions are deterministic no matter how the heap interleaved
/// execution.
///
/// The recorder parameter `R` defaults to [`NullRecorder`], which
/// compiles every telemetry hook away — the bare [`FleetSim`] alias is
/// the zero-overhead production kernel. Instantiate with
/// [`StepAttribution`] (e.g. via [`run_shard_attributed`]) to profile
/// where the fleet's engine steps go; per-cell recorders are absorbed
/// in node-index order, so the profile is as deterministic as the
/// aggregate.
pub struct FleetSimT<R: Recorder + Default = NullRecorder> {
    scenarios: Vec<Scenario>,
    cells: Vec<Option<Cell<R>>>,
    /// Min-heap on (time-bits, node). `f64::to_bits` is monotone for
    /// the non-negative clocks the engine produces, giving an `Ord`
    /// key without wrapping floats.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    outcomes: Vec<Option<NodeStats>>,
    recorders: Vec<Option<R>>,
    chunk: Seconds,
    bins: FleetBins,
    /// Fleet node index of cell 0 (shards report fleet-global indices).
    first_node: usize,
    /// Explicit watchdog budget; `None` derives per-cell defaults.
    budget_override: Option<u64>,
    poisoned: Vec<PoisonedNode>,
    timed_out: Vec<TimedOutNode>,
}

/// Default watchdog budget for one cell: four times the fixed-`dt`
/// reference step count plus slack for boot/servicing overhead.
fn default_step_budget(s: &Scenario) -> u64 {
    4 * (s.horizon.get() / s.dt.get()).round() as u64 + 10_000
}

/// How one heap pop left its cell.
enum CellAdvance {
    /// Still live; re-queue at its new clock.
    Running,
    /// Ran out of simulation; drain the outcome.
    Finished,
    /// Blew the watchdog budget; report and drop.
    Overran,
}

/// The production fleet kernel: no telemetry, no overhead.
pub type FleetSim = FleetSimT<NullRecorder>;

impl<R: Recorder + Default> FleetSimT<R> {
    /// Builds a batch from explicit (already salted) scenarios.
    ///
    /// Returns `Err` if any cell's simulator rejects its configuration
    /// (e.g. an unbounded source with no horizon).
    pub fn from_scenarios(
        scenarios: Vec<Scenario>,
        chunk: Seconds,
        bins: FleetBins,
    ) -> Result<Self, String> {
        let mut cells = Vec::with_capacity(scenarios.len());
        let mut heap = BinaryHeap::with_capacity(scenarios.len());
        for (i, sc) in scenarios.iter().enumerate() {
            let core = sc
                .simulator()
                .with_recorder(R::default())
                .try_into_core()
                .map_err(|e| format!("fleet cell {i} ({}): {e}", sc.name))?;
            heap.push(Reverse((core.now().get().to_bits(), i)));
            cells.push(Some(core));
        }
        Ok(FleetSimT {
            outcomes: vec![None; scenarios.len()],
            recorders: std::iter::repeat_with(|| None)
                .take(scenarios.len())
                .collect(),
            scenarios,
            cells,
            heap,
            chunk,
            bins,
            first_node: 0,
            budget_override: None,
            poisoned: Vec::new(),
            timed_out: Vec::new(),
        })
    }

    /// Builds the shard `[start, end)` of a fleet spec.
    pub fn from_spec_range(spec: &FleetSpec, start: usize, end: usize) -> Result<Self, String> {
        let scenarios: Vec<Scenario> = (start..end).map(|i| spec.node_scenario(i)).collect();
        let mut sim = FleetSimT::from_scenarios(scenarios, spec.chunk, spec.bins)?;
        sim.first_node = start;
        sim.budget_override = spec.step_budget;
        Ok(sim)
    }

    /// Cells still running.
    pub fn live_cells(&self) -> usize {
        self.heap.len()
    }

    /// Advances the laggard cell by one chunk. Returns `false` once
    /// every cell has finished.
    ///
    /// The advancement loop runs at `advance()` granularity inside
    /// `catch_unwind`: a panicking cell becomes a [`PoisonedNode`] and
    /// a cell that exceeds its engine-step watchdog budget becomes a
    /// [`TimedOutNode`] — either way the shard keeps going and the
    /// failure is a reported aggregate entry, not a crashed or hung
    /// run.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((_, idx))) = self.heap.pop() else {
            return false;
        };
        let cell = self.cells[idx]
            .as_mut()
            .expect("heap entry for a drained cell");
        let limit = cell.now() + self.chunk;
        let budget = self
            .budget_override
            .unwrap_or_else(|| default_step_budget(&self.scenarios[idx]));
        let advanced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            if cell.engine_steps() >= budget {
                break CellAdvance::Overran;
            }
            if !cell.advance() {
                break CellAdvance::Finished;
            }
            if cell.now() >= limit {
                break CellAdvance::Running;
            }
        }));
        match advanced {
            Ok(CellAdvance::Running) => {
                self.heap.push(Reverse((cell.now().get().to_bits(), idx)));
            }
            Ok(CellAdvance::Finished) => {
                let core = self.cells[idx].take().expect("cell vanished mid-drain");
                let (outcome, recorder) = core.finish_telemetry();
                self.outcomes[idx] = Some(NodeStats::from_metrics(
                    &self.scenarios[idx],
                    &outcome.metrics,
                ));
                self.recorders[idx] = Some(recorder);
            }
            Ok(CellAdvance::Overran) => {
                let core = self.cells[idx].take().expect("cell vanished mid-drain");
                self.timed_out.push(TimedOutNode {
                    node: (self.first_node + idx) as f64,
                    engine_steps: core.engine_steps() as f64,
                    sim_time_s: core.now().get(),
                });
            }
            Err(payload) => {
                // The unwound cell is in an unknown state; drop it.
                self.cells[idx] = None;
                self.poisoned.push(PoisonedNode {
                    node: (self.first_node + idx) as f64,
                    message: crate::scenario_report::panic_message(payload),
                });
            }
        }
        !self.heap.is_empty()
    }

    /// Runs every cell to completion and reduces in node-index order,
    /// returning the aggregate alongside the fleet-wide recorder
    /// (per-cell recorders absorbed in node-index order).
    pub fn run_telemetry(mut self) -> (FleetAggregate, R) {
        while self.step() {}
        let mut agg = FleetAggregate::new(self.bins);
        for stats in self.outcomes.iter().flatten() {
            agg.record(stats);
        }
        agg.poisoned = self.poisoned;
        agg.timed_out = self.timed_out;
        let mut recorder = R::default();
        for r in self.recorders.into_iter().flatten() {
            recorder.absorb(r);
        }
        (agg, recorder)
    }

    /// Runs every cell to completion and reduces in node-index order.
    pub fn run(self) -> FleetAggregate {
        self.run_telemetry().0
    }
}

// ---------------------------------------------------------------------------
// Sharded runner with checkpoint/resume
// ---------------------------------------------------------------------------

/// One completed shard inside a [`FleetCheckpoint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard index within the fleet.
    pub index: f64,
    /// The shard's reduced aggregate.
    pub aggregate: FleetAggregate,
}

/// On-disk checkpoint: the fleet fingerprint plus every finished
/// shard's aggregate. Granularity is the shard — an interrupted run
/// loses at most one shard of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// [`FleetSpec::fingerprint`] of the producing configuration.
    pub fingerprint: String,
    /// Completed shards, any order on disk; merged in index order.
    pub shards: Vec<ShardEntry>,
}

/// Options for [`run_fleet`].
#[derive(Debug, Clone, Default)]
pub struct FleetRunOptions {
    /// Checkpoint path: loaded (if fingerprint-compatible) before the
    /// run, rewritten after every completed shard.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Stop after this many *newly executed* shards (for tests and
    /// incremental runs). `None` runs to completion.
    pub max_shards: Option<usize>,
    /// Run shards through the rayon pool instead of serially.
    pub parallel: bool,
    /// Also collect a fleet-wide [`StepAttribution`] profile. Shards
    /// restored from a checkpoint carry no recorder state, so a
    /// resumed run's profile covers only the newly executed shards.
    pub attribution: bool,
}

/// Result of a [`run_fleet`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunResult {
    /// Fleet-wide aggregate over every *completed* shard.
    pub aggregate: FleetAggregate,
    /// Shards completed so far (including resumed ones).
    pub shards_done: usize,
    /// Total shards in the fleet.
    pub shards_total: usize,
    /// Shards skipped because the checkpoint already had them.
    pub shards_resumed: usize,
    /// Fleet-wide step-attribution profile, present only when
    /// [`FleetRunOptions::attribution`] was set. Merged in shard-index
    /// order (each shard absorbed in node-index order), so it is as
    /// deterministic as the aggregate. Resumed shards contribute
    /// nothing — checkpoints store aggregates, not recorders.
    pub attribution: Option<StepAttribution>,
}

impl FleetRunResult {
    /// Whether every shard has been folded in.
    pub fn complete(&self) -> bool {
        self.shards_done == self.shards_total
    }
}

fn load_checkpoint(path: &Path, fingerprint: &str) -> Result<Vec<ShardEntry>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading checkpoint {}: {e}", path.display()))?;
    // A corrupt checkpoint (truncated write, garbled JSON) is not a
    // fatal error: move it aside loudly and restart the fleet clean.
    // A *fingerprint mismatch* below stays fatal — that file is a
    // valid checkpoint for some other configuration.
    let ckpt: FleetCheckpoint = match serde_json::from_str(&text) {
        Ok(ckpt) => ckpt,
        Err(e) => {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("checkpoint");
            let corrupt = path.with_file_name(format!("{name}.corrupt"));
            match std::fs::rename(path, &corrupt) {
                Ok(()) => eprintln!(
                    "fleet checkpoint {} is corrupt ({e}); moved aside to {} and \
                     restarting the fleet from scratch",
                    path.display(),
                    corrupt.display()
                ),
                Err(mv) => eprintln!(
                    "fleet checkpoint {} is corrupt ({e}); could not move it aside \
                     ({mv}); ignoring it and restarting the fleet from scratch",
                    path.display()
                ),
            }
            return Ok(Vec::new());
        }
    };
    if ckpt.fingerprint != fingerprint {
        return Err(format!(
            "checkpoint {} fingerprint {} does not match fleet config {fingerprint}; \
             delete it or rerun the original configuration",
            path.display(),
            ckpt.fingerprint
        ));
    }
    Ok(ckpt.shards)
}

fn save_checkpoint(path: &Path, fingerprint: &str, shards: &[ShardEntry]) -> Result<(), String> {
    let ckpt = FleetCheckpoint {
        fingerprint: fingerprint.to_string(),
        shards: shards.to_vec(),
    };
    let text = serde_json::to_string(&ckpt).map_err(|e| format!("serializing checkpoint: {e}"))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming {}: {e}", tmp.display()))
}

/// Executes one shard of the fleet to completion.
pub fn run_shard(spec: &FleetSpec, shard: usize) -> Result<FleetAggregate, String> {
    let (start, end) = spec.shard_range(shard);
    Ok(FleetSim::from_spec_range(spec, start, end)?.run())
}

/// Executes one shard with step-attribution recording enabled,
/// returning the shard aggregate together with its merged profile.
pub fn run_shard_attributed(
    spec: &FleetSpec,
    shard: usize,
) -> Result<(FleetAggregate, StepAttribution), String> {
    let (start, end) = spec.shard_range(shard);
    Ok(FleetSimT::<StepAttribution>::from_spec_range(spec, start, end)?.run_telemetry())
}

/// Runs a fleet spec shard by shard, honoring checkpoint/resume.
///
/// Shards execute in parallel when requested, but the merge is always
/// performed in shard-index order (and each shard reduces its nodes in
/// node-index order), so the final aggregate is bitwise deterministic
/// for a given spec regardless of scheduling — the property the
/// checkpoint/resume test pins.
pub fn run_fleet(spec: &FleetSpec, opts: &FleetRunOptions) -> Result<FleetRunResult, String> {
    let fingerprint = spec.fingerprint();
    let total = spec.shard_count();
    let mut done: Vec<ShardEntry> = match &opts.checkpoint {
        Some(path) => load_checkpoint(path, &fingerprint)?,
        None => Vec::new(),
    };
    done.retain(|e| (e.index as usize) < total);
    done.sort_by_key(|e| e.index as usize);
    done.dedup_by_key(|e| e.index as usize);
    let resumed = done.len();

    let have: std::collections::HashSet<usize> = done.iter().map(|e| e.index as usize).collect();
    let mut todo: Vec<usize> = (0..total).filter(|s| !have.contains(s)).collect();
    if let Some(cap) = opts.max_shards {
        todo.truncate(cap);
    }

    let ledger = Mutex::new(done);
    let attr_ledger: Mutex<Vec<(usize, StepAttribution)>> = Mutex::new(Vec::new());
    let run_one = |&shard: &usize| -> Result<(), String> {
        let aggregate = if opts.attribution {
            let (aggregate, attr) = run_shard_attributed(spec, shard)?;
            attr_ledger
                .lock()
                .expect("fleet attribution ledger poisoned")
                .push((shard, attr));
            aggregate
        } else {
            run_shard(spec, shard)?
        };
        let mut led = ledger.lock().expect("fleet checkpoint ledger poisoned");
        led.push(ShardEntry {
            index: shard as f64,
            aggregate,
        });
        if let Some(path) = &opts.checkpoint {
            led.sort_by_key(|e| e.index as usize);
            save_checkpoint(path, &fingerprint, &led)?;
        }
        Ok(())
    };

    let results: Vec<Result<(), String>> = if opts.parallel {
        todo.par_iter().map(run_one).collect()
    } else {
        todo.iter().map(run_one).collect()
    };
    for r in results {
        r?;
    }

    let mut done = ledger
        .into_inner()
        .expect("fleet checkpoint ledger poisoned");
    done.sort_by_key(|e| e.index as usize);
    let mut aggregate = FleetAggregate::new(spec.bins);
    for entry in &done {
        aggregate.merge(&entry.aggregate);
    }
    let attribution = if opts.attribution {
        let mut shards = attr_ledger
            .into_inner()
            .expect("fleet attribution ledger poisoned");
        shards.sort_by_key(|&(idx, _)| idx);
        let mut merged = StepAttribution::default();
        for (_, attr) in &shards {
            merged.merge(attr);
        }
        Some(merged)
    } else {
        None
    };
    Ok(FleetRunResult {
        aggregate,
        shards_done: done.len(),
        shards_total: total,
        shards_resumed: resumed,
        attribution,
    })
}

// ---------------------------------------------------------------------------
// Fleet report and the CI gate
// ---------------------------------------------------------------------------

/// The machine-readable fleet report: configuration echo, fingerprint,
/// percentile summary, and the full aggregate (histograms included) so
/// a baseline refresh needs no re-run.
///
/// `fleet_seed` is carried as `f64` (exact for seeds below 2⁵³, which
/// committed configurations use by convention); the fingerprint string
/// covers the exact `u64` value regardless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Base scenario name.
    pub scenario: String,
    /// Fleet size.
    pub nodes: f64,
    /// Root fleet seed.
    pub fleet_seed: f64,
    /// Cells per shard.
    pub shard_size: f64,
    /// Per-node horizon, seconds.
    pub horizon_s: f64,
    /// [`FleetSpec::fingerprint`] of the producing configuration.
    pub fingerprint: String,
    /// Headline percentile summary (the gated quantities).
    pub summary: FleetSummary,
    /// Full streaming aggregate.
    pub aggregate: FleetAggregate,
    /// Wall-clock seconds the run took (informational, never gated).
    pub elapsed_s: f64,
}

impl FleetReport {
    /// Assembles a report from a spec and its completed aggregate.
    pub fn from_run(spec: &FleetSpec, aggregate: FleetAggregate, elapsed_s: f64) -> Self {
        FleetReport {
            scenario: spec.base.name.to_string(),
            nodes: spec.nodes as f64,
            fleet_seed: spec.fleet_seed as f64,
            shard_size: spec.shard_size as f64,
            horizon_s: spec.base.horizon.get(),
            fingerprint: spec.fingerprint(),
            summary: aggregate.summary(),
            aggregate,
            elapsed_s,
        }
    }
}

/// Per-field tolerances for the fleet CI gate. Relative slack plus an
/// absolute floor per quantity class, so near-zero percentiles (an
/// outage-free fleet, a zero p5) don't demand impossible relative
/// precision.
#[derive(Debug, Clone, Copy)]
pub struct FleetTolerances {
    /// Relative tolerance on every gated field.
    pub rel: f64,
    /// Absolute floor for FoM fields (ops).
    pub fom_floor: f64,
    /// Absolute floor for on-fraction fields.
    pub on_frac_floor: f64,
    /// Absolute floor for outage fields (seconds).
    pub outage_floor_s: f64,
    /// Absolute floor for boot counts.
    pub boots_floor: f64,
}

impl Default for FleetTolerances {
    fn default() -> Self {
        FleetTolerances {
            rel: 0.05,
            fom_floor: 1.0,
            on_frac_floor: 1e-3,
            outage_floor_s: 1.0,
            boots_floor: 0.5,
        }
    }
}

impl FleetTolerances {
    /// Uniformly scales every tolerance (the gate's `[tol-scale]`).
    pub fn scaled(mut self, k: f64) -> Self {
        self.rel *= k;
        self.fom_floor *= k;
        self.on_frac_floor *= k;
        self.outage_floor_s *= k;
        self.boots_floor *= k;
        self
    }
}

fn gate_field(
    violations: &mut Vec<String>,
    name: &str,
    base: f64,
    fresh: f64,
    rel: f64,
    floor: f64,
) {
    let slack = (base.abs() * rel).max(floor);
    if (fresh - base).abs() > slack {
        violations.push(format!(
            "{name}: baseline {base:.6} vs fresh {fresh:.6} (allowed ±{slack:.6})"
        ));
    }
}

/// Diffs a fresh fleet report against a committed baseline.
///
/// A fingerprint mismatch is itself a violation — the gate only means
/// something when both reports ran the *same* fleet configuration.
/// Node counts and every summary percentile are then compared under
/// the per-class tolerances. `elapsed_s` is never gated.
pub fn compare_fleet_reports(
    baseline: &FleetReport,
    fresh: &FleetReport,
    tol: &FleetTolerances,
) -> Vec<String> {
    let mut v = Vec::new();
    if baseline.fingerprint != fresh.fingerprint {
        v.push(format!(
            "fingerprint: baseline {} vs fresh {} — fleet configuration changed \
             (scenario/nodes/seed/sharding/binning); refresh the baseline deliberately",
            baseline.fingerprint, fresh.fingerprint
        ));
        return v;
    }
    let (b, f) = (&baseline.summary, &fresh.summary);
    if b.nodes != f.nodes {
        v.push(format!("nodes: baseline {} vs fresh {}", b.nodes, f.nodes));
    }
    // Poisoned or watchdog-timed-out nodes in the fresh run are
    // unconditional violations: a crashed or wedged cell is never
    // within tolerance of anything.
    for p in &fresh.aggregate.poisoned {
        v.push(format!("node {}: poisoned: {}", p.node, p.message));
    }
    for t in &fresh.aggregate.timed_out {
        v.push(format!(
            "node {}: watchdog timeout after {} engine steps at t={:.0} s",
            t.node, t.engine_steps, t.sim_time_s
        ));
    }
    gate_field(
        &mut v,
        "total_faults",
        b.total_faults,
        f.total_faults,
        tol.rel,
        tol.boots_floor,
    );
    gate_field(
        &mut v,
        "total_trips",
        b.total_trips,
        f.total_trips,
        tol.rel,
        tol.boots_floor,
    );
    gate_field(
        &mut v,
        "total_ops",
        b.total_ops,
        f.total_ops,
        tol.rel,
        tol.fom_floor,
    );
    gate_field(
        &mut v,
        "fom_mean",
        b.fom_mean,
        f.fom_mean,
        tol.rel,
        tol.fom_floor,
    );
    gate_field(&mut v, "fom_p5", b.fom_p5, f.fom_p5, tol.rel, tol.fom_floor);
    gate_field(
        &mut v,
        "fom_p50",
        b.fom_p50,
        f.fom_p50,
        tol.rel,
        tol.fom_floor,
    );
    gate_field(
        &mut v,
        "fom_p95",
        b.fom_p95,
        f.fom_p95,
        tol.rel,
        tol.fom_floor,
    );
    gate_field(
        &mut v,
        "fom_p99",
        b.fom_p99,
        f.fom_p99,
        tol.rel,
        tol.fom_floor,
    );
    gate_field(
        &mut v,
        "on_frac_mean",
        b.on_frac_mean,
        f.on_frac_mean,
        tol.rel,
        tol.on_frac_floor,
    );
    gate_field(
        &mut v,
        "on_frac_p5",
        b.on_frac_p5,
        f.on_frac_p5,
        tol.rel,
        tol.on_frac_floor,
    );
    gate_field(
        &mut v,
        "on_frac_p50",
        b.on_frac_p50,
        f.on_frac_p50,
        tol.rel,
        tol.on_frac_floor,
    );
    gate_field(
        &mut v,
        "outage_p50_s",
        b.outage_p50_s,
        f.outage_p50_s,
        tol.rel,
        tol.outage_floor_s,
    );
    gate_field(
        &mut v,
        "outage_p95_s",
        b.outage_p95_s,
        f.outage_p95_s,
        tol.rel,
        tol.outage_floor_s,
    );
    gate_field(
        &mut v,
        "outage_max_s",
        b.outage_max_s,
        f.outage_max_s,
        tol.rel,
        tol.outage_floor_s,
    );
    gate_field(
        &mut v,
        "boots_mean",
        b.boots_mean,
        f.boots_mean,
        tol.rel,
        tol.boots_floor,
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::find_scenario;

    fn small_spec(nodes: usize, seed: u64) -> FleetSpec {
        let mut base = *find_scenario("rf-sparse-week").expect("registry scenario");
        base.horizon = Seconds::new(1800.0);
        let mut spec = FleetSpec::new(base, nodes, seed);
        spec.shard_size = 4;
        spec.chunk = Seconds::new(300.0);
        spec
    }

    #[test]
    fn fleet_matches_scalar_runs_bitwise() {
        for &(nodes, seed) in &[(3usize, 1u64), (7, 42), (8, 0xFEED)] {
            let spec = small_spec(nodes, seed);
            let fleet = run_fleet(&spec, &FleetRunOptions::default()).expect("fleet run");
            let mut scalar = FleetAggregate::new(spec.bins);
            for shard in 0..spec.shard_count() {
                let (start, end) = spec.shard_range(shard);
                let mut shard_agg = FleetAggregate::new(spec.bins);
                for i in start..end {
                    let sc = spec.node_scenario(i);
                    let out = sc.run();
                    shard_agg.record(&NodeStats::from_metrics(&sc, &out.metrics));
                }
                scalar.merge(&shard_agg);
            }
            assert_eq!(
                fleet.aggregate, scalar,
                "fleet aggregate diverged from scalar runs (nodes={nodes}, seed={seed})"
            );
        }
    }

    #[test]
    fn node_salting_decorrelates_nodes() {
        let spec = small_spec(6, 7);
        let fleet = run_fleet(&spec, &FleetRunOptions::default()).expect("fleet run");
        // Six salted nodes of a salt-sensitive scenario should not all
        // collapse onto one FoM value.
        assert!(spec.base.seed_salt_matters());
        assert!(fleet.aggregate.fom.max > fleet.aggregate.fom.min);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join("react-fleet-ckpt-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&path);

        let spec = small_spec(10, 99);
        assert!(spec.shard_count() >= 3, "test needs multiple shards");

        let uninterrupted = run_fleet(&spec, &FleetRunOptions::default()).expect("full run");

        // Interrupt after 2 shards, then resume from the checkpoint.
        let partial_opts = FleetRunOptions {
            checkpoint: Some(path.clone()),
            max_shards: Some(2),
            parallel: false,
            ..Default::default()
        };
        let partial = run_fleet(&spec, &partial_opts).expect("partial run");
        assert!(!partial.complete());
        assert_eq!(partial.shards_done, 2);

        let resume_opts = FleetRunOptions {
            checkpoint: Some(path.clone()),
            max_shards: None,
            parallel: false,
            ..Default::default()
        };
        let resumed = run_fleet(&spec, &resume_opts).expect("resumed run");
        assert!(resumed.complete());
        assert_eq!(resumed.shards_resumed, 2);
        assert_eq!(
            resumed.aggregate, uninterrupted.aggregate,
            "resumed aggregate must be bit-identical to the uninterrupted run"
        );

        // A different config must refuse the stale checkpoint.
        let other = small_spec(10, 100);
        assert!(run_fleet(&other, &resume_opts).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn histogram_quantiles_bracket_min_max() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5] {
            h.record(v);
        }
        assert_eq!(h.count, 10);
        assert!(h.quantile(0.0) >= h.min && h.quantile(1.0) <= h.max);
        assert!(h.quantile(0.5) > h.quantile(0.1));
        // Out-of-range samples land in the overflow counters.
        h.record(-1.0);
        h.record(25.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 25.0);
    }

    #[test]
    fn fleet_gate_flags_drift_and_fingerprint_mismatch() {
        let spec = small_spec(6, 11);
        let run = run_fleet(&spec, &FleetRunOptions::default()).expect("fleet run");
        let baseline = FleetReport::from_run(&spec, run.aggregate.clone(), 1.0);
        let tol = FleetTolerances::default();

        // Identical report (different wall-clock) gates clean.
        let fresh = FleetReport::from_run(&spec, run.aggregate.clone(), 99.0);
        assert!(compare_fleet_reports(&baseline, &fresh, &tol).is_empty());

        // Drift beyond tolerance is flagged by field name.
        let mut drifted = fresh.clone();
        drifted.summary.fom_mean *= 1.5;
        drifted.summary.fom_mean += 10.0;
        let violations = compare_fleet_reports(&baseline, &drifted, &tol);
        assert!(violations.iter().any(|v| v.starts_with("fom_mean")));

        // A different configuration is a fingerprint violation, and
        // field diffs are suppressed (they would be meaningless).
        let other = small_spec(6, 12);
        let run2 = run_fleet(&other, &FleetRunOptions::default()).expect("fleet run");
        let mismatched = FleetReport::from_run(&other, run2.aggregate, 1.0);
        let violations = compare_fleet_reports(&baseline, &mismatched, &tol);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("fingerprint"));

        // Report JSON round-trips exactly.
        let text = serde_json::to_string(&baseline).expect("serialize");
        let back: FleetReport = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, baseline);
    }

    #[test]
    fn checkpoint_round_trips_exactly_through_json() {
        let mut agg = FleetAggregate::new(FleetBins::default_for(Seconds::new(3600.0)));
        agg.record(&NodeStats {
            fom: 123.456789012345,
            on_frac: 0.9871234,
            outage_s: 17.25,
            boots: 3.0,
            ops: 123.0,
            faults: 2.0,
            trips: 1.0,
        });
        let ckpt = FleetCheckpoint {
            fingerprint: "deadbeefdeadbeef".to_string(),
            shards: vec![ShardEntry {
                index: 0.0,
                aggregate: agg,
            }],
        };
        let text = serde_json::to_string(&ckpt).expect("serialize");
        let back: FleetCheckpoint = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, ckpt);
    }
}
