//! Experiment definitions and the trace × buffer matrix runner.

use std::sync::Arc;

use rayon::prelude::*;
use react_buffers::BufferKind;
use react_harvest::{Converter, PowerReplay};
use react_traces::{paper_trace, PaperTrace, PowerTrace};
use react_units::Seconds;
use react_workloads::{
    DataEncryption, EventSchedule, PacketForward, RadioTransmit, SenseCompute, Workload,
};

use crate::calib;
use crate::metrics::RunOutcome;
use crate::sim::{KernelMode, Simulator};

/// The four benchmarks of §4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// DE: continuous AES-128.
    DataEncryption,
    /// SC: periodic microphone sensing.
    SenseCompute,
    /// RT: atomic radio bursts.
    RadioTransmit,
    /// PF: receive-and-forward.
    PacketForward,
}

impl WorkloadKind {
    /// All four benchmarks in the paper's order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::DataEncryption,
        WorkloadKind::SenseCompute,
        WorkloadKind::RadioTransmit,
        WorkloadKind::PacketForward,
    ];

    /// Table-style label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::DataEncryption => "DE",
            WorkloadKind::SenseCompute => "SC",
            WorkloadKind::RadioTransmit => "RT",
            WorkloadKind::PacketForward => "PF",
        }
    }

    /// Instantiates the workload for a given trace. PF derives its
    /// packet-arrival schedule from the trace identity (rate and seed
    /// fixed per trace, as the paper's external event generator is).
    pub fn build(self, trace: &PowerTrace, identity: Option<PaperTrace>) -> Box<dyn Workload> {
        match self {
            WorkloadKind::DataEncryption => Box::new(DataEncryption::new()),
            WorkloadKind::SenseCompute => {
                // Deadlines run through trace + drain time.
                let horizon = trace.duration() + calib::MAX_DRAIN_TIME;
                Box::new(SenseCompute::new(horizon))
            }
            WorkloadKind::RadioTransmit => Box::new(RadioTransmit::new()),
            WorkloadKind::PacketForward => {
                let (rate, seed) = match identity {
                    Some(p) => (calib::pf_arrival_rate(p), calib::pf_arrival_seed(p)),
                    None => (0.05, 0xAF_2024_FFFF),
                };
                let arrivals = EventSchedule::poisson(rate, trace.duration(), seed);
                Box::new(PacketForward::new(arrivals))
            }
        }
    }

    /// Instantiates the workload for a streaming environment replayed
    /// for `horizon` of wall-clock time (no trace to derive schedules
    /// from): SC deadlines and PF Poisson arrivals span the horizon,
    /// with PF's arrival stream drawn from `seed`.
    pub fn build_streaming(self, horizon: Seconds, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::DataEncryption => Box::new(DataEncryption::new()),
            WorkloadKind::SenseCompute => {
                Box::new(SenseCompute::new(horizon + calib::MAX_DRAIN_TIME))
            }
            WorkloadKind::RadioTransmit => Box::new(RadioTransmit::new()),
            WorkloadKind::PacketForward => {
                let arrivals = EventSchedule::poisson(0.05, horizon, seed);
                Box::new(PacketForward::new(arrivals))
            }
        }
    }
}

/// A single (buffer, workload) experiment, run against any trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Experiment {
    /// Buffer design under test.
    pub buffer: BufferKind,
    /// Benchmark application.
    pub workload: WorkloadKind,
}

impl Experiment {
    /// Creates the experiment description.
    pub fn new(buffer: BufferKind, workload: WorkloadKind) -> Self {
        Self { buffer, workload }
    }

    /// Runs against a trace with default settings (1 ms fine steps,
    /// adaptive kernel, ideal converter — Table 3 powers are already at
    /// the buffer rail).
    pub fn run(&self, trace: &PowerTrace) -> RunOutcome {
        self.run_configured(trace, None, calib::DEFAULT_DT, None)
    }

    /// Runs against one of the paper's library traces (PF arrival rates
    /// keyed to the trace identity).
    pub fn run_paper_trace(&self, which: PaperTrace) -> RunOutcome {
        let trace = paper_trace(which);
        self.run_configured(&trace, Some(which), calib::DEFAULT_DT, None)
    }

    /// Fully configured run with the default (adaptive) kernel.
    pub fn run_configured(
        &self,
        trace: &PowerTrace,
        identity: Option<PaperTrace>,
        dt: Seconds,
        probe: Option<Seconds>,
    ) -> RunOutcome {
        self.run_shared(
            &Arc::new(trace.clone()),
            identity,
            dt,
            probe,
            KernelMode::Adaptive,
        )
    }

    /// Fully configured run on a shared trace — no per-run trace clone,
    /// explicit kernel. The parallel matrix and sweep runners go through
    /// here.
    pub fn run_shared(
        &self,
        trace: &Arc<PowerTrace>,
        identity: Option<PaperTrace>,
        dt: Seconds,
        probe: Option<Seconds>,
        kernel: KernelMode,
    ) -> RunOutcome {
        let replay = PowerReplay::new(Arc::clone(trace), Converter::ideal());
        let workload = self.workload.build(trace, identity);
        let mut sim = Simulator::new(replay, self.buffer.build(), workload)
            .with_timestep(dt)
            .with_kernel(kernel);
        if let Some(interval) = probe {
            sim = sim.with_probe(interval);
        }
        sim.run()
    }
}

/// One cell of a results matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Which buffer produced the result.
    pub buffer: BufferKind,
    /// The run outcome.
    pub outcome: RunOutcome,
}

/// One row (a trace) of a results matrix.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// The trace evaluated.
    pub trace: PaperTrace,
    /// Results per buffer, in [`BufferKind::PAPER_COLUMNS`] order unless
    /// custom columns were requested.
    pub cells: Vec<MatrixCell>,
}

/// The full trace × buffer matrix for one workload — the shape of
/// Tables 2, 4, and 5.
#[derive(Clone, Debug)]
pub struct ExperimentMatrix {
    /// Benchmark the matrix covers.
    pub workload: WorkloadKind,
    /// One row per trace.
    pub rows: Vec<MatrixRow>,
}

impl ExperimentMatrix {
    /// Runs the workload across all five evaluation traces and the five
    /// paper buffer columns, every (trace, buffer) cell in parallel.
    pub fn run(workload: WorkloadKind) -> Self {
        Self::run_with(
            workload,
            &PaperTrace::EVALUATION,
            &BufferKind::PAPER_COLUMNS,
            calib::DEFAULT_DT,
        )
    }

    /// Runs a custom trace/buffer selection with the default parallel
    /// adaptive engine.
    pub fn run_with(
        workload: WorkloadKind,
        traces: &[PaperTrace],
        buffers: &[BufferKind],
        dt: Seconds,
    ) -> Self {
        Self::run_configured(workload, traces, buffers, dt, KernelMode::Adaptive, true)
    }

    /// The serial fixed-`dt` baseline: every cell runs the reference
    /// kernel on one thread. Kept runnable so the `engine` bench (and
    /// anyone suspicious of the fast path) can compare wall-clock and
    /// results directly.
    pub fn run_serial_reference(
        workload: WorkloadKind,
        traces: &[PaperTrace],
        buffers: &[BufferKind],
        dt: Seconds,
    ) -> Self {
        Self::run_configured(workload, traces, buffers, dt, KernelMode::FixedDt, false)
    }

    /// Fully configured matrix run. Each trace is synthesized once and
    /// shared through an [`Arc`] by every cell that replays it; the
    /// trace × buffer product fans out as one flat parallel work list so
    /// slow cells (long solar traces, REACT's fine-step controller)
    /// don't serialize behind per-trace barriers.
    pub fn run_configured(
        workload: WorkloadKind,
        traces: &[PaperTrace],
        buffers: &[BufferKind],
        dt: Seconds,
        kernel: KernelMode,
        parallel: bool,
    ) -> Self {
        let shared: Vec<(PaperTrace, Arc<PowerTrace>)> = traces
            .iter()
            .map(|&which| (which, Arc::new(paper_trace(which))))
            .collect();
        let jobs: Vec<(usize, BufferKind)> = (0..shared.len())
            .flat_map(|i| buffers.iter().map(move |&b| (i, b)))
            .collect();
        let run_cell = |&(i, buffer): &(usize, BufferKind)| {
            let (which, ref trace) = shared[i];
            MatrixCell {
                buffer,
                outcome: Experiment::new(buffer, workload).run_shared(
                    trace,
                    Some(which),
                    dt,
                    None,
                    kernel,
                ),
            }
        };
        let cells: Vec<MatrixCell> = if parallel {
            jobs.par_iter().map(run_cell).collect()
        } else {
            jobs.iter().map(run_cell).collect()
        };
        let mut cells = cells.into_iter();
        let rows = shared
            .iter()
            .map(|&(which, _)| MatrixRow {
                trace: which,
                cells: cells.by_ref().take(buffers.len()).collect(),
            })
            .collect();
        Self { workload, rows }
    }

    /// Looks up a cell.
    pub fn cell(&self, trace: PaperTrace, buffer: BufferKind) -> Option<&MatrixCell> {
        self.rows
            .iter()
            .find(|r| r.trace == trace)?
            .cells
            .iter()
            .find(|c| c.buffer == buffer)
    }

    /// Mean primary-ops count per buffer across traces (the tables'
    /// "Mean" row).
    pub fn mean_ops(&self) -> Vec<(BufferKind, f64)> {
        let Some(first) = self.rows.first() else {
            return Vec::new();
        };
        first
            .cells
            .iter()
            .map(|c| c.buffer)
            .map(|buffer| {
                let total: f64 = self
                    .rows
                    .iter()
                    .filter_map(|r| r.cells.iter().find(|c| c.buffer == buffer))
                    .map(|c| c.outcome.metrics.ops_completed as f64)
                    .sum();
                (buffer, total / self.rows.len() as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_units::Watts;

    #[test]
    fn workload_kinds_have_labels() {
        assert_eq!(WorkloadKind::DataEncryption.label(), "DE");
        assert_eq!(WorkloadKind::PacketForward.label(), "PF");
        assert_eq!(WorkloadKind::ALL.len(), 4);
    }

    #[test]
    fn build_constructs_each_workload() {
        let trace = PowerTrace::constant(
            "t",
            Watts::from_milli(1.0),
            Seconds::new(10.0),
            Seconds::new(0.1),
        );
        for kind in WorkloadKind::ALL {
            let w = kind.build(&trace, Some(PaperTrace::RfCart));
            assert_eq!(w.ops_completed(), 0);
            assert_eq!(w.name(), kind.label());
        }
    }

    #[test]
    fn experiment_runs_on_short_trace() {
        let trace = PowerTrace::constant(
            "t",
            Watts::from_milli(10.0),
            Seconds::new(20.0),
            Seconds::new(0.1),
        );
        let out =
            Experiment::new(BufferKind::Static770uF, WorkloadKind::DataEncryption).run(&trace);
        assert!(out.metrics.ops_completed > 0);
    }

    #[test]
    fn matrix_runs_small_selection() {
        // Coarse timestep keeps this test quick; correctness of results
        // is covered elsewhere.
        let m = ExperimentMatrix::run_with(
            WorkloadKind::DataEncryption,
            &[PaperTrace::RfCart],
            &[BufferKind::Static770uF, BufferKind::React],
            Seconds::new(0.002),
        );
        assert_eq!(m.rows.len(), 1);
        assert_eq!(m.rows[0].cells.len(), 2);
        assert!(m.cell(PaperTrace::RfCart, BufferKind::React).is_some());
        assert!(m.cell(PaperTrace::RfCart, BufferKind::Morphy).is_none());
        let means = m.mean_ops();
        assert_eq!(means.len(), 2);
        assert!(means.iter().all(|(_, v)| *v > 0.0));
    }
}
