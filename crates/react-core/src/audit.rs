//! Online invariant auditing: cross-checking committed coarse strides.
//!
//! The adaptive kernel's closed forms integrate with the buffer's
//! *believed* (datasheet) component values. Under hardware drift
//! ([`react_circuit::FaultPlan`]) those values go stale, and every
//! coarse stride silently books physics that no longer happen. The
//! [`InvariantAuditor`] rides the stride-commit seam and checks each
//! committed stride against invariants the honest fine integrator
//! maintains by construction:
//!
//! * **Energy-conservation ledger residual** — per-stride, the booked
//!   `Δdelivered` must equal the booked losses plus the observed change
//!   in stored energy. The closed forms book `delivered := ΔE + losses`
//!   so benign strides hold this to rounding dust; a capacitance-fade
//!   fault leaves a `½·(C_believed − C_actual)·Δ(v²)` residual.
//! * **Voltage-bound and dwell sanity** — the committed rail voltage is
//!   finite and inside physical bounds; the stride advanced a positive
//!   span no longer than its window.
//! * **Harvest bound** — energy booked as harvested over the stride
//!   cannot exceed the rail power times the span.
//! * **Sampled leakage shadow check** — a self-consistent believed
//!   model hides leakage growth from the residual (the books balance
//!   around the wrong leakage), so the auditor compares the believed
//!   leakage booking against a trapezoid estimate from the buffer's
//!   *actual*-law [`leakage probes`](react_buffers::EnergyBuffer::leakage_probe)
//!   at the stride endpoints, gated to strides with a small relative
//!   voltage change where the two-point quadrature is trustworthy.
//!
//! On divergence the engine degrades the faulted regime's fast path to
//! fine stepping for the rest of the run (the fine integrator always
//! uses the live, drifted spec) — the same graceful-degradation posture
//! as the NaN invariant guard, surfaced through
//! [`FallbackReason::AuditDegraded`](react_telemetry::FallbackReason)
//! and the `audit_*` counters in [`RunMetrics`](crate::RunMetrics).

use react_buffers::EnergyBuffer;
use react_circuit::EnergyLedger;
use react_units::{Joules, Seconds, Volts, Watts};

/// Tolerances and knobs for the [`InvariantAuditor`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditConfig {
    /// Absolute slack on the per-stride ledger residual, in joules.
    /// Benign strides hold the residual to floating-point dust, so this
    /// only needs to cover rounding noise.
    pub residual_abs: Joules,
    /// Relative slack on the ledger residual, scaled by the run's
    /// cumulative energy magnitude.
    pub residual_rel: f64,
    /// Absolute slack on the harvest bound, in joules.
    pub harvest_abs: Joules,
    /// Relative slack on the harvest bound.
    pub harvest_rel: f64,
    /// Absolute floor under which the leakage shadow check never trips
    /// (sub-`leak_abs` bookings are numerically indistinct), in joules.
    pub leak_abs: Joules,
    /// Relative mismatch between the believed leakage booking and the
    /// actual-law trapezoid estimate that trips the shadow check. Loose
    /// by design: the two-point quadrature is approximate, and real
    /// drift grows leakage by integer factors.
    pub leak_rel: f64,
    /// Largest relative voltage change across a stride for which the
    /// leakage shadow check is attempted (beyond it the endpoint
    /// trapezoid is not a credible quadrature).
    pub leak_dv_rel: f64,
    /// Any committed rail voltage above this is a violation outright.
    pub v_max: Volts,
    /// Stride-length clamp while auditing: bounds how far one wrong
    /// closed-form stride can run before its commit is cross-checked,
    /// i.e. the worst-case detection latency in simulated seconds.
    pub max_stride: Seconds,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            residual_abs: Joules::new(1e-9),
            residual_rel: 1e-9,
            harvest_abs: Joules::new(1e-9),
            harvest_rel: 1e-6,
            leak_abs: Joules::new(1e-5),
            leak_rel: 0.35,
            leak_dv_rel: 0.1,
            v_max: Volts::new(6.0),
            max_stride: Seconds::new(300.0),
        }
    }
}

/// Pre-stride state captured for the post-commit cross-check.
#[derive(Clone, Copy, Debug)]
pub struct AuditSnapshot {
    ledger: EnergyLedger,
    stored: Joules,
    voltage: Volts,
    leak_power: Option<Watts>,
}

impl AuditSnapshot {
    /// Captures the buffer's books, stored energy, rail voltage, and
    /// actual-law leakage power immediately before a stride.
    pub fn capture<B: EnergyBuffer + ?Sized>(buffer: &B) -> Self {
        Self {
            ledger: *buffer.ledger(),
            stored: buffer.stored_energy(),
            voltage: buffer.rail_voltage(),
            leak_power: buffer.leakage_probe(),
        }
    }
}

/// The online stride auditor: counts checks and trips; the engine owns
/// the per-regime degradation flags.
#[derive(Clone, Debug)]
pub struct InvariantAuditor {
    config: AuditConfig,
    checks: u64,
    trips: u64,
}

impl InvariantAuditor {
    /// Creates an auditor with the given tolerances.
    pub fn new(config: AuditConfig) -> Self {
        Self {
            config,
            checks: 0,
            trips: 0,
        }
    }

    /// The stride-length clamp the engine applies while auditing.
    pub fn max_stride(&self) -> Seconds {
        self.config.max_stride
    }

    /// Strides cross-checked so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Divergences detected so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Cross-checks one committed stride against the pre-stride
    /// snapshot. Returns `true` when the stride violated an invariant
    /// (the caller degrades the regime's fast path).
    pub fn check<B: EnergyBuffer + ?Sized>(
        &mut self,
        snap: &AuditSnapshot,
        buffer: &B,
        p_rail: Watts,
        advanced: Seconds,
        window: Seconds,
        dt: Seconds,
    ) -> bool {
        self.checks += 1;
        let tripped = self.violates(snap, buffer, p_rail, advanced, window, dt);
        if tripped {
            self.trips += 1;
        }
        tripped
    }

    fn violates<B: EnergyBuffer + ?Sized>(
        &self,
        snap: &AuditSnapshot,
        buffer: &B,
        p_rail: Watts,
        advanced: Seconds,
        window: Seconds,
        dt: Seconds,
    ) -> bool {
        let c = &self.config;
        let stored = buffer.stored_energy();
        let v = buffer.rail_voltage();

        // Voltage-bound and finiteness sanity.
        if !v.get().is_finite() || !stored.get().is_finite() {
            return true;
        }
        if v.get() < -1e-9 || v > c.v_max || stored.get() < -1e-9 {
            return true;
        }

        // Dwell sanity: a committed stride advanced a positive span no
        // longer than the window it was given (plus one quantization
        // step for grid round-up).
        if !advanced.get().is_finite()
            || advanced.get() <= 0.0
            || advanced.get() > window.get() + dt.get() + 1e-9
        {
            return true;
        }

        let after = buffer.ledger();
        let d = |a: Joules, b: Joules| a.get() - b.get();
        let delta_delivered = d(after.delivered, snap.ledger.delivered);
        let delta_leaked = d(after.leaked, snap.ledger.leaked);
        let losses = delta_leaked
            + d(after.switch_loss, snap.ledger.switch_loss)
            + d(after.diode_loss, snap.ledger.diode_loss)
            + d(after.load_consumed, snap.ledger.load_consumed)
            + d(after.overhead_consumed, snap.ledger.overhead_consumed);
        let delta_stored = stored.get() - snap.stored.get();

        // Energy-conservation ledger residual, against a cumulative
        // scale so week-long runs keep ulp headroom.
        let residual = delta_delivered - losses - delta_stored;
        let scale = after
            .delivered
            .get()
            .abs()
            .max(stored.get().abs())
            .max(snap.stored.get().abs());
        if residual.abs() > c.residual_abs.get() + c.residual_rel * scale {
            return true;
        }

        // Harvest bound: the books cannot create rail energy.
        let delta_harvested = d(after.harvested, snap.ledger.harvested);
        let cap = p_rail.get().max(0.0) * advanced.get();
        if delta_harvested > cap + c.harvest_abs.get() + c.harvest_rel * cap {
            return true;
        }

        // Sampled leakage shadow check: believed booking vs the
        // actual-law trapezoid, only where the quadrature is credible.
        if let (Some(p0), Some(p1)) = (snap.leak_power, buffer.leakage_probe()) {
            let dv = (v.get() - snap.voltage.get()).abs();
            if dv <= c.leak_dv_rel * snap.voltage.get().abs().max(0.1) {
                let est = 0.5 * (p0.get() + p1.get()) * advanced.get();
                let err = (delta_leaked - est).abs();
                if err > c.leak_abs.get() + c.leak_rel * est.abs().max(delta_leaked.abs()) {
                    return true;
                }
            }
        }

        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_buffers::StaticBuffer;
    use react_circuit::FaultKind;

    fn charged_10mf(v: f64) -> StaticBuffer {
        let mut b = StaticBuffer::static_10mf();
        b.set_voltage(Volts::new(v));
        b
    }

    fn stride(b: &mut StaticBuffer, p_mw: f64, span_s: f64) -> Seconds {
        b.idle_advance(
            Watts::from_milli(p_mw),
            Seconds::new(span_s),
            Volts::new(3.3),
            Seconds::from_milli(1.0),
        )
    }

    #[test]
    fn benign_strides_never_trip() {
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let mut b = charged_10mf(1.0);
        for _ in 0..20 {
            let snap = AuditSnapshot::capture(&b);
            let advanced = stride(&mut b, 2.0, 60.0);
            if advanced.get() == 0.0 {
                break;
            }
            assert!(!aud.check(
                &snap,
                &b,
                Watts::from_milli(2.0),
                advanced,
                Seconds::new(60.0),
                Seconds::from_milli(1.0),
            ));
        }
        assert!(aud.checks() > 0);
        assert_eq!(aud.trips(), 0);
    }

    #[test]
    fn capacitance_fade_trips_the_ledger_residual() {
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let mut b = charged_10mf(1.5);
        assert!(b.apply_fault(FaultKind::CapacitanceFade { factor: 0.7 }));
        let snap = AuditSnapshot::capture(&b);
        let advanced = stride(&mut b, 2.0, 60.0);
        assert!(advanced.get() > 0.0);
        assert!(aud.check(
            &snap,
            &b,
            Watts::from_milli(2.0),
            advanced,
            Seconds::new(60.0),
            Seconds::from_milli(1.0),
        ));
        assert_eq!(aud.trips(), 1);
    }

    #[test]
    fn leakage_growth_trips_the_shadow_check() {
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        // Pure leak decay, with the stride sized off the datasheet
        // leakage power so the booked energy clears the absolute floor
        // while the voltage barely moves (the shadow check's gated
        // regime).
        let mut b = charged_10mf(3.0);
        let p_datasheet = b.leakage_probe().expect("statics probe").get();
        assert!(b.apply_fault(FaultKind::LeakageGrowth { factor: 8.0 }));
        let span = (5e-4 / p_datasheet.max(1e-12)).clamp(10.0, 3000.0);
        let snap = AuditSnapshot::capture(&b);
        let advanced = stride(&mut b, 0.0, span);
        assert!(advanced.get() > 0.0);
        assert!(aud.check(
            &snap,
            &b,
            Watts::ZERO,
            advanced,
            Seconds::new(span),
            Seconds::from_milli(1.0),
        ));
    }

    #[test]
    fn dwell_overrun_trips() {
        let mut aud = InvariantAuditor::new(AuditConfig::default());
        let mut b = charged_10mf(1.0);
        let snap = AuditSnapshot::capture(&b);
        let advanced = stride(&mut b, 2.0, 60.0);
        // Claim the window was shorter than the committed span.
        assert!(aud.check(
            &snap,
            &b,
            Watts::from_milli(2.0),
            advanced,
            Seconds::new(advanced.get() / 2.0),
            Seconds::from_milli(1.0),
        ));
    }
}
