//! Calibration constants — the single source of truth DESIGN.md points
//! at.
//!
//! Everything tunable in the reproduction lives here or is re-exported
//! here, with provenance:
//!
//! | Constant | Value | Source |
//! |----------|-------|--------|
//! | MCU active current | 1.5 mA | paper §2.1 "representative deployment" |
//! | Enable / brown-out | 3.3 V / 1.8 V | paper §4 |
//! | Rail clamp | 3.6 V | paper Fig. 6 clipping level |
//! | V_high / V_low | 3.5 V / 1.9 V | paper §5.1 / §3.3.5 worked example |
//! | Poll rate | 10 Hz | paper §5.1 |
//! | REACT HW overhead | ≈68 µW (13.6 µW/bank) | paper §5.1 |
//! | REACT SW overhead | 1.8 % CPU | paper §5.1 |
//! | Op costs | see `react_workloads::costs` | datasheets + §4.2 |

use react_traces::PaperTrace;
use react_units::{Seconds, Volts};

/// Default simulation timestep (1 ms).
pub const DEFAULT_DT: Seconds = Seconds::new(0.001);

/// Power-gate enable voltage (§4).
pub const ENABLE_VOLTAGE: Volts = Volts::new(3.3);

/// Power-gate brown-out voltage (§4).
pub const BROWNOUT_VOLTAGE: Volts = Volts::new(1.8);

/// Fraction of CPU time REACT's 10 Hz software poller consumes (§5.1).
pub const REACT_SOFTWARE_OVERHEAD: f64 = 0.018;

/// How long past the end of the trace a simulation may run while the
/// system drains its stored energy (§5: "we let the system run until it
/// drains the buffer capacitor").
pub const MAX_DRAIN_TIME: Seconds = Seconds::new(7200.0);

/// Shortest MCU-off stretch the adaptive kernel hands to the analytic
/// idle integrator; anything shorter runs through the fine-step path,
/// where per-stride bookkeeping would cost more than it saves. Four
/// default timesteps is well under every trace's 100 ms sample window.
pub const MIN_COARSE_STRIDE: Seconds = Seconds::new(0.004);

/// Packet-arrival rate (packets/second) for the PF benchmark on each
/// evaluation trace. Derived from the packet counts in the paper's
/// Table 5 so the offered load matches the original experiment's scale.
pub fn pf_arrival_rate(trace: PaperTrace) -> f64 {
    match trace {
        PaperTrace::RfCart => 0.16,
        PaperTrace::RfObstructed => 0.013,
        PaperTrace::RfMobile => 0.10,
        PaperTrace::SolarCampus => 0.080,
        PaperTrace::SolarCommute => 0.014,
        PaperTrace::Pedestrian | PaperTrace::SolarNight => 0.05,
    }
}

/// Seed for each trace's PF arrival schedule (fixed for
/// reproducibility).
pub fn pf_arrival_seed(trace: PaperTrace) -> u64 {
    0xAF_2024_0000 + trace as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the invariants
    fn constants_are_consistent() {
        assert!(BROWNOUT_VOLTAGE < ENABLE_VOLTAGE);
        assert!((DEFAULT_DT.to_milli() - 1.0).abs() < 1e-12);
        assert!(REACT_SOFTWARE_OVERHEAD > 0.0 && REACT_SOFTWARE_OVERHEAD < 0.1);
    }

    #[test]
    fn pf_rates_track_table5_ordering() {
        // The cart trace sees the most packets, the obstructed the
        // fewest — matching Table 5's offered load.
        assert!(pf_arrival_rate(PaperTrace::RfCart) > pf_arrival_rate(PaperTrace::RfMobile));
        assert!(
            pf_arrival_rate(PaperTrace::RfObstructed) < pf_arrival_rate(PaperTrace::SolarCampus)
        );
    }

    #[test]
    fn pf_seeds_are_distinct() {
        let mut seeds: Vec<u64> = PaperTrace::EVALUATION
            .iter()
            .map(|&t| pf_arrival_seed(t))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5);
    }
}
