//! The simulation engine: harvester → buffer → gate → MCU → workload.
//!
//! Two kernels share one accounting path:
//!
//! * [`KernelMode::FixedDt`] — the reference loop: every run advances in
//!   uniform `dt` steps (1 ms by default). Simple, slow, and the ground
//!   truth the adaptive kernel is validated against.
//! * [`KernelMode::Adaptive`] (default) — while the power gate is open
//!   and the MCU is off, nothing in the system needs millisecond
//!   resolution: the buffer just integrates harvested charge. The kernel
//!   hands whole zero-order-hold trace windows to
//!   [`EnergyBuffer::idle_advance`], which static buffers solve in
//!   closed form (stepping directly to the predicted enable-voltage
//!   crossing, quantized back onto the `dt` grid), collapsing ~10⁵-step
//!   charge phases into a handful of strides. The moment the MCU runs —
//!   or a buffer has no closed form — the kernel drops back to fine
//!   `dt` steps, so workload semantics are bit-identical.
//!
//! The engine is generic over the buffer and workload
//! (`Simulator<B, W>`), monomorphizing the hot loop for concrete types;
//! the `Box<dyn …>` constructors used by `BufferKind::build` and
//! `WorkloadKind::build` still work through forwarding impls and default
//! type parameters.

use react_buffers::defense::{AttackDetector, DefenseConfig};
use react_buffers::EnergyBuffer;
use react_circuit::{FaultKind, FaultPlan};
use react_harvest::{PowerReplay, PowerSource, TraceSource, VictimEvent};
use react_mcu::{Mcu, McuSpec, PowerGate, PowerMode};
use react_telemetry::{
    EventKind, FallbackReason, NullRecorder, Recorder, Regime, SimEvent, StrideKind,
};
use react_units::{Amps, Seconds, Volts};
use react_workloads::{LoadDemand, WakeHint, Workload, WorkloadEnv};

use crate::audit::{AuditConfig, AuditSnapshot, InvariantAuditor};
use crate::calib;
use crate::metrics::{RunMetrics, RunOutcome, VoltageSample};

/// A run that cannot even start — the configuration is unsatisfiable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The power source is unbounded and no harvest horizon was set:
    /// the run would never terminate. Fix with
    /// [`Simulator::with_horizon`].
    UnboundedSource,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnboundedSource => {
                write!(f, "unbounded power source: set Simulator::with_horizon")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Peripheral draw at or above this reads as "the radio is keyed" to
/// the victim-event feedback channel (the RF workloads' radio draws
/// are 6–18 mA; sensor bias currents sit well below 1 mA).
const RADIO_SENSE_CURRENT: Amps = Amps::new(1.0e-3);

/// Which stepping strategy [`Simulator::run`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Uniform fixed-`dt` stepping (the validation reference).
    FixedDt,
    /// Analytic coarse strides while the system is off, fine `dt` steps
    /// while the MCU runs or near gate transitions.
    #[default]
    Adaptive,
}

/// A configured simulation: every testbed component from §4 of the
/// paper, assembled.
///
/// Generic over the power source as well as buffer and workload: the
/// default [`TraceSource`] replays a recorded trace exactly as before,
/// while streaming `react-env` sources run unbounded environments —
/// those need an explicit [`Simulator::with_horizon`].
pub struct Simulator<
    B = Box<dyn EnergyBuffer>,
    W = Box<dyn Workload>,
    S = TraceSource,
    R = NullRecorder,
> {
    replay: PowerReplay<S>,
    buffer: B,
    mcu: Mcu,
    gate: PowerGate,
    workload: W,
    dt: Seconds,
    kernel: KernelMode,
    probe_interval: Option<Seconds>,
    max_drain: Seconds,
    /// Explicit harvest horizon (plays the role of the trace end for
    /// unbounded sources; also truncates bounded ones).
    horizon: Option<Seconds>,
    /// Fraction of CPU time the buffer's on-MCU software component
    /// steals (REACT's 10 Hz poller, §5.1). Zero for static buffers and
    /// externally-controlled Morphy.
    software_overhead: f64,
    /// Whether victim events (boots, brown-outs, radio spans, buffer
    /// reconfigurations) are forwarded to the power source's feedback
    /// channel. Off by default: benign sources ignore the events, so
    /// only adversarial scenarios pay for the emission.
    feedback: bool,
    /// Attack-detection defense; `None` runs undefended.
    defense: Option<DefenseConfig>,
    /// Scheduled hardware-drift faults; empty by default (healthy run).
    faults: FaultPlan,
    /// Invariant-auditor tolerances; `None` runs unaudited.
    audit: Option<AuditConfig>,
    /// Telemetry sink. [`NullRecorder`] by default, in which case every
    /// instrumentation branch in the engine compiles away.
    recorder: R,
}

impl<B: EnergyBuffer, W: Workload, S: PowerSource + Clone> Simulator<B, W, S> {
    /// Builds a simulator with paper-default gate thresholds, MCU spec,
    /// timestep, and drain allowance.
    pub fn new(replay: PowerReplay<S>, buffer: B, workload: W) -> Self {
        let software_overhead = if buffer.name() == "REACT" {
            calib::REACT_SOFTWARE_OVERHEAD
        } else {
            0.0
        };
        Self {
            replay,
            buffer,
            mcu: Mcu::new(McuSpec::msp430fr5994()),
            gate: PowerGate::new(calib::ENABLE_VOLTAGE, calib::BROWNOUT_VOLTAGE),
            workload,
            dt: calib::DEFAULT_DT,
            kernel: KernelMode::default(),
            probe_interval: None,
            max_drain: calib::MAX_DRAIN_TIME,
            horizon: None,
            software_overhead,
            feedback: false,
            defense: None,
            faults: FaultPlan::empty(),
            audit: None,
            recorder: NullRecorder,
        }
    }
}

impl<B: EnergyBuffer, W: Workload, S: PowerSource + Clone, R: Recorder> Simulator<B, W, S, R> {
    /// Replaces the telemetry recorder (changing the simulator's
    /// recorder type): `with_recorder(RingRecorder::default())` turns
    /// event capture on, `with_recorder(StepAttribution::default())`
    /// profiles where the engine steps go. Recording never changes
    /// simulation results — the telemetry suite pins bit-identity
    /// against [`NullRecorder`] runs.
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> Simulator<B, W, S, R2> {
        Simulator {
            replay: self.replay,
            buffer: self.buffer,
            mcu: self.mcu,
            gate: self.gate,
            workload: self.workload,
            dt: self.dt,
            kernel: self.kernel,
            probe_interval: self.probe_interval,
            max_drain: self.max_drain,
            horizon: self.horizon,
            software_overhead: self.software_overhead,
            feedback: self.feedback,
            defense: self.defense,
            faults: self.faults,
            audit: self.audit,
            recorder,
        }
    }

    /// Sets the harvest horizon: how long the environment is replayed
    /// before the run enters its drain phase. Mandatory for unbounded
    /// streaming sources; on bounded traces it acts as a truncation.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is positive and finite.
    pub fn with_horizon(mut self, horizon: Seconds) -> Self {
        assert!(
            horizon.get() > 0.0 && horizon.get().is_finite(),
            "horizon must be positive and finite"
        );
        self.horizon = Some(horizon);
        self
    }

    /// Overrides the timestep.
    pub fn with_timestep(mut self, dt: Seconds) -> Self {
        assert!(dt.get() > 0.0, "timestep must be positive");
        self.dt = dt;
        self
    }

    /// Selects the stepping kernel (adaptive by default).
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables voltage probing at the given interval (Fig. 1 / Fig. 6).
    pub fn with_probe(mut self, interval: Seconds) -> Self {
        self.probe_interval = Some(interval);
        self
    }

    /// Overrides the power gate (Dewdrop's adaptive enable voltage).
    pub fn with_gate(mut self, gate: PowerGate) -> Self {
        self.gate = gate;
        self
    }

    /// Overrides the drain allowance after the trace ends.
    pub fn with_max_drain(mut self, max_drain: Seconds) -> Self {
        self.max_drain = max_drain;
        self
    }

    /// Disables the buffer's on-MCU software overhead (the §5.1
    /// characterization runs DE with and without it).
    pub fn without_software_overhead(mut self) -> Self {
        self.software_overhead = 0.0;
        self
    }

    /// Opens the victim-event feedback channel: boots, brown-outs,
    /// radio spans, and buffer reconfigurations are reported to the
    /// power source via [`PowerSource::observe`]. Adaptive adversaries
    /// ([`react_env::AdaptiveAttack`]) time their strikes off this
    /// channel; benign sources ignore it. Off by default so benign
    /// cells pay nothing.
    pub fn with_feedback(mut self) -> Self {
        self.feedback = true;
        self
    }

    /// Arms the detect-and-degrade defense: an [`AttackDetector`]
    /// watches the gate-event series, and while alarmed the simulator
    /// raises the effective enable gate, steps the buffer into its
    /// conservative posture at each boot, and holds the workload in
    /// LPM3 for an exponential backoff after each attack-correlated
    /// reboot.
    pub fn with_defense(mut self, config: DefenseConfig) -> Self {
        self.defense = Some(config);
        self
    }

    /// Schedules mid-run hardware-drift faults ([`FaultPlan`]):
    /// capacitance fade, leakage growth, comparator offset, stuck
    /// switches, harvester derating. Events fire at the top of the
    /// engine iteration whose clock has reached them, and coarse
    /// strides never integrate across a pending event.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Arms the kernel-level invariant auditor: every committed coarse
    /// stride is cross-checked online (ledger residual, voltage and
    /// dwell sanity, harvest bound, sampled leakage shadow check), and
    /// a divergence permanently degrades the faulted regime's fast
    /// path to honest fine stepping. Audited runs also clamp stride
    /// lengths to [`AuditConfig::max_stride`], so their step counts —
    /// not their physics — differ from unaudited runs.
    pub fn with_auditor(mut self, config: AuditConfig) -> Self {
        self.audit = Some(config);
        self
    }

    /// Runs the simulation to completion and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics on an unsatisfiable configuration (see [`SimError`]);
    /// [`Simulator::try_run`] is the non-panicking form.
    pub fn run(self) -> RunOutcome {
        match self.try_run() {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation to completion, or reports why it cannot
    /// start.
    ///
    /// # Errors
    ///
    /// [`SimError::UnboundedSource`] if the power source never ends and
    /// no [`Simulator::with_horizon`] was set.
    pub fn try_run(self) -> Result<RunOutcome, SimError> {
        let mut core = self.try_into_core()?;
        while core.advance() {}
        Ok(core.finish())
    }

    /// [`Simulator::try_run`], but also yields the recorder with
    /// everything it captured.
    ///
    /// # Errors
    ///
    /// [`SimError::UnboundedSource`] if the power source never ends and
    /// no [`Simulator::with_horizon`] was set.
    pub fn try_run_telemetry(self) -> Result<(RunOutcome, R), SimError> {
        let mut core = self.try_into_core()?;
        while core.advance() {}
        Ok(core.finish_telemetry())
    }

    /// Converts this configured simulator into its resumable engine
    /// core without running it. The fleet kernel interleaves thousands
    /// of cores this way; stepping a core to completion is exactly
    /// [`Simulator::try_run`] (the run methods are implemented on top
    /// of it), so incremental advancement is bit-identical to a
    /// monolithic run.
    ///
    /// # Errors
    ///
    /// [`SimError::UnboundedSource`] if the power source never ends and
    /// no [`Simulator::with_horizon`] was set.
    pub fn try_into_core(self) -> Result<SimCore<B, W, S, R>, SimError> {
        SimCore::new(self)
    }
}

/// The resumable simulation engine: one configured run, advanced one
/// engine iteration at a time.
///
/// [`Simulator::try_run`] is a thin loop over this type, so driving a
/// core incrementally — as the fleet kernel does, interleaving
/// thousands of cells through a next-event heap — performs exactly the
/// same floating-point operations in exactly the same order as a
/// monolithic run. That is the property the `fleet_vs_scalar` bench
/// asserts as bit-equality.
///
/// Each iteration of [`SimCore::advance`] is either one closed-form
/// coarse stride (idle or LPM3-sleep fast path) or one fine `dt` step;
/// [`SimCore::now`] exposes the cell clock between iterations for
/// schedulers.
pub struct SimCore<
    B = Box<dyn EnergyBuffer>,
    W = Box<dyn Workload>,
    S = TraceSource,
    R = NullRecorder,
> {
    replay: PowerReplay<S>,
    /// The stepping source clone (what `PowerReplay::cursor` would
    /// own): sources are stateful segment walkers, so the core streams
    /// its private copy while the replay stays shareable.
    source: S,
    buffer: B,
    mcu: Mcu,
    gate: PowerGate,
    workload: W,
    dt: Seconds,
    probe_interval: Option<Seconds>,
    trace_end: Seconds,
    hard_end: Seconds,
    software_overhead: f64,
    feedback: bool,
    fast_path: bool,
    sleep_fast: bool,
    sleep_peripheral: Amps,
    t: Seconds,
    probe_acc: Seconds,
    on_since: Option<Seconds>,
    /// Outages *survived*: dark spans that ended in a reboot. The run
    /// starts in one (cold start), and the trailing drain-out is
    /// deliberately excluded — the system never came back from it.
    off_since: Option<Seconds>,
    off_max: f64,
    cycle_sum: f64,
    cycle_max: f64,
    cycles: u64,
    poll_debt: f64,
    engine_steps: u64,
    detector: Option<AttackDetector>,
    base_enable: react_units::Volts,
    hold_until: Option<Seconds>,
    defensive_reconfigs: u64,
    last_reconfig_count: u64,
    radio_on: bool,
    guard_active: bool,
    /// Scheduled hardware-drift faults, applied in time order.
    fault_plan: FaultPlan,
    /// Index of the next unapplied fault event.
    fault_next: usize,
    /// Accumulated comparator-offset drift on the enable threshold, in
    /// volts (folded into every effective-enable computation).
    comparator_offset: f64,
    /// Multiplicative harvester derating on rail power (1.0 healthy).
    derate: f64,
    /// Stuck power-gate switch: `Some(closed)` pins the gate.
    stuck: Option<bool>,
    /// Online stride auditor; `None` runs unaudited.
    auditor: Option<InvariantAuditor>,
    /// Auditor verdicts: a tripped regime's fast path is permanently
    /// degraded to fine stepping for the rest of the run.
    idle_degraded: bool,
    sleep_degraded: bool,
    finished: bool,
    metrics: RunMetrics,
    series: Vec<VoltageSample>,
    recorder: R,
    /// Open coalesced fine-step span, `(regime, reason, start_s,
    /// steps)`: consecutive fine steps sharing one classification
    /// collapse into a single [`EventKind::FineSpan`] event, flushed on
    /// class change, coarse stride, or finish. Only maintained while
    /// `R::ENABLED`.
    fine_span: Option<(Regime, FallbackReason, f64, u64)>,
    /// Buffer reconfigurations already emitted as telemetry events.
    tele_reconfig_count: u64,
    /// Detector detections already emitted as telemetry events.
    tele_detections: u64,
}

/// Emits one [`EventKind::Reconfig`] event per not-yet-reported
/// reconfiguration (free function so it can run inside disjoint field
/// borrows of the core).
fn tele_note_reconfigs<R: Recorder>(
    recorder: &mut R,
    count: u64,
    seen: &mut u64,
    t: f64,
    defensive: bool,
) {
    while *seen < count {
        *seen += 1;
        recorder.record(&SimEvent {
            t,
            span: 0.0,
            kind: EventKind::Reconfig { defensive },
        });
    }
}

/// Emits one [`EventKind::Detection`] event per not-yet-reported
/// detector hit.
fn tele_note_detections<R: Recorder>(recorder: &mut R, count: u64, seen: &mut u64, t: f64) {
    while *seen < count {
        *seen += 1;
        recorder.record(&SimEvent {
            t,
            span: 0.0,
            kind: EventKind::Detection,
        });
    }
}

impl<B: EnergyBuffer, W: Workload, S: PowerSource + Clone, R: Recorder> SimCore<B, W, S, R> {
    fn new(sim: Simulator<B, W, S, R>) -> Result<Self, SimError> {
        let Simulator {
            replay,
            buffer,
            mcu,
            gate,
            workload,
            dt,
            kernel,
            probe_interval,
            max_drain,
            horizon,
            software_overhead,
            feedback,
            defense,
            faults,
            audit,
            recorder,
        } = sim;

        // The harvest horizon: an explicit override, else the bounded
        // source duration. Unbounded streaming environments have
        // neither end nor a natural stop, so they must pick one.
        let trace_end = horizon
            .or_else(|| replay.source_duration())
            .ok_or(SimError::UnboundedSource)?;
        let hard_end = trace_end + max_drain;
        let source = replay.source().clone();

        let metrics = RunMetrics {
            initial_stored: buffer.stored_energy(),
            ..Default::default()
        };
        // Preallocate the probe series for the worst-case sample count —
        // trace plus the full drain tail over the probe interval — so
        // probed runs never pay Vec regrowth (capped at 64 Ki samples to
        // bound the reserve; pathological millisecond-probe runs fall
        // back to amortized growth past the cap).
        let series = match probe_interval {
            Some(interval) => {
                let expected = (hard_end.get() / interval.get().max(1e-9)) as usize + 16;
                Vec::with_capacity(expected.min(1 << 16))
            }
            None => Vec::new(),
        };
        // The idle fast path is only worth taking for buffers whose
        // MCU-off physics integrate in closed form; everything else
        // fine-steps through the main loop, keeping step counts honest.
        let fast_path = kernel == KernelMode::Adaptive && buffer.supports_idle_fast_path();
        // The sleep fast path is its mirror image for MCU-**on**,
        // workload-idle LPM3 stretches (§2.1: responsive sleep is where
        // batteryless nodes spend almost all of their on-time).
        let sleep_fast = kernel == KernelMode::Adaptive && buffer.supports_powered_fast_path();
        let base_enable = gate.enable_voltage();
        let last_reconfig_count = buffer.reconfiguration_count();
        let tele_reconfig_count = last_reconfig_count;

        Ok(Self {
            replay,
            source,
            buffer,
            mcu,
            gate,
            workload,
            dt,
            probe_interval,
            trace_end,
            hard_end,
            software_overhead,
            feedback,
            fast_path,
            sleep_fast,
            // Peripheral current of the most recent sleep demand — what
            // the workload holds powered through the stretch (mic bias,
            // wake-up receiver). Valid whenever the MCU sits in `Sleep`,
            // which only a workload step can request.
            sleep_peripheral: Amps::ZERO,
            t: Seconds::ZERO,
            probe_acc: Seconds::ZERO,
            on_since: None,
            off_since: Some(Seconds::ZERO),
            off_max: 0.0,
            cycle_sum: 0.0,
            cycle_max: 0.0,
            cycles: 0,
            poll_debt: 0.0,
            engine_steps: 0,
            detector: defense.map(AttackDetector::new),
            base_enable,
            hold_until: None,
            defensive_reconfigs: 0,
            last_reconfig_count,
            radio_on: false,
            // Kernel invariant guard: a non-finite rail voltage or
            // harvest power means some model produced garbage; the
            // engine degrades to sanitized fine-stepping for the
            // offending span and counts it (once per contiguous span)
            // instead of propagating NaNs.
            guard_active: false,
            fault_plan: faults,
            fault_next: 0,
            comparator_offset: 0.0,
            derate: 1.0,
            stuck: None,
            auditor: audit.map(InvariantAuditor::new),
            idle_degraded: false,
            sleep_degraded: false,
            finished: false,
            metrics,
            series,
            recorder,
            fine_span: None,
            tele_reconfig_count,
            tele_detections: 0,
        })
    }

    /// Closes the open coalesced fine-step span (if any) at the current
    /// clock and hands it to the recorder.
    fn flush_fine_span(&mut self) {
        if let Some((regime, reason, start, steps)) = self.fine_span.take() {
            self.recorder.record(&SimEvent {
                t: start,
                span: self.t.get() - start,
                kind: EventKind::FineSpan {
                    regime,
                    reason,
                    steps,
                },
            });
        }
    }

    /// Folds one classified fine step into the open span, flushing and
    /// reopening on a (regime, reason) change.
    fn tele_note_fine_step(&mut self, regime: Regime, reason: FallbackReason, t_entry: f64) {
        match self.fine_span.as_mut() {
            Some((r, re, _, steps)) if *r == regime && *re == reason => *steps += 1,
            _ => {
                self.flush_fine_span();
                self.fine_span = Some((regime, reason, t_entry, 1));
            }
        }
    }

    /// The cell clock: simulated seconds advanced so far.
    pub fn now(&self) -> Seconds {
        self.t
    }

    /// Engine iterations executed so far (fine steps plus coarse
    /// strides). The fleet kernel's per-cell watchdog meters this to
    /// turn a wedged cell into a reported timeout instead of a hung
    /// shard.
    pub fn engine_steps(&self) -> u64 {
        self.engine_steps
    }

    /// Whether the run has terminated (drained past the horizon or hit
    /// the hard cap). Once finished, [`SimCore::advance`] is a no-op
    /// and [`SimCore::finish`] yields the outcome.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// One converter-composed source window starting at the clock —
    /// the environment is disconnected past the harvest horizon, so
    /// the drain phase runs on stored energy alone, matching
    /// bounded-trace semantics (power_at is zero past the end) for
    /// streaming sources too; rail power is constant over the whole
    /// span (static efficiency curve, OVP above the rail clamp), so
    /// one conversion at the stride's entry voltage covers the
    /// closed-form integration.
    fn stride_window(&mut self) -> (react_units::Watts, Seconds) {
        let (p_rail, window_end) = if self.t >= self.trace_end {
            (react_units::Watts::ZERO, self.hard_end)
        } else {
            let seg = self.source.segment(self.t);
            let p = self
                .replay
                .rail_power_from(seg.power, self.buffer.input_voltage());
            (p, seg.end.min(self.trace_end))
        };
        // Harvester derating scales rail power; the healthy 1.0 path
        // leaves the value untouched bit-for-bit.
        let p_rail = if self.derate != 1.0 {
            react_units::Watts::new(p_rail.get() * self.derate)
        } else {
            p_rail
        };
        let mut end = window_end.min(self.hard_end);
        // Closed forms never integrate across a pending fault event —
        // the stride stops at the event so it fires on time and the
        // post-fault physics start from the event's state.
        end = end.min(self.fault_plan.next_at(self.fault_next));
        // While auditing, clamp stride length: one wrong believed-model
        // stride can run at most `max_stride` before its commit is
        // cross-checked (the auditor's detection-latency bound).
        if let Some(aud) = &self.auditor {
            end = end.min(self.t + aud.max_stride());
        }
        (p_rail, end)
    }

    /// Applies every fault event whose time has arrived, in schedule
    /// order. Buffer-level drifts go through
    /// [`EnergyBuffer::apply_fault`]; comparator offset, stuck
    /// switches, and harvester derating act on the engine's own
    /// periphery models.
    fn apply_due_faults(&mut self) {
        while self.fault_next < self.fault_plan.events().len() {
            let ev = self.fault_plan.events()[self.fault_next];
            if self.t < ev.at {
                break;
            }
            self.fault_next += 1;
            self.metrics.faults_injected += 1;
            if R::ENABLED {
                self.recorder.record(&SimEvent {
                    t: self.t.get(),
                    span: 0.0,
                    kind: EventKind::FaultInjected {
                        label: ev.kind.label(),
                    },
                });
            }
            match ev.kind {
                FaultKind::ComparatorOffset { volts } => {
                    self.comparator_offset += volts;
                    let raise = self
                        .detector
                        .as_ref()
                        .map_or(Volts::new(0.0), |d| d.gate_raise());
                    let eff = react_circuit::offset_enable(
                        self.base_enable + raise,
                        self.comparator_offset,
                        self.gate.brownout_voltage(),
                    );
                    self.gate.set_enable_voltage(eff);
                }
                FaultKind::HarvesterDerate { factor } => {
                    self.derate *= factor;
                }
                FaultKind::SwitchStuckOpen => {
                    self.stuck = Some(false);
                }
                FaultKind::SwitchStuckClosed => {
                    self.stuck = Some(true);
                }
                kind => {
                    // Capacitance fade / leakage growth: buffers that
                    // do not model the drift simply ignore it.
                    let _ = self.buffer.apply_fault(kind);
                }
            }
        }
    }

    /// Cross-checks a just-committed stride against its pre-stride
    /// snapshot; a trip permanently degrades the regime's fast path
    /// and is surfaced as an [`EventKind::AuditTrip`].
    fn audit_stride(
        &mut self,
        snap: Option<AuditSnapshot>,
        p_rail: react_units::Watts,
        advanced: Seconds,
        window: Seconds,
        regime: Regime,
    ) {
        let Some(snap) = snap else { return };
        let Some(aud) = self.auditor.as_mut() else {
            return;
        };
        if aud.check(&snap, &self.buffer, p_rail, advanced, window, self.dt) {
            match regime {
                Regime::Idle => self.idle_degraded = true,
                _ => self.sleep_degraded = true,
            }
            if R::ENABLED {
                self.recorder.record(&SimEvent {
                    t: self.t.get(),
                    span: 0.0,
                    kind: EventKind::AuditTrip { regime },
                });
            }
        }
    }

    /// The enable threshold the gate should sit at, folding the
    /// defensive raise and any comparator-offset drift together. With
    /// no offset this is exactly the pre-fault expression.
    fn effective_enable(&self, raise: Volts) -> Volts {
        let nominal = self.base_enable + raise;
        if self.comparator_offset != 0.0 {
            react_circuit::offset_enable(
                nominal,
                self.comparator_offset,
                self.gate.brownout_voltage(),
            )
        } else {
            nominal
        }
    }

    /// Reports controller reconfigurations to the feedback channel by
    /// delta — they can land inside fine steps or coarse strides, and
    /// the count is the one signal both kernels agree on exactly. The
    /// event is stamped at the current clock, at or after the physical
    /// switch, so an adversary acting on it can never reach back
    /// before it.
    fn note_reconfigs(&mut self) {
        if self.feedback {
            let rc = self.buffer.reconfiguration_count();
            if rc > self.last_reconfig_count {
                self.last_reconfig_count = rc;
                self.source.observe(VictimEvent::Reconfig { at: self.t });
            }
        }
    }

    /// Books an advanced coarse stride: probe samples are stamped one
    /// step back, where the reference kernel records them.
    fn commit_stride(&mut self, advanced: Seconds, on: bool) {
        if R::ENABLED {
            self.flush_fine_span();
            self.recorder.record(&SimEvent {
                t: self.t.get(),
                span: advanced.get(),
                kind: EventKind::CoarseStride {
                    kind: if on {
                        StrideKind::Powered
                    } else {
                        StrideKind::Idle
                    },
                },
            });
        }
        self.engine_steps += 1;
        self.t += advanced;
        self.note_reconfigs();
        if R::ENABLED {
            let rc = self.buffer.reconfiguration_count();
            tele_note_reconfigs(
                &mut self.recorder,
                rc,
                &mut self.tele_reconfig_count,
                self.t.get(),
                false,
            );
        }
        if on {
            self.metrics.on_time += advanced;
        }
        if let Some(interval) = self.probe_interval {
            self.probe_acc += advanced;
            if self.probe_acc >= interval {
                self.probe_acc = Seconds::ZERO;
                self.series.push(VoltageSample {
                    time_s: (self.t - self.dt).max(Seconds::ZERO).get(),
                    voltage_v: self.buffer.rail_voltage().get(),
                    on,
                    capacitance_f: self.buffer.equivalent_capacitance().get(),
                });
            }
        }
        self.check_termination();
    }

    /// Termination: past the trace, once the system browns out it can
    /// never restart (no input power) — or at the hard cap.
    fn check_termination(&mut self) {
        if (self.t >= self.trace_end && !self.gate.is_closed()) || self.t >= self.hard_end {
            self.finished = true;
        }
    }

    /// Advances the run by one engine iteration — one closed-form
    /// coarse stride or one fine `dt` step — and reports whether the
    /// run is still live (`false` once finished).
    pub fn advance(&mut self) -> bool {
        if self.finished {
            return false;
        }
        if self.fault_next < self.fault_plan.events().len() {
            self.apply_due_faults();
        }
        let dt = self.dt;
        let v = self.buffer.rail_voltage();
        // A freshly-stuck switch flips the gate *now*, at the fault's
        // instant — not at the next natural comparator servicing, which
        // a coarse stride could push hours away.
        if self.stuck.is_some_and(|c| c != self.gate.is_closed()) && v.get().is_finite() {
            self.service_gate(v);
        }
        // Invariant guard: a non-finite rail voltage disables both
        // fast paths for this span (their closed forms would chew
        // on garbage) and is counted once per contiguous span.
        let v_ok = v.get().is_finite();

        // Telemetry: classify this iteration from its *entry* state
        // (the gate/MCU may flip mid-step). Fine steps coalesce into
        // spans by (regime, reason); refusal reasons are captured at
        // the refusing site below, structural reasons derived at the
        // bottom. All of it folds away under `NullRecorder`.
        let entry_regime = if !R::ENABLED {
            Regime::Active // unused when recording is off
        } else if !self.gate.is_closed() {
            Regime::Idle
        } else if self.mcu.is_running() && self.mcu.mode() == PowerMode::Sleep {
            Regime::Sleep
        } else {
            Regime::Active
        };
        let entry_poll_debt = if R::ENABLED { self.poll_debt } else { 0.0 };
        let t_entry = if R::ENABLED { self.t.get() } else { 0.0 };
        let mut fine_reason: Option<FallbackReason> = None;

        // A defensive hold releases only once its backoff timer has
        // expired *and* the rail has recovered to the effective
        // enable level: waking mid-blackout with a half-drained
        // buffer just donates the remaining charge to the next
        // strike, so the workload waits out both the hold and the
        // recharge and always restarts from a full buffer.
        if v_ok && self.hold_until.is_some_and(|h| self.t >= h) && v >= self.gate.enable_voltage() {
            self.hold_until = None;
            if R::ENABLED {
                self.recorder.record(&SimEvent {
                    t: self.t.get(),
                    span: 0.0,
                    kind: EventKind::BackoffRelease,
                });
            }
        }

        // Adaptive idle fast path: gate open, MCU dark — the only
        // dynamics are buffer physics (plus, for controller-driven
        // buffers, threshold-sparse controller decisions) under a
        // piecewise-constant input, which `idle_advance` integrates
        // in one stride.
        if self.fast_path
            && !self.idle_degraded
            && v_ok
            && !self.gate.is_closed()
            && !self.mcu.is_powered()
            && v < self.gate.enable_voltage()
        {
            let (p_rail, window_end) = self.stride_window();
            let mut stride_end = window_end;
            if let Some(interval) = self.probe_interval {
                // Never integrate across a probe boundary.
                stride_end = stride_end.min(self.t + (interval - self.probe_acc).max(dt));
            }
            let stride = stride_end - self.t;
            if p_rail.get().is_finite() && stride >= calib::MIN_COARSE_STRIDE.max(dt + dt) {
                let snap = self
                    .auditor
                    .is_some()
                    .then(|| AuditSnapshot::capture(&self.buffer));
                let advanced =
                    self.buffer
                        .idle_advance(p_rail, stride, self.gate.enable_voltage(), dt);
                if advanced.get() > 0.0 {
                    self.commit_stride(advanced, false);
                    self.audit_stride(snap, p_rail, advanced, stride, Regime::Idle);
                    // A stride that parked on the enable crossing has
                    // *discovered* the boot edge: service the gate at
                    // the commit so the next iteration fine-steps in
                    // the regime it actually runs in (the MCU's first
                    // boot step) instead of burning an idle fine step
                    // on the hand-off.
                    let v_now = self.buffer.rail_voltage();
                    if !self.finished && v_now.get().is_finite() {
                        self.service_gate(v_now);
                        // The serviced edge can flip the termination
                        // condition (a trace-end brown-out must end the
                        // run here, not after another stride).
                        self.check_termination();
                    }
                    return !self.finished;
                }
                if R::ENABLED {
                    fine_reason = self
                        .buffer
                        .take_fallback()
                        .or(Some(FallbackReason::NoClosedForm));
                }
            } else if R::ENABLED {
                fine_reason = Some(if !p_rail.get().is_finite() {
                    FallbackReason::NanGuard
                } else {
                    FallbackReason::ShortStride
                });
            }
        }

        // Adaptive sleep fast path: gate closed, MCU asleep in LPM3
        // on a quiet workload — the only dynamics are buffer physics
        // under the standing sleep draw (MCU sleep current plus the
        // held peripheral), which `powered_advance` integrates in
        // closed form up to the workload's next wake-up, the end of
        // the converter-composed source segment, or the predicted
        // brown-out crossing (quantized onto the `dt` grid). A
        // pending poll-service debt keeps the stretch on fine steps
        // (the serviced step runs the CPU active).
        if self.sleep_fast
            && !self.sleep_degraded
            && v_ok
            && self.gate.is_closed()
            && self.mcu.is_running()
            && self.mcu.mode() == PowerMode::Sleep
            && self.poll_debt < dt.get()
            && v > self.gate.brownout_voltage()
        {
            let env = WorkloadEnv {
                now: self.t,
                dt,
                rail_voltage: v,
                usable_energy: self
                    .buffer
                    .usable_energy_above(self.gate.brownout_voltage()),
                supports_longevity: self.buffer.supports_longevity(),
            };
            // Resolve the hint to a wake *time* plus, for §3.4.1
            // energy waits, a wake *voltage* — the rail level at
            // which the buffer's usable pool first covers the
            // workload's threshold, where the stride must stop so
            // the per-step energy check observes the crossing.
            let far = Seconds::new(f64::INFINITY);
            // During a defensive backoff hold the workload is
            // pinned in LPM3 regardless of its own schedule: the
            // stride runs to the hold's expiry or, once the timer
            // is out, to the rail's recovery crossing at the
            // effective enable level (where the loop-top release
            // check clears the hold).
            let held_wake = match self.hold_until {
                Some(h) if h > self.t => Some((h, None)),
                Some(_) => Some((far, Some(self.gate.enable_voltage()))),
                None => None,
            };
            let wake = if held_wake.is_some() {
                held_wake
            } else {
                match self.workload.next_wake(&env) {
                    WakeHint::Immediate => None,
                    // A stale hint (at or behind the clock) gets the
                    // fine-step treatment rather than a zero stride.
                    WakeHint::At(tw) if tw > self.t => Some((tw, None)),
                    WakeHint::At(_) => None,
                    WakeHint::WhenEnergy { energy, deadline } => {
                        if env.usable_energy >= energy || deadline.is_some_and(|d| d <= self.t) {
                            // Already awake (or an event is due): the
                            // wake-up itself runs on fine steps.
                            None
                        } else {
                            self.buffer
                                .rail_voltage_for_usable(energy, self.gate.brownout_voltage())
                                .map(|v_wake| (deadline.unwrap_or(far), Some(v_wake)))
                        }
                    }
                    WakeHint::Never => Some((far, None)),
                }
            };
            if let Some((wake, v_wake)) = wake {
                let (p_rail, window_end) = self.stride_window();
                let mut stride_end = window_end.min(wake);
                if let Some(interval) = self.probe_interval {
                    // Never integrate across a probe boundary.
                    stride_end = stride_end.min(self.t + (interval - self.probe_acc).max(dt));
                }
                let stride = stride_end - self.t;
                if p_rail.get().is_finite() && stride >= calib::MIN_COARSE_STRIDE.max(dt + dt) {
                    let i_sleep = self.mcu.running_current() + self.sleep_peripheral;
                    let snap = self
                        .auditor
                        .is_some()
                        .then(|| AuditSnapshot::capture(&self.buffer));
                    let advanced = self
                        .buffer
                        .powered_advance(
                            p_rail,
                            i_sleep,
                            stride,
                            self.gate.brownout_voltage(),
                            v_wake,
                            dt,
                        )
                        .unwrap_or(Seconds::ZERO);
                    if advanced.get() > 0.0 {
                        self.commit_stride(advanced, true);
                        self.audit_stride(snap, p_rail, advanced, stride, Regime::Sleep);
                        // Symmetric to the idle path: a stride that
                        // parked on the brown-out crossing services
                        // the gate edge at the commit, so the MCU
                        // powers down here and the next iteration
                        // coarse-strides the dark rail instead of
                        // spending a sleep fine step on the hand-off.
                        let v_now = self.buffer.rail_voltage();
                        if !self.finished && v_now.get().is_finite() {
                            self.service_gate(v_now);
                            // The serviced edge can flip the
                            // termination condition (a trace-end
                            // brown-out must end the run here).
                            self.check_termination();
                        }
                        return !self.finished;
                    }
                    if R::ENABLED {
                        fine_reason = self
                            .buffer
                            .take_fallback()
                            .or(Some(FallbackReason::NoClosedForm));
                    }
                } else if R::ENABLED {
                    fine_reason = Some(if !p_rail.get().is_finite() {
                        FallbackReason::NanGuard
                    } else {
                        FallbackReason::ShortStride
                    });
                }
            } else if R::ENABLED {
                // The wake hint resolved to "now": immediate, stale,
                // energy-satisfied, or deadline-due.
                fine_reason = Some(FallbackReason::TransitionDue);
            }
        }

        self.engine_steps += 1;

        // Power gate.
        self.service_gate(v);

        self.post_gate_fine_step(v, dt, entry_regime, entry_poll_debt, t_entry, fine_reason)
    }

    /// Services the power gate against the rail voltage `v` at the
    /// current clock: a closing edge boots the MCU (with detector,
    /// defense, and feedback hooks), an opening edge powers it down
    /// and closes the duty-cycle books. Called from every fine step
    /// and from coarse-stride commits whose closed form parked the
    /// rail on a gate crossing — servicing the edge at the commit
    /// keeps the hand-off out of the next iteration's fine-step
    /// attribution while leaving the physics timeline unchanged (the
    /// edge fires at the same simulated instant either way).
    fn service_gate(&mut self, v: Volts) {
        // A stuck switch overrides the comparator entirely; the healthy
        // path is the untouched pre-fault update.
        let changed = match self.stuck {
            Some(closed) => self.gate.force(closed),
            None => self.gate.update(v),
        };
        if changed {
            if self.gate.is_closed() {
                self.mcu.power_on();
                if self.metrics.first_on_latency.is_none() {
                    self.metrics.first_on_latency = Some(self.t);
                }
                self.on_since = Some(self.t);
                if let Some(start) = self.off_since.take() {
                    self.off_max = self.off_max.max((self.t - start).get());
                }
                if self.feedback {
                    self.source.observe(VictimEvent::Boot { at: self.t });
                }
                if R::ENABLED {
                    self.recorder.record(&SimEvent {
                        t: self.t.get(),
                        span: 0.0,
                        kind: EventKind::Boot,
                    });
                }
                if let Some(det) = self.detector.as_mut() {
                    det.on_boot(self.t);
                    if R::ENABLED {
                        tele_note_detections(
                            &mut self.recorder,
                            det.detections(),
                            &mut self.tele_detections,
                            self.t.get(),
                        );
                    }
                    if det.alarmed() {
                        // Attack-correlated reboot: hold the
                        // workload back for the current backoff and
                        // bank less per cycle.
                        let hold = det.backoff();
                        if hold.get() > 0.0 {
                            self.hold_until = Some(self.t + hold);
                            if R::ENABLED {
                                self.recorder.record(&SimEvent {
                                    t: self.t.get(),
                                    span: 0.0,
                                    kind: EventKind::BackoffHold,
                                });
                            }
                        }
                        if self.buffer.defensive_reconfigure() {
                            self.defensive_reconfigs += 1;
                            if R::ENABLED {
                                let rc = self.buffer.reconfiguration_count();
                                tele_note_reconfigs(
                                    &mut self.recorder,
                                    rc,
                                    &mut self.tele_reconfig_count,
                                    self.t.get(),
                                    true,
                                );
                            }
                        }
                    }
                    let raise = det.gate_raise();
                    let eff = self.effective_enable(raise);
                    self.gate.set_enable_voltage(eff);
                }
            } else {
                self.mcu.power_off();
                self.workload.on_power_down(self.t);
                if let Some(start) = self.on_since.take() {
                    let len = (self.t - start).get();
                    self.cycle_sum += len;
                    self.cycle_max = self.cycle_max.max(len);
                    self.cycles += 1;
                }
                self.off_since = Some(self.t);
                if R::ENABLED {
                    self.recorder.record(&SimEvent {
                        t: self.t.get(),
                        span: 0.0,
                        kind: EventKind::BrownOut,
                    });
                    if self.hold_until.is_some() {
                        // A brown-out cancels the defensive hold;
                        // close its span here.
                        self.recorder.record(&SimEvent {
                            t: self.t.get(),
                            span: 0.0,
                            kind: EventKind::BackoffRelease,
                        });
                    }
                }
                self.hold_until = None;
                if self.feedback {
                    self.source.observe(VictimEvent::BrownOut { at: self.t });
                    if self.radio_on {
                        // Power loss keys the radio off with it.
                        self.radio_on = false;
                        self.source.observe(VictimEvent::RadioOff { at: self.t });
                    }
                }
                if let Some(det) = self.detector.as_mut() {
                    det.on_brownout(self.t);
                    if R::ENABLED {
                        tele_note_detections(
                            &mut self.recorder,
                            det.detections(),
                            &mut self.tele_detections,
                            self.t.get(),
                        );
                    }
                    let raise = det.gate_raise();
                    let eff = self.effective_enable(raise);
                    self.gate.set_enable_voltage(eff);
                }
            }
        }
    }

    /// The tail of a fine step past the gate edge: workload software,
    /// MCU sequencing, harvest + buffer physics, accounting, and the
    /// step's telemetry classification.
    fn post_gate_fine_step(
        &mut self,
        v: Volts,
        dt: Seconds,
        entry_regime: Regime,
        entry_poll_debt: f64,
        t_entry: f64,
        fine_reason: Option<FallbackReason>,
    ) -> bool {
        let v_ok = v.get().is_finite();

        // Workload software (only past boot).
        let mut peripheral = Amps::ZERO;
        if self.gate.is_closed() {
            let was_running = self.mcu.is_running();
            if was_running {
                if self.hold_until.is_some() {
                    // Defensive backoff: the workload is held in
                    // LPM3 — no steps, no progress, minimal draw —
                    // starving an attacker that times strikes off
                    // the workload's activity. (The loop-top
                    // release check clears the hold once the timer
                    // is out and the rail has recovered.)
                    self.mcu.set_mode(react_mcu::PowerMode::Sleep);
                    self.sleep_peripheral = Amps::ZERO;
                } else if self.poll_debt >= dt.get() {
                    // The buffer's software component (REACT's 10 Hz
                    // poller) services its interrupt: CPU active, no
                    // workload progress this step. §5.1 measures this
                    // as a 1.8 % penalty on *active* execution.
                    self.poll_debt -= dt.get();
                    self.mcu.set_mode(react_mcu::PowerMode::Active);
                } else {
                    let env = WorkloadEnv {
                        now: self.t,
                        dt,
                        rail_voltage: v,
                        usable_energy: self
                            .buffer
                            .usable_energy_above(self.gate.brownout_voltage()),
                        supports_longevity: self.buffer.supports_longevity(),
                    };
                    let LoadDemand {
                        mode,
                        peripheral_current,
                    } = self.workload.step(&env);
                    self.mcu.set_mode(mode);
                    peripheral = peripheral_current;
                    if mode == react_mcu::PowerMode::Sleep {
                        self.sleep_peripheral = peripheral_current;
                    }
                    if self.feedback {
                        // Radio spans, by their draw signature: the
                        // RF workloads key 6–18 mA peripherals, so a
                        // milliamp threshold cleanly separates them
                        // from sensor bias currents.
                        let keyed = peripheral_current >= RADIO_SENSE_CURRENT;
                        if keyed != self.radio_on {
                            self.radio_on = keyed;
                            self.source.observe(if keyed {
                                VictimEvent::RadioOn { at: self.t }
                            } else {
                                VictimEvent::RadioOff { at: self.t }
                            });
                        }
                    }
                    // Poll overhead accrues against active cycles
                    // only; a sleeping CPU wakes for ~100 µs per
                    // poll, which is already inside the LPM3 budget.
                    if mode == react_mcu::PowerMode::Active {
                        self.poll_debt += self.software_overhead * dt.get();
                    }
                }
            }
        }

        // MCU current for this step (handles boot sequencing; the
        // workload's first step lands after boot).
        let was_running = self.mcu.is_running();
        let mcu_current = self.mcu.step(dt);
        if !was_running && self.mcu.is_running() {
            self.workload.on_power_up(self.t);
        }

        // Harvest + buffer physics. The converter delivers *power*;
        // the buffer converts it to charge at its input node's
        // voltage (for REACT the lowest connected element, §3.2.1).
        // Past the horizon the environment is disconnected (see the
        // idle path above).
        let input = if self.t >= self.trace_end {
            react_units::Watts::ZERO
        } else {
            let available = self.source.power_at(self.t);
            let p = self
                .replay
                .rail_power_from(available, self.buffer.input_voltage());
            // Harvester derating, matching `stride_window` so both
            // kernels (and both step shapes) see the same faulted rail.
            if self.derate != 1.0 {
                react_units::Watts::new(p.get() * self.derate)
            } else {
                p
            }
        };
        // Invariant guard, input side: a non-finite harvest sample
        // is sanitized to zero before it can poison the buffer
        // state. Together with the rail-voltage check above, one
        // contiguous offending span counts as one fallback.
        let input_ok = input.get().is_finite();
        let input = if input_ok {
            input
        } else {
            react_units::Watts::ZERO
        };
        if v_ok && input_ok {
            self.guard_active = false;
        } else if !self.guard_active {
            self.guard_active = true;
            self.metrics.guard_fallbacks += 1;
        }
        self.buffer
            .step(input, mcu_current + peripheral, dt, self.mcu.is_running());
        self.note_reconfigs();
        if R::ENABLED {
            let rc = self.buffer.reconfiguration_count();
            tele_note_reconfigs(
                &mut self.recorder,
                rc,
                &mut self.tele_reconfig_count,
                self.t.get(),
                false,
            );
        }

        // Accounting.
        if self.gate.is_closed() {
            self.metrics.on_time += dt;
        }
        if let Some(interval) = self.probe_interval {
            self.probe_acc += dt;
            if self.probe_acc >= interval {
                self.probe_acc = Seconds::ZERO;
                self.series.push(VoltageSample {
                    time_s: self.t.get(),
                    voltage_v: self.buffer.rail_voltage().get(),
                    on: self.gate.is_closed(),
                    capacitance_f: self.buffer.equivalent_capacitance().get(),
                });
            }
        }

        self.t += dt;
        if R::ENABLED {
            // Structural classification for fine steps no refusal site
            // annotated: the entry state makes fine stepping inherent.
            let reason = fine_reason.unwrap_or(match entry_regime {
                Regime::Active => FallbackReason::McuActive,
                Regime::Idle => {
                    if !v_ok {
                        FallbackReason::NanGuard
                    } else if !self.fast_path {
                        FallbackReason::FastPathOff
                    } else if self.idle_degraded {
                        FallbackReason::AuditDegraded
                    } else {
                        // Enable crossing due (boot edge) or a
                        // post-brown-out MCU-discharge transient.
                        FallbackReason::TransitionDue
                    }
                }
                Regime::Sleep => {
                    if !v_ok {
                        FallbackReason::NanGuard
                    } else if !self.sleep_fast {
                        FallbackReason::FastPathOff
                    } else if self.sleep_degraded {
                        FallbackReason::AuditDegraded
                    } else if entry_poll_debt >= dt.get() {
                        FallbackReason::PollDebt
                    } else {
                        // Brown-out crossing due, or a wake/hold edge.
                        FallbackReason::TransitionDue
                    }
                }
            });
            self.tele_note_fine_step(entry_regime, reason, t_entry);
        }
        self.check_termination();
        !self.finished
    }

    /// Advances until the cell clock reaches `limit` (or the run
    /// finishes), returning whether the run is still live. The fleet
    /// kernel's chunked scheduler drives cells through this so heap
    /// traffic is per-chunk, not per-iteration.
    pub fn advance_until(&mut self, limit: Seconds) -> bool {
        while !self.finished && self.t < limit {
            self.advance();
        }
        !self.finished
    }

    /// Finalizes the run and yields its outcome. Call after
    /// [`SimCore::advance`] returns `false`; finishing a live run
    /// truncates it at the current clock (metrics are finalized as if
    /// the run ended there).
    pub fn finish(self) -> RunOutcome {
        self.finish_telemetry().0
    }

    /// [`SimCore::finish`], but also yields the recorder with
    /// everything it captured (the open fine-step span is flushed
    /// first).
    pub fn finish_telemetry(mut self) -> (RunOutcome, R) {
        if R::ENABLED {
            self.flush_fine_span();
        }
        // Close any open on-period.
        if let Some(start) = self.on_since {
            let len = (self.t - start).get();
            self.cycle_sum += len;
            self.cycle_max = self.cycle_max.max(len);
            self.cycles += 1;
        }
        self.workload.finalize(self.t);

        let mut metrics = self.metrics;
        metrics.ops_completed = self.workload.ops_completed();
        metrics.ops_failed = self.workload.ops_failed();
        metrics.aux_completed = self.workload.aux_completed();
        metrics.events_missed = self.workload.events_missed();
        metrics.total_time = self.t;
        metrics.boots = self.mcu.boot_count();
        metrics.engine_steps = self.engine_steps;
        metrics.mean_on_period = if self.cycles > 0 {
            Seconds::new(self.cycle_sum / self.cycles as f64)
        } else {
            Seconds::ZERO
        };
        metrics.max_on_period = Seconds::new(self.cycle_max);
        metrics.max_off_period = Seconds::new(self.off_max);
        // Controller accounting comes from the buffer itself, which
        // tracks it through both fine steps and coarse idle strides, so
        // the two kernels agree on it (asserted by the equivalence
        // suite).
        metrics.reconfigurations = self.buffer.reconfiguration_count();
        metrics.capacitance_dwell = self
            .buffer
            .capacitance_dwell()
            .into_iter()
            .map(|(level, seconds)| crate::metrics::LevelDwell { level, seconds })
            .collect();
        metrics.ledger = *self.buffer.ledger();
        metrics.final_stored = self.buffer.stored_energy();
        if let Some(det) = &self.detector {
            metrics.detections = det.detections();
            metrics.false_positives = det.false_positives();
        }
        metrics.defensive_reconfigurations = self.defensive_reconfigs;
        if let Some(aud) = &self.auditor {
            metrics.audit_checks = aud.checks();
            metrics.audit_trips = aud.trips();
        }

        (
            RunOutcome {
                metrics,
                voltage_series: self.series,
            },
            self.recorder,
        )
    }
}

/// Convenience: an always-on load of `current` amps modelled as a
/// workload (used by Fig. 1's static-buffer illustration, §2.1).
#[derive(Clone, Debug)]
pub struct ConstantLoad {
    current: Amps,
    on_time_ops: u64,
}

impl ConstantLoad {
    /// Creates a constant-current pseudo-workload.
    pub fn new(current: Amps) -> Self {
        Self {
            current,
            on_time_ops: 0,
        }
    }
}

impl Workload for ConstantLoad {
    fn name(&self) -> &'static str {
        "constant-load"
    }

    fn on_power_up(&mut self, _now: Seconds) {}

    fn on_power_down(&mut self, _now: Seconds) {}

    fn step(&mut self, _env: &WorkloadEnv) -> LoadDemand {
        self.on_time_ops += 1;
        // The MCU draw is modelled by the MCU itself; this adds the
        // *extra* draw beyond the 1.5 mA active current.
        LoadDemand::active_with(self.current)
    }

    fn finalize(&mut self, _now: Seconds) {}

    fn ops_completed(&self) -> u64 {
        self.on_time_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_buffers::BufferKind;
    use react_harvest::Converter;
    use react_traces::PowerTrace;
    use react_units::{Volts, Watts};

    fn constant_replay(power_mw: f64, duration_s: f64) -> PowerReplay {
        PowerReplay::new(
            PowerTrace::constant(
                "const",
                Watts::from_milli(power_mw),
                Seconds::new(duration_s),
                Seconds::new(0.1),
            ),
            Converter::ideal(),
        )
    }

    #[test]
    fn system_charges_enables_and_runs() {
        let sim = Simulator::new(
            constant_replay(10.0, 30.0),
            BufferKind::Static770uF.build(),
            Box::new(react_workloads::DataEncryption::new()),
        );
        let out = sim.run();
        let m = &out.metrics;
        // 770 µF to 3.3 V at ~3 mA-ish: well under a second.
        let latency = m.first_on_latency.expect("system must start");
        assert!(latency.get() < 5.0, "latency {latency:?}");
        assert!(m.ops_completed > 0);
        assert!(m.on_time.get() > 10.0);
        assert!(m.boots >= 1);
        assert!(m.relative_conservation_error() < 1e-3);
    }

    #[test]
    fn no_power_means_no_start() {
        let sim = Simulator::new(
            constant_replay(0.0, 5.0),
            BufferKind::Static770uF.build(),
            Box::new(react_workloads::DataEncryption::new()),
        );
        let out = sim.run();
        assert_eq!(out.metrics.first_on_latency, None);
        assert_eq!(out.metrics.ops_completed, 0);
        assert_eq!(out.metrics.boots, 0);
    }

    #[test]
    fn drain_continues_past_trace_end() {
        // Strong charge for 5 s, then the trace ends; a 17 mF buffer
        // keeps the DE benchmark alive well past it.
        let sim = Simulator::new(
            constant_replay(50.0, 5.0),
            BufferKind::Static17mF.build(),
            Box::new(react_workloads::DataEncryption::new()),
        );
        let out = sim.run();
        assert!(out.metrics.total_time.get() > 6.0);
        // And the buffer ends near the brown-out voltage, drained.
        assert!(out.metrics.final_stored.to_milli() < 40.0);
    }

    #[test]
    fn probing_collects_series() {
        let sim = Simulator::new(
            constant_replay(5.0, 10.0),
            BufferKind::Static770uF.build(),
            Box::new(react_workloads::DataEncryption::new()),
        )
        .with_probe(Seconds::new(0.5));
        let out = sim.run();
        assert!(out.voltage_series.len() >= 15);
        assert!(out.voltage_series.iter().any(|s| s.on));
        // Capacitance column is the static value throughout.
        assert!(out
            .voltage_series
            .iter()
            .all(|s| (s.capacitance_f - 770e-6).abs() < 1e-9));
    }

    #[test]
    fn react_connects_banks_under_surplus() {
        let sim = Simulator::new(
            constant_replay(20.0, 60.0),
            BufferKind::React.build(),
            Box::new(react_workloads::DataEncryption::new()),
        )
        .with_probe(Seconds::new(0.5));
        let out = sim.run();
        // Under strong surplus, REACT must have expanded beyond the LLB.
        let max_cap = out
            .voltage_series
            .iter()
            .map(|s| s.capacitance_f)
            .fold(0.0, f64::max);
        assert!(max_cap > 1e-3, "REACT never expanded: {max_cap}");
        assert!(out.metrics.ops_completed > 0);
    }

    #[test]
    fn mean_cycle_tracks_buffer_size() {
        // §2.1.1: larger buffers have longer uninterrupted periods.
        let run = |kind: BufferKind| {
            Simulator::new(
                constant_replay(2.0, 120.0),
                kind.build(),
                Box::new(react_workloads::DataEncryption::new()),
            )
            .run()
            .metrics
        };
        let small = run(BufferKind::Static770uF);
        let big = run(BufferKind::Static10mF);
        if small.boots > 0 && big.boots > 0 {
            assert!(big.mean_on_period >= small.mean_on_period);
        }
    }

    #[test]
    fn adaptive_kernel_takes_far_fewer_steps() {
        // A weak supply spends most of the run charging: the adaptive
        // kernel should collapse those phases by orders of magnitude.
        let run = |kernel: KernelMode| {
            Simulator::new(
                constant_replay(1.0, 120.0),
                BufferKind::Static10mF.build(),
                Box::new(react_workloads::DataEncryption::new()),
            )
            .with_kernel(kernel)
            .run()
            .metrics
        };
        let fixed = run(KernelMode::FixedDt);
        let adaptive = run(KernelMode::Adaptive);
        // The ON phase must stay at fine resolution, so the floor here
        // is set by the ~20 % duty cycle; charge phases collapse ~100×.
        assert!(
            adaptive.engine_steps * 3 < fixed.engine_steps,
            "adaptive {} vs fixed {} steps",
            adaptive.engine_steps,
            fixed.engine_steps
        );
        // …while agreeing on what actually happened.
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-9);
        assert_eq!(adaptive.boots, fixed.boots);
        assert!(rel(adaptive.on_time.get(), fixed.on_time.get()) < 0.02);
        let (a_ops, f_ops) = (adaptive.ops_completed as f64, fixed.ops_completed as f64);
        assert!(rel(a_ops, f_ops) < 0.02, "ops {a_ops} vs {f_ops}");
        assert!(adaptive.relative_conservation_error() < 1e-3);
    }

    #[test]
    fn adaptive_kernel_collapses_pure_charge_phases() {
        // 0.2 mW into 10 mF never reaches 3.3 V in 120 s: the whole run
        // is one long charge phase, which the adaptive kernel walks in
        // per-sample-window strides (~100× fewer iterations).
        let run = |kernel: KernelMode| {
            Simulator::new(
                constant_replay(0.2, 120.0),
                BufferKind::Static10mF.build(),
                Box::new(react_workloads::DataEncryption::new()),
            )
            .with_kernel(kernel)
            .run()
            .metrics
        };
        let fixed = run(KernelMode::FixedDt);
        let adaptive = run(KernelMode::Adaptive);
        assert_eq!(adaptive.boots, 0);
        assert_eq!(fixed.boots, 0);
        assert!(
            adaptive.engine_steps * 50 < fixed.engine_steps,
            "adaptive {} vs fixed {} steps",
            adaptive.engine_steps,
            fixed.engine_steps
        );
        // Final stored energy agrees to well under a percent.
        let (a, f) = (adaptive.final_stored.get(), fixed.final_stored.get());
        assert!((a - f).abs() < 0.005 * f, "stored {a} vs {f}");
    }

    #[test]
    fn monomorphized_simulator_accepts_concrete_types() {
        // Concrete buffer + concrete workload: fully static dispatch.
        let sim = Simulator::new(
            constant_replay(10.0, 20.0),
            react_buffers::StaticBuffer::static_770uf(),
            react_workloads::DataEncryption::new(),
        );
        let out = sim.run();
        assert!(out.metrics.ops_completed > 0);
    }

    #[test]
    fn sim_core_stepping_is_bit_identical_to_run() {
        // Driving the core incrementally (chunked advance_until, as the
        // fleet kernel does) must reproduce the monolithic run exactly:
        // same ops, same step count, same final stored energy to the
        // last bit.
        let build = || {
            Simulator::new(
                constant_replay(2.0, 60.0),
                BufferKind::React.build(),
                Box::new(react_workloads::DataEncryption::new()),
            )
        };
        let whole = build().run();
        let mut core = build().try_into_core().expect("bounded");
        let mut limit = Seconds::ZERO;
        while {
            limit += Seconds::new(3.7);
            core.advance_until(limit)
        } {}
        assert!(core.is_finished());
        let chunked = core.finish();
        assert_eq!(whole.metrics.ops_completed, chunked.metrics.ops_completed);
        assert_eq!(whole.metrics.engine_steps, chunked.metrics.engine_steps);
        assert_eq!(whole.metrics.boots, chunked.metrics.boots);
        assert_eq!(
            whole.metrics.final_stored.get().to_bits(),
            chunked.metrics.final_stored.get().to_bits()
        );
        assert_eq!(
            whole.metrics.on_time.get().to_bits(),
            chunked.metrics.on_time.get().to_bits()
        );
    }

    #[test]
    fn constant_load_workload() {
        let mut w = ConstantLoad::new(Amps::from_milli(1.0));
        let env = WorkloadEnv {
            now: Seconds::ZERO,
            dt: Seconds::new(0.001),
            rail_voltage: Volts::new(3.0),
            usable_energy: react_units::Joules::new(1.0),
            supports_longevity: false,
        };
        let d = w.step(&env);
        assert_eq!(d.mode, react_mcu::PowerMode::Active);
        assert!((d.peripheral_current.to_milli() - 1.0).abs() < 1e-12);
    }
}
