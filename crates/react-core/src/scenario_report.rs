//! The scenario figure-of-merit report — "the Table 2 of environments".
//!
//! The paper's Table 2 / Fig. 7 quantify each buffer design over a
//! fixed matrix of *recorded traces*. This module asks the same
//! question over the streaming scenario registry: for every named
//! environment, how much useful work does each buffer design get done
//! (the figure of merit), how responsive is it (on-time fraction,
//! longest outage survived), and how persistent (boots, controller
//! reconfigurations)? The registry expands into a full
//! environment × buffer × seed matrix, runs rayon-parallel through the
//! adaptive kernel, and reduces every cell to a [`ScenarioCell`].
//!
//! Adversarial scenarios additionally score *resilience*: each
//! attacked cell is paired with its benign twin
//! ([`Scenario::benign_twin`]) and reported as the fraction of the
//! figure of merit retained under attack ([`ResilienceRow`]), which
//! the CI gate bounds alongside the raw fields. The matrix itself is
//! crash-proof: every cell runs inside `catch_unwind`, so a panicking
//! model poisons that one cell ([`PoisonedCell`]) instead of taking
//! down the runner — and any poisoned cell fails the gate.
//!
//! Because every scenario is seeded and deterministic, the rendered
//! report is a *committable baseline*: CI regenerates it and diffs the
//! FoM / on-time / reconfiguration fields against
//! `ci/scenario-baseline.json` under explicit tolerances
//! ([`Tolerances`]), turning scenario behavior itself into a
//! regression gate the same way `ci/bench-baseline.json` gates engine
//! performance. Tolerances absorb the only legitimate cross-machine
//! variation (libm differences shifting a boot across a threshold);
//! anything larger is a semantic change that must ship with a baseline
//! refresh.

use rayon::prelude::*;
use react_buffers::BufferKind;
use react_env::dark_stats;
use react_telemetry::{FallbackReason, Regime, StepAttribution};
use react_units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::fom::{figure_of_merit, fom_per_hour};
use crate::metrics::RunOutcome;
use crate::report::TextTable;
use crate::scenario::{find_scenario, scenario_registry, Scenario};

/// The report's buffer axis: the paper's reactive designs plus the
/// static and adaptive-enable baselines.
pub const REPORT_BUFFERS: [BufferKind; 4] = [
    BufferKind::Static770uF,
    BufferKind::React,
    BufferKind::Morphy,
    BufferKind::Dewdrop,
];

/// The report's seed axis: the canonical registry streams (salt 0)
/// plus one re-seeded replicate of every stochastic environment.
pub const REPORT_SEEDS: [u64; 2] = [0, 1];

/// Power floor below which the environment counts as dark (outage) for
/// the environment-side statistics.
pub const DARK_FLOOR: Watts = Watts::new(10e-6);

/// One (environment, buffer, seed) cell of the report matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Registry scenario the cell derives from.
    pub scenario: String,
    /// Environment label.
    pub environment: String,
    /// Buffer design label.
    pub buffer: String,
    /// Workload label.
    pub workload: String,
    /// Converter model label.
    pub converter: String,
    /// Seed salt (0 = the canonical registry stream).
    pub seed: u64,
    /// Whether the detect-and-degrade defense was armed for this cell.
    #[serde(default)]
    pub defended: bool,
    /// Whether the kernel invariant auditor was armed for this cell.
    #[serde(default)]
    pub audited: bool,
    /// The paper's figure of merit (ops, or rx+tx for PF).
    pub fom: f64,
    /// FoM per deployed hour (comparable across horizons).
    pub fom_per_hour: f64,
    /// Fraction of the deployment the system was on (responsiveness).
    pub on_time_fraction: f64,
    /// Longest outage survived, in seconds (responsiveness under
    /// starvation; includes the cold start, excludes the final
    /// drain-out).
    pub longest_outage_survived_s: f64,
    /// Completed power cycles — every one is a checkpoint/restore in a
    /// transiently-powered system (persistence).
    pub boots: u64,
    /// Buffer-controller reconfigurations (persistence overhead).
    pub reconfigurations: u64,
    /// Kernel invariant-guard fallbacks (0 for every well-posed cell).
    #[serde(default)]
    pub guard_fallbacks: u64,
    /// Energy-attack alarms the defense raised (0 when undefended).
    #[serde(default)]
    pub detections: u64,
    /// Alarms that cleared with no post-raise suspicious activity.
    #[serde(default)]
    pub false_positives: u64,
    /// Reconfigurations commanded by the defense specifically.
    #[serde(default)]
    pub defensive_reconfigurations: u64,
    /// Hardware-drift fault events the fault plan injected (0 for
    /// every benign registry cell).
    #[serde(default)]
    pub faults_injected: u64,
    /// Committed strides the invariant auditor cross-checked (0 when
    /// unaudited).
    #[serde(default)]
    pub audit_checks: u64,
    /// Auditor divergences that degraded a fast path (0 for every
    /// benign cell — the fault suite asserts it).
    #[serde(default)]
    pub audit_trips: u64,
    /// Kernel iterations the engine spent on the cell (not gated:
    /// performance is `bench_gate`'s job; kept for the fast-path
    /// collapse column).
    pub engine_steps: u64,
    /// `horizon / dt` — what the fixed-`dt` reference kernel would
    /// have paid; `fixed_dt_steps / engine_steps` is the collapse
    /// factor the adaptive kernel achieved on this cell.
    pub fixed_dt_steps: u64,
    /// Wall-clock seconds this cell took to simulate. Diagnostic only:
    /// excluded from equality and from the conformance gate (absolute
    /// wall-clock does not transfer across runners — perf is
    /// `bench_gate`'s job), but printed per cell so matrix-dominating
    /// cells are visible in CI logs.
    pub elapsed_s: f64,
}

/// Equality ignores `elapsed_s`: two runs of the same deterministic
/// matrix are the same report no matter how long the cells took.
impl PartialEq for ScenarioCell {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario
            && self.environment == other.environment
            && self.buffer == other.buffer
            && self.workload == other.workload
            && self.converter == other.converter
            && self.seed == other.seed
            && self.defended == other.defended
            && self.audited == other.audited
            && self.fom == other.fom
            && self.fom_per_hour == other.fom_per_hour
            && self.on_time_fraction == other.on_time_fraction
            && self.longest_outage_survived_s == other.longest_outage_survived_s
            && self.boots == other.boots
            && self.reconfigurations == other.reconfigurations
            && self.guard_fallbacks == other.guard_fallbacks
            && self.detections == other.detections
            && self.false_positives == other.false_positives
            && self.defensive_reconfigurations == other.defensive_reconfigurations
            && self.faults_injected == other.faults_injected
            && self.audit_checks == other.audit_checks
            && self.audit_trips == other.audit_trips
            && self.engine_steps == other.engine_steps
            && self.fixed_dt_steps == other.fixed_dt_steps
    }
}

impl ScenarioCell {
    /// Stable identity within a report (`scenario/buffer/s<seed>`).
    pub fn id(&self) -> String {
        format!("{}/{}/s{}", self.scenario, self.buffer, self.seed)
    }

    /// The adaptive kernel's step-collapse factor on this cell.
    pub fn step_collapse(&self) -> f64 {
        if self.engine_steps == 0 {
            0.0
        } else {
            self.fixed_dt_steps as f64 / self.engine_steps as f64
        }
    }
}

/// A matrix cell whose run panicked. The runner catches the unwind,
/// records the cell here, and keeps going — one diverging model never
/// takes down the rest of the matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoisonedCell {
    /// Registry scenario the cell derives from.
    pub scenario: String,
    /// Buffer design label.
    pub buffer: String,
    /// Seed salt.
    pub seed: u64,
    /// The panic payload, when it was a string (it almost always is).
    pub message: String,
}

impl PoisonedCell {
    /// Stable identity, aligned with [`ScenarioCell::id`].
    pub fn id(&self) -> String {
        format!("{}/{}/s{}", self.scenario, self.buffer, self.seed)
    }
}

/// One attacked cell paired with its benign twin: how much of the
/// figure of merit survived the adversary.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceRow {
    /// Attacked registry scenario.
    pub scenario: String,
    /// Buffer design label.
    pub buffer: String,
    /// Seed salt.
    pub seed: u64,
    /// Whether the detect-and-degrade defense was armed.
    pub defended: bool,
    /// Figure of merit under attack.
    pub fom_attacked: f64,
    /// Figure of merit of the benign twin (same workload, horizon and
    /// converter, no adversary).
    pub fom_benign: f64,
    /// `fom_attacked / fom_benign` (1.0 when the twin did no work —
    /// an attack cannot lose work that was never available).
    pub retained: f64,
}

impl ResilienceRow {
    /// Stable identity of the attacked cell, aligned with
    /// [`ScenarioCell::id`].
    pub fn id(&self) -> String {
        format!("{}/{}/s{}", self.scenario, self.buffer, self.seed)
    }
}

/// One faulted cell paired with its healthy twin: how much of the
/// figure of merit survived the hardware-drift campaign, and whether
/// the invariant auditor caught the drift.
#[derive(Clone, Debug, PartialEq)]
pub struct SurvivalRow {
    /// Faulted registry scenario.
    pub scenario: String,
    /// Fault campaign label.
    pub campaign: String,
    /// Buffer design label.
    pub buffer: String,
    /// Seed salt.
    pub seed: u64,
    /// Whether the invariant auditor was armed.
    pub audited: bool,
    /// Fault events injected over the run.
    pub faults_injected: u64,
    /// Auditor divergences that degraded a fast path.
    pub audit_trips: u64,
    /// Figure of merit under the fault campaign.
    pub fom_faulted: f64,
    /// Figure of merit of the healthy twin (same environment, buffer,
    /// and workload, no faults, no auditor).
    pub fom_healthy: f64,
    /// `fom_faulted / fom_healthy` (1.0 when the twin did no work — a
    /// fault cannot lose work that was never available).
    pub retained: f64,
}

impl SurvivalRow {
    /// Stable identity of the faulted cell, aligned with
    /// [`ScenarioCell::id`].
    pub fn id(&self) -> String {
        format!("{}/{}/s{}", self.scenario, self.buffer, self.seed)
    }
}

/// Environment-side summary for one (scenario, seed): what the
/// environment *presented*, independent of any buffer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvSummary {
    /// Registry scenario.
    pub scenario: String,
    /// Environment label.
    pub environment: String,
    /// Converter model label.
    pub converter: String,
    /// Seed salt.
    pub seed: u64,
    /// Harvest horizon in seconds.
    pub horizon_s: f64,
    /// Native piecewise-constant segments over the horizon.
    pub segments: u64,
    /// Fraction of the horizon below the dark floor.
    pub dark_fraction: f64,
    /// Longest contiguous dark span the environment presented, in
    /// seconds (the outage a persistent buffer must survive).
    pub longest_dark_s: f64,
}

/// The full scenario report: environment summaries plus the
/// environment × buffer × seed cell matrix.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Per-(scenario, seed) environment statistics.
    pub environments: Vec<EnvSummary>,
    /// The cell matrix, in deterministic expansion order
    /// (scenario-major, then buffer, then seed).
    pub cells: Vec<ScenarioCell>,
    /// Cells whose run panicked (isolated, not fatal to the matrix).
    /// Empty for a healthy report; any entry fails the CI gate.
    #[serde(default)]
    pub poisoned: Vec<PoisonedCell>,
}

impl ScenarioReport {
    /// Looks up a cell by its [`ScenarioCell::id`].
    pub fn cell(&self, id: &str) -> Option<&ScenarioCell> {
        self.cells.iter().find(|c| c.id() == id)
    }

    /// Mean REACT-normalized FoM per buffer across all (environment,
    /// seed) rows where REACT did any work — Fig. 7's bars, taken over
    /// environments instead of recorded traces.
    pub fn react_normalized(&self) -> Vec<(String, f64)> {
        let buffers: Vec<String> = dedup_keys(self.cells.iter().map(|c| c.buffer.clone()));
        buffers
            .into_iter()
            .map(|buffer| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for react in self
                    .cells
                    .iter()
                    .filter(|c| c.buffer == BufferKind::React.label() && c.fom > 0.0)
                {
                    if let Some(this) = self.cells.iter().find(|c| {
                        c.buffer == buffer && c.scenario == react.scenario && c.seed == react.seed
                    }) {
                        sum += this.fom / react.fom;
                        n += 1;
                    }
                }
                (buffer, if n > 0 { sum / n as f64 } else { 0.0 })
            })
            .collect()
    }

    /// Renders the cell matrix as an aligned text table.
    pub fn render_cells(&self) -> TextTable {
        let mut table = TextTable::new(
            "Scenario figure-of-merit report (the Table 2 of environments)",
            &[
                "scenario",
                "buffer",
                "seed",
                "FoM",
                "FoM/h",
                "on %",
                "outage (s)",
                "boots",
                "reconf",
                "collapse",
                "wall (s)",
            ],
        );
        for c in &self.cells {
            table.push_row(&[
                c.scenario.clone(),
                c.buffer.clone(),
                c.seed.to_string(),
                format!("{:.0}", c.fom),
                format!("{:.1}", c.fom_per_hour),
                format!("{:.1}", 100.0 * c.on_time_fraction),
                format!("{:.0}", c.longest_outage_survived_s),
                c.boots.to_string(),
                c.reconfigurations.to_string(),
                format!("{:.0}×", c.step_collapse()),
                format!("{:.2}", c.elapsed_s),
            ]);
        }
        table
    }

    /// Sum of per-cell wall-clock — the single-core-equivalent cost of
    /// the matrix (the parallel build finishes faster; this is the
    /// number future perf work on the matrix moves).
    pub fn total_cell_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.elapsed_s).sum()
    }

    /// Renders the environment summaries as an aligned text table.
    pub fn render_environments(&self) -> TextTable {
        let mut table = TextTable::new(
            "Environments",
            &[
                "scenario",
                "environment",
                "converter",
                "seed",
                "horizon (h)",
                "segments",
                "dark %",
                "longest dark (s)",
            ],
        );
        for e in &self.environments {
            table.push_row(&[
                e.scenario.clone(),
                e.environment.clone(),
                e.converter.clone(),
                e.seed.to_string(),
                format!("{:.1}", e.horizon_s / 3600.0),
                e.segments.to_string(),
                format!("{:.1}", 100.0 * e.dark_fraction),
                format!("{:.0}", e.longest_dark_s),
            ]);
        }
        table
    }

    /// Pairs every attacked cell with its benign twin (same buffer and
    /// seed, [`Scenario::benign_twin`] scenario) and computes the
    /// fraction of the figure of merit that survived the adversary.
    /// Cells whose twin is absent from the report are skipped — a
    /// partial matrix cannot score resilience.
    pub fn resilience(&self) -> Vec<ResilienceRow> {
        self.cells
            .iter()
            .filter_map(|c| {
                let twin = find_scenario(&c.scenario)?.benign_twin()?;
                let benign = self
                    .cells
                    .iter()
                    .find(|b| b.scenario == twin && b.buffer == c.buffer && b.seed == c.seed)?;
                let retained = if benign.fom > 0.0 {
                    c.fom / benign.fom
                } else {
                    1.0
                };
                Some(ResilienceRow {
                    scenario: c.scenario.clone(),
                    buffer: c.buffer.clone(),
                    seed: c.seed,
                    defended: c.defended,
                    fom_attacked: c.fom,
                    fom_benign: benign.fom,
                    retained,
                })
            })
            .collect()
    }

    /// Pairs every faulted cell with its healthy twin (same buffer and
    /// seed, [`Scenario::healthy_twin`] scenario) and computes the
    /// fraction of the figure of merit that survived the fault
    /// campaign. Cells whose twin is absent from the report are
    /// skipped — a partial matrix cannot score survival. The twin may
    /// live in either report (fault reports carry their own healthy
    /// twins; the benign registry baseline carries the rest), so the
    /// lookup searches this report's cells only.
    pub fn survival(&self) -> Vec<SurvivalRow> {
        self.cells
            .iter()
            .filter_map(|c| {
                let s = find_scenario(&c.scenario)?;
                let twin = s.healthy_twin()?;
                let healthy = self
                    .cells
                    .iter()
                    .find(|h| h.scenario == twin && h.buffer == c.buffer && h.seed == c.seed)?;
                let retained = if healthy.fom > 0.0 {
                    c.fom / healthy.fom
                } else {
                    1.0
                };
                Some(SurvivalRow {
                    scenario: c.scenario.clone(),
                    campaign: s.fault.label().to_string(),
                    buffer: c.buffer.clone(),
                    seed: c.seed,
                    audited: c.audited,
                    faults_injected: c.faults_injected,
                    audit_trips: c.audit_trips,
                    fom_faulted: c.fom,
                    fom_healthy: healthy.fom,
                    retained,
                })
            })
            .collect()
    }

    /// Renders the FoM-retained-under-faults table.
    pub fn render_survival(&self) -> TextTable {
        let mut table = TextTable::new(
            "FoM retained under faults (faulted / healthy twin)",
            &[
                "scenario",
                "campaign",
                "buffer",
                "audited",
                "faults",
                "trips",
                "FoM",
                "healthy FoM",
                "retained",
            ],
        );
        for r in self.survival() {
            table.push_row(&[
                r.scenario.clone(),
                r.campaign.clone(),
                r.buffer.clone(),
                if r.audited { "yes" } else { "no" }.to_string(),
                r.faults_injected.to_string(),
                r.audit_trips.to_string(),
                format!("{:.0}", r.fom_faulted),
                format!("{:.0}", r.fom_healthy),
                format!("{:.3}", r.retained),
            ]);
        }
        table
    }

    /// Renders the FoM-retained-under-attack table.
    pub fn render_resilience(&self) -> TextTable {
        let mut table = TextTable::new(
            "FoM retained under attack (attacked / benign twin)",
            &[
                "scenario",
                "buffer",
                "seed",
                "defended",
                "FoM",
                "benign FoM",
                "retained",
            ],
        );
        for r in self.resilience() {
            table.push_row(&[
                r.scenario.clone(),
                r.buffer.clone(),
                r.seed.to_string(),
                if r.defended { "yes" } else { "no" }.to_string(),
                format!("{:.0}", r.fom_attacked),
                format!("{:.0}", r.fom_benign),
                format!("{:.3}", r.retained),
            ]);
        }
        table
    }

    /// Renders the Fig. 7-style REACT-normalized summary.
    pub fn render_normalized(&self) -> TextTable {
        let mut table = TextTable::new(
            "Mean FoM normalized to REACT (across environments × seeds)",
            &["buffer", "score"],
        );
        for (buffer, score) in self.react_normalized() {
            table.push_row(&[buffer, format!("{score:.3}")]);
        }
        table
    }
}

/// First-occurrence dedup preserving order.
fn dedup_keys(keys: impl Iterator<Item = String>) -> Vec<String> {
    let mut seen = Vec::new();
    for k in keys {
        if !seen.contains(&k) {
            seen.push(k);
        }
    }
    seen
}

/// The report's environment rows: the registry deduplicated by
/// (environment, workload, horizon, converter, defended) — two
/// registry entries that differ only in their declared buffer collapse
/// into one row, because the report supplies the buffer axis itself.
/// Defended/undefended twins are distinct rows: the defense changes
/// the simulation, not just the buffer.
pub fn report_scenarios() -> Vec<Scenario> {
    let mut rows: Vec<Scenario> = Vec::new();
    for s in scenario_registry() {
        let duplicate = rows.iter().any(|r| {
            r.env.label() == s.env.label()
                && r.workload == s.workload
                && r.horizon == s.horizon
                && r.converter == s.converter
                && r.defended == s.defended
        });
        if !duplicate {
            rows.push(*s);
        }
    }
    rows
}

/// Best-effort string form of a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Builds the report over the given environment rows × buffers × seed
/// salts. Cells run through the default adaptive kernel, fanned out
/// over worker threads exactly like the experiment matrix; results
/// come back in deterministic expansion order regardless of
/// parallelism.
pub fn build_report(
    scenarios: &[Scenario],
    buffers: &[BufferKind],
    seeds: &[u64],
    parallel: bool,
) -> ScenarioReport {
    build_report_with(scenarios, buffers, seeds, parallel, &|s| s.run())
}

/// [`build_report`] with an explicit cell runner. Every cell runs
/// inside `catch_unwind`: a panicking runner poisons that one cell
/// (recorded in [`ScenarioReport::poisoned`]) while the rest of the
/// matrix completes and reports normally.
pub fn build_report_with(
    scenarios: &[Scenario],
    buffers: &[BufferKind],
    seeds: &[u64],
    parallel: bool,
    runner: &(dyn Fn(&Scenario) -> RunOutcome + Sync),
) -> ScenarioReport {
    let mut runs: Vec<Scenario> = Vec::with_capacity(scenarios.len() * buffers.len() * seeds.len());
    for s in scenarios {
        for &buffer in buffers {
            for &seed in seeds {
                // Fully deterministic cells replay bit-identically
                // under every salt — rerunning them would only pad the
                // matrix with duplicates masquerading as replicates.
                if seed != 0 && !s.seed_salt_matters() {
                    continue;
                }
                runs.push(s.with_buffer(buffer).with_seed_salt(seed));
            }
        }
    }

    let cell = |s: &Scenario| -> Result<ScenarioCell, PoisonedCell> {
        let started = std::time::Instant::now();
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(s))).map_err(
            |payload| PoisonedCell {
                scenario: s.name.to_string(),
                buffer: s.buffer.label().to_string(),
                seed: s.seed_salt,
                message: panic_message(payload),
            },
        )?;
        let elapsed_s = started.elapsed().as_secs_f64();
        let m = &out.metrics;
        Ok(ScenarioCell {
            scenario: s.name.to_string(),
            environment: s.env.label().to_string(),
            buffer: s.buffer.label().to_string(),
            workload: s.workload.label().to_string(),
            converter: s.converter.label().to_string(),
            seed: s.seed_salt,
            defended: s.defended,
            audited: s.audited,
            fom: figure_of_merit(s.workload, m),
            fom_per_hour: fom_per_hour(s.workload, m, s.horizon),
            on_time_fraction: m.duty_cycle(),
            longest_outage_survived_s: m.max_off_period.get(),
            boots: m.boots,
            reconfigurations: m.reconfigurations,
            guard_fallbacks: m.guard_fallbacks,
            detections: m.detections,
            false_positives: m.false_positives,
            defensive_reconfigurations: m.defensive_reconfigurations,
            faults_injected: m.faults_injected,
            audit_checks: m.audit_checks,
            audit_trips: m.audit_trips,
            engine_steps: m.engine_steps,
            fixed_dt_steps: (s.horizon.get() / s.dt.get()).round() as u64,
            elapsed_s,
        })
    };
    let results: Vec<Result<ScenarioCell, PoisonedCell>> = if parallel {
        runs.par_iter().map(cell).collect()
    } else {
        runs.iter().map(cell).collect()
    };
    let mut cells = Vec::with_capacity(results.len());
    let mut poisoned = Vec::new();
    for r in results {
        match r {
            Ok(c) => cells.push(c),
            Err(p) => poisoned.push(p),
        }
    }

    // Environment summaries dedup on the environment's own salt
    // sensitivity (a deterministic environment presents the same dark
    // spans under every salt, even when its workload is seeded).
    let env_rows: Vec<Scenario> = scenarios
        .iter()
        .flat_map(|s| {
            seeds
                .iter()
                .filter(|&&seed| seed == 0 || s.env.salt_sensitive())
                .map(|&seed| s.with_seed_salt(seed))
        })
        .collect();
    let summary = |s: &Scenario| -> EnvSummary {
        let mut source = s.source();
        let stats = dark_stats(source.as_mut(), s.horizon, DARK_FLOOR);
        EnvSummary {
            scenario: s.name.to_string(),
            environment: s.env.label().to_string(),
            converter: s.converter.label().to_string(),
            seed: s.seed_salt,
            horizon_s: s.horizon.get(),
            segments: stats.segments,
            dark_fraction: stats.dark_fraction,
            longest_dark_s: stats.longest_dark_s,
        }
    };
    let environments: Vec<EnvSummary> = if parallel {
        env_rows.par_iter().map(summary).collect()
    } else {
        env_rows.iter().map(summary).collect()
    };

    ScenarioReport {
        environments,
        cells,
        poisoned,
    }
}

/// Builds the full default report: every deduplicated registry
/// environment × [`REPORT_BUFFERS`] × [`REPORT_SEEDS`].
pub fn build_full_report(parallel: bool) -> ScenarioReport {
    build_report(
        &report_scenarios(),
        &REPORT_BUFFERS,
        &REPORT_SEEDS,
        parallel,
    )
}

/// Builds the fault-campaign report: every [`FAULT_SCENARIOS`] entry
/// run *as declared* (its own buffer — faulted scenarios are not
/// expanded over a buffer axis, because each campaign's healthy twin
/// is buffer-specific), plus any healthy twins that live in the benign
/// registry, so [`ScenarioReport::survival`] can score every campaign
/// in-report. This is what `fault_report` renders and the
/// `fault-smoke` CI gate diffs against `ci/fault-baseline.json`.
///
/// [`FAULT_SCENARIOS`]: crate::scenario::FAULT_SCENARIOS
pub fn build_fault_report(horizon_cap: Option<Seconds>, parallel: bool) -> ScenarioReport {
    let mut runs: Vec<Scenario> = crate::scenario::fault_scenario_registry().to_vec();
    // Pull in healthy twins the fault registry itself doesn't carry.
    let twins: Vec<Scenario> = runs
        .iter()
        .filter_map(|s| s.healthy_twin())
        .filter_map(find_scenario)
        .copied()
        .collect();
    for twin in twins {
        if !runs.iter().any(|s| s.name == twin.name) {
            runs.push(twin);
        }
    }
    if let Some(cap) = horizon_cap {
        for s in &mut runs {
            s.horizon = s.horizon.min(cap);
        }
    }
    // Group by buffer so `build_report`'s buffer axis is the identity
    // for every run; merge preserves group-major deterministic order.
    let mut buffers: Vec<BufferKind> = Vec::new();
    for s in &runs {
        if !buffers.contains(&s.buffer) {
            buffers.push(s.buffer);
        }
    }
    let mut merged = ScenarioReport::default();
    for buffer in buffers {
        let group: Vec<Scenario> = runs
            .iter()
            .filter(|s| s.buffer == buffer)
            .copied()
            .collect();
        let r = build_report(&group, &[buffer], &[0], parallel);
        merged.environments.extend(r.environments);
        merged.cells.extend(r.cells);
        merged.poisoned.extend(r.poisoned);
    }
    merged
}

/// One report cell's step-attribution profile: where the engine's
/// steps (and the simulated seconds they covered) went, by
/// regime × fallback reason.
#[derive(Clone, Debug, Serialize)]
pub struct CellAttribution {
    /// [`ScenarioCell::id`] of the profiled cell.
    pub id: String,
    /// Registry scenario the cell derives from.
    pub scenario: String,
    /// Buffer design label.
    pub buffer: String,
    /// Seed salt.
    pub seed: u64,
    /// The cell's step-attribution profile.
    pub attr: StepAttribution,
}

/// [`build_report`] with per-cell [`StepAttribution`] recording on.
///
/// Runs the same matrix through the same `catch_unwind` harness (the
/// recorded metrics are bit-identical to the unrecorded run — the
/// telemetry bit-identity contract pinned by `tests/telemetry.rs`),
/// smuggling each cell's profile out through a ledger and returning
/// the profiles aligned with `report.cells` order. Poisoned cells have
/// no profile.
pub fn build_attributed_report(
    scenarios: &[Scenario],
    buffers: &[BufferKind],
    seeds: &[u64],
    parallel: bool,
) -> (ScenarioReport, Vec<CellAttribution>) {
    let ledger: std::sync::Mutex<Vec<(String, StepAttribution)>> =
        std::sync::Mutex::new(Vec::new());
    let runner = |s: &Scenario| -> RunOutcome {
        let (out, attr) = s.run_attributed();
        ledger.lock().expect("attribution ledger poisoned").push((
            format!("{}/{}/s{}", s.name, s.buffer.label(), s.seed_salt),
            attr,
        ));
        out
    };
    let report = build_report_with(scenarios, buffers, seeds, parallel, &runner);
    let ledger = ledger.into_inner().expect("attribution ledger poisoned");
    let attributions = report
        .cells
        .iter()
        .filter_map(|c| {
            let id = c.id();
            ledger
                .iter()
                .find(|(lid, _)| *lid == id)
                .map(|(_, attr)| CellAttribution {
                    id: id.clone(),
                    scenario: c.scenario.clone(),
                    buffer: c.buffer.clone(),
                    seed: c.seed,
                    attr: attr.clone(),
                })
        })
        .collect();
    (report, attributions)
}

/// Folds every cell profile into one matrix-wide [`StepAttribution`].
pub fn merged_attribution(cells: &[CellAttribution]) -> StepAttribution {
    let mut merged = StepAttribution::default();
    for c in cells {
        merged.merge(&c.attr);
    }
    merged
}

/// Renders the "where the steps go" table: one row per cell, ranked by
/// fine-step count, naming each cell's dominant fine-step class. The
/// top rows of this table are the matrix's step sinks — the cells (and
/// kernel reasons) any engine perf work should target first.
pub fn render_attribution(cells: &[CellAttribution]) -> TextTable {
    let mut table = TextTable::new(
        "Where the steps go (cells ranked by fine-step count)",
        &[
            "cell",
            "steps",
            "fine",
            "fine %",
            "top fine class",
            "class steps",
            "class sim (s)",
        ],
    );
    let mut ranked: Vec<&CellAttribution> = cells.iter().collect();
    ranked.sort_by(|a, b| {
        b.attr
            .fine_steps()
            .cmp(&a.attr.fine_steps())
            .then_with(|| a.id.cmp(&b.id))
    });
    for c in ranked {
        let total = c.attr.total_steps();
        let fine = c.attr.fine_steps();
        let share = if total == 0 {
            0.0
        } else {
            100.0 * fine as f64 / total as f64
        };
        let (label, steps, seconds) = match c.attr.top_fine_row() {
            Some(row) => (
                row.label(),
                row.steps.to_string(),
                format!("{:.1}", row.seconds),
            ),
            None => ("-".to_string(), "0".to_string(), "0.0".to_string()),
        };
        table.push_row(&[
            c.id.clone(),
            total.to_string(),
            fine.to_string(),
            format!("{share:.1}"),
            label,
            steps,
            seconds,
        ]);
    }
    table
}

/// Noise floor for a cell to qualify as a class's hottest sink: below
/// this many steps a cell's density says nothing (a 120 s trace cell
/// with 100 steps posts a huge steps/hour figure on no evidence).
const MIN_SINK_STEPS: u64 = 500;

/// Renders the kernel-overhead sink table: one row per populated
/// *fallback* class (regime × fine-step reason, `mcu-active` excluded
/// — fine-stepping while the MCU computes is the workload, not
/// overhead), with the class's matrix-wide step total and its hottest
/// **benign** cell. Adversarial cells are excluded from the hottest
/// column because their stepping is attacker-driven (the resilience
/// table scores that); the remaining cells rank by fine-step *density*
/// (steps per simulated hour, over a 500-step noise floor),
/// so a 15-minute plateau cell burning 900 guard-band steps outranks a
/// week-long cell that merely accumulates more. This is the table that
/// names `react-plateau-sc/REACT` as the guard-band (and
/// no-closed-form) sink and the stormy-day Morphy cells as the idle
/// fine-stepping sinks.
pub fn render_class_sinks(cells: &[CellAttribution]) -> TextTable {
    let mut table = TextTable::new(
        "Kernel-overhead sinks by class (hottest benign cell = most steps per simulated hour)",
        &[
            "class",
            "steps",
            "share %",
            "hottest benign cell",
            "cell steps",
            "cell steps/h",
        ],
    );
    let matrix_total = merged_attribution(cells).total_steps().max(1);
    // Cells whose registry scenario runs any `attack/*` environment
    // (stateful adversary or fixed-schedule wrapper alike) never
    // qualify as a sink; synthetic cells outside the registry count as
    // benign.
    let benign = |c: &CellAttribution| {
        find_scenario(&c.scenario).is_none_or(|s| !s.env.label().starts_with("attack/"))
    };
    struct ClassSink<'a> {
        label: String,
        total: u64,
        hottest: Option<(&'a CellAttribution, u64, f64)>,
    }
    let mut classes: Vec<ClassSink<'_>> = Vec::new();
    for &regime in &Regime::ALL {
        for &reason in &FallbackReason::ALL {
            if reason == FallbackReason::McuActive {
                continue;
            }
            let mut class_total = 0u64;
            let mut hottest: Option<(&CellAttribution, u64, f64)> = None;
            for c in cells {
                let bin = c.attr.bin(regime, Some(reason));
                class_total += bin.steps;
                if bin.steps < MIN_SINK_STEPS || !benign(c) {
                    continue;
                }
                let hours = c.attr.total_seconds() / 3600.0;
                let rate = if hours > 0.0 {
                    bin.steps as f64 / hours
                } else {
                    0.0
                };
                let beats = match hottest {
                    None => true,
                    // Tie on rate falls back to the lower cell id so the
                    // table is deterministic across thread schedules.
                    Some((prev, _, prev_rate)) => {
                        rate > prev_rate || (rate == prev_rate && c.id < prev.id)
                    }
                };
                if beats {
                    hottest = Some((c, bin.steps, rate));
                }
            }
            if class_total > 0 {
                classes.push(ClassSink {
                    label: format!("{} fine:{}", regime.label(), reason.label()),
                    total: class_total,
                    hottest,
                });
            }
        }
    }
    classes.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.label.cmp(&b.label)));
    for sink in classes {
        let (id, steps, rate) = match sink.hottest {
            Some((cell, steps, rate)) => (cell.id.clone(), steps.to_string(), format!("{rate:.0}")),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        table.push_row(&[
            sink.label,
            sink.total.to_string(),
            format!("{:.2}", 100.0 * sink.total as f64 / matrix_total as f64),
            id,
            steps,
            rate,
        ]);
    }
    table
}

/// Per-field tolerances for the CI conformance gate. Defaults absorb
/// cross-platform libm drift (a boot sliding across a threshold, a few
/// operations gained or lost at a segment edge) without letting real
/// behavioral changes through.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Relative tolerance on the figure of merit.
    pub fom_rel: f64,
    /// Absolute slack on the figure of merit (for near-zero cells).
    pub fom_abs: f64,
    /// Absolute tolerance on the on-time fraction.
    pub on_time_abs: f64,
    /// Relative tolerance on counters (boots, reconfigurations).
    pub count_rel: f64,
    /// Absolute slack on counters.
    pub count_abs: f64,
    /// Relative tolerance on the longest outage survived.
    pub outage_rel: f64,
    /// Absolute slack on the longest outage survived, in seconds.
    pub outage_abs: f64,
    /// Absolute tolerance on the FoM-retained-under-attack ratio.
    pub retained_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self {
            fom_rel: 0.05,
            fom_abs: 3.0,
            on_time_abs: 0.02,
            count_rel: 0.05,
            count_abs: 2.0,
            outage_rel: 0.05,
            outage_abs: 2.0,
            retained_abs: 0.05,
        }
    }
}

impl Tolerances {
    /// Every tolerance scaled by `factor` (the gate's CLI knob).
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            fom_rel: self.fom_rel * factor,
            fom_abs: self.fom_abs * factor,
            on_time_abs: self.on_time_abs * factor,
            count_rel: self.count_rel * factor,
            count_abs: self.count_abs * factor,
            outage_rel: self.outage_rel * factor,
            outage_abs: self.outage_abs * factor,
            retained_abs: self.retained_abs * factor,
        }
    }
}

fn within(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()) + abs
}

/// Diffs `current` against `baseline` under `tol`, returning one
/// human-readable violation per out-of-tolerance field or missing
/// cell (empty = conformant). Cells present only in `current` are new
/// scenarios, not violations — they flow into the next committed
/// baseline.
pub fn compare_reports(
    baseline: &ScenarioReport,
    current: &ScenarioReport,
    tol: &Tolerances,
) -> Vec<String> {
    let mut violations = Vec::new();
    // Poisoned cells are unconditional failures: a panicking model is
    // never within tolerance of anything.
    for p in &current.poisoned {
        violations.push(format!("{}: cell poisoned: {}", p.id(), p.message));
    }
    // Resilience is gated on the derived ratio, not just the raw FoM:
    // the attacked and benign cells can drift together within their
    // own tolerances while the defense's value quietly evaporates.
    let current_resilience = current.resilience();
    for base in baseline.resilience() {
        let id = base.id();
        let Some(cur) = current_resilience.iter().find(|r| r.id() == id) else {
            // The attacked or twin cell is gone; the missing-cell check
            // below reports which.
            continue;
        };
        if !within(cur.retained, base.retained, 0.0, tol.retained_abs) {
            violations.push(format!(
                "{id}: FoM retained {:.3} vs baseline {:.3} (±{:.3})",
                cur.retained, base.retained, tol.retained_abs
            ));
        }
    }
    // Fault survival is gated the same way: the faulted and healthy
    // cells can drift together within their own tolerances while the
    // degradation story quietly changes.
    let current_survival = current.survival();
    for base in baseline.survival() {
        let id = base.id();
        let Some(cur) = current_survival.iter().find(|r| r.id() == id) else {
            continue;
        };
        if !within(cur.retained, base.retained, 0.0, tol.retained_abs) {
            violations.push(format!(
                "{id}: FoM retained under faults {:.3} vs baseline {:.3} (±{:.3})",
                cur.retained, base.retained, tol.retained_abs
            ));
        }
        // An audited campaign that stops tripping (or a benign twin
        // that starts) is a detection regression, not noise.
        if (base.audit_trips > 0) != (cur.audit_trips > 0) {
            violations.push(format!(
                "{id}: audit trips {} vs baseline {} (detection flipped)",
                cur.audit_trips, base.audit_trips
            ));
        }
    }
    for base in &baseline.cells {
        let id = base.id();
        let Some(cur) = current.cell(&id) else {
            violations.push(format!("{id}: cell missing from current report"));
            continue;
        };
        if !within(cur.fom, base.fom, tol.fom_rel, tol.fom_abs) {
            violations.push(format!(
                "{id}: FoM {:.1} vs baseline {:.1} (±{:.0}% + {:.0})",
                cur.fom,
                base.fom,
                100.0 * tol.fom_rel,
                tol.fom_abs
            ));
        }
        if !within(
            cur.on_time_fraction,
            base.on_time_fraction,
            0.0,
            tol.on_time_abs,
        ) {
            violations.push(format!(
                "{id}: on-time {:.3} vs baseline {:.3} (±{:.3})",
                cur.on_time_fraction, base.on_time_fraction, tol.on_time_abs
            ));
        }
        for (field, cur_n, base_n) in [
            ("boots", cur.boots, base.boots),
            (
                "reconfigurations",
                cur.reconfigurations,
                base.reconfigurations,
            ),
            ("faults-injected", cur.faults_injected, base.faults_injected),
            ("audit-trips", cur.audit_trips, base.audit_trips),
        ] {
            if !within(cur_n as f64, base_n as f64, tol.count_rel, tol.count_abs) {
                violations.push(format!(
                    "{id}: {field} {cur_n} vs baseline {base_n} (±{:.0}% + {:.0})",
                    100.0 * tol.count_rel,
                    tol.count_abs
                ));
            }
        }
        if !within(
            cur.longest_outage_survived_s,
            base.longest_outage_survived_s,
            tol.outage_rel,
            tol.outage_abs,
        ) {
            violations.push(format!(
                "{id}: longest outage {:.1} s vs baseline {:.1} s (±{:.0}% + {:.0} s)",
                cur.longest_outage_survived_s,
                base.longest_outage_survived_s,
                100.0 * tol.outage_rel,
                tol.outage_abs
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::find_scenario;
    use react_units::Seconds;

    fn tiny_report() -> ScenarioReport {
        // One short scenario, two buffers, one seed: fast enough for a
        // unit test while exercising the whole reduction path.
        let mut s = *find_scenario("rf-ge-hour-10mf-de").expect("registered");
        s.horizon = Seconds::new(240.0);
        build_report(
            &[s],
            &[BufferKind::Static10mF, BufferKind::React],
            &[0],
            false,
        )
    }

    #[test]
    fn report_reduces_cells_and_environments() {
        let r = tiny_report();
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.environments.len(), 1);
        for c in &r.cells {
            assert!(c.fom >= 0.0);
            assert!((0.0..=1.0).contains(&c.on_time_fraction));
            assert!(c.fixed_dt_steps > 0);
        }
        assert!(r.environments[0].segments > 0);
        assert!(r.cell(&r.cells[0].id()).is_some());
        assert!(r.cell("no/such/cell").is_none());
    }

    #[test]
    fn report_is_deterministic_and_parallel_invariant() {
        let mut s = *find_scenario("rf-ge-hour-10mf-de").expect("registered");
        s.horizon = Seconds::new(240.0);
        let serial = build_report(&[s], &[BufferKind::Static10mF], &[0, 1], false);
        let parallel = build_report(&[s], &[BufferKind::Static10mF], &[0, 1], true);
        assert_eq!(serial, parallel);
        // Different seeds genuinely re-seed the stochastic field.
        assert_ne!(serial.cells[0].fom, serial.cells[1].fom);
    }

    #[test]
    fn self_comparison_is_conformant_and_drift_is_caught() {
        let r = tiny_report();
        assert!(compare_reports(&r, &r, &Tolerances::default()).is_empty());

        let mut drifted = r.clone();
        drifted.cells[0].fom *= 1.5;
        drifted.cells[0].fom += 50.0;
        drifted.cells[1].on_time_fraction += 0.5;
        let violations = compare_reports(&r, &drifted, &Tolerances::default());
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("FoM"), "{violations:?}");
        assert!(violations[1].contains("on-time"), "{violations:?}");
        // A looser gate lets the on-time drift through but not the FoM.
        let loose = compare_reports(&r, &drifted, &Tolerances::default().scaled(30.0));
        assert!(loose.len() < violations.len(), "{loose:?}");

        let mut missing = r.clone();
        missing.cells.remove(0);
        let violations = compare_reports(&r, &missing, &Tolerances::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"), "{violations:?}");
    }

    #[test]
    fn report_rows_dedup_buffer_only_registry_twins() {
        let rows = report_scenarios();
        // The two rf-ge-hour entries differ only in buffer: one row.
        assert_eq!(
            rows.iter()
                .filter(|s| s.name.starts_with("rf-ge-hour"))
                .count(),
            1
        );
        // Same environment with a different workload/horizon stays.
        assert_eq!(
            rows.iter()
                .filter(|s| s.env.label() == "mobility/commuter")
                .count(),
            2
        );
    }

    #[test]
    fn deterministic_cells_skip_salt_replicates() {
        // Paper trace + DE: neither environment nor workload draws on
        // the salt — one cell and one env row despite two seeds.
        let paper = *find_scenario("paper-rfcart-de").expect("registered");
        assert!(!paper.seed_salt_matters());
        let r = build_report(&[paper], &[BufferKind::Static770uF], &[0, 1], false);
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.environments.len(), 1);
        // Mobility + PF: the environment is deterministic but the
        // packet arrivals are seeded — cells replicate, env rows don't.
        let mut commute = *find_scenario("mobility-week-pf").expect("registered");
        commute.horizon = Seconds::new(600.0);
        assert!(commute.seed_salt_matters());
        let r = build_report(&[commute], &[BufferKind::Static770uF], &[0, 1], false);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.environments.len(), 1);
    }

    #[test]
    fn report_rows_keep_defended_twins() {
        let rows = report_scenarios();
        for name in [
            "attack-bootstrike-hour-de",
            "attack-bootstrike-hour-de-defended",
            "attack-baitswitch-hour-de",
            "attack-baitswitch-hour-de-defended",
        ] {
            assert!(
                rows.iter().any(|s| s.name == name),
                "{name} collapsed in dedup"
            );
        }
    }

    #[test]
    fn poisoned_cells_are_isolated_and_gated() {
        let mut s = *find_scenario("rf-ge-hour-10mf-de").expect("registered");
        s.horizon = Seconds::new(240.0);
        let healthy = tiny_report();
        let r = build_report_with(
            &[s],
            &[BufferKind::Static10mF, BufferKind::React],
            &[0],
            true,
            &|s| {
                if s.buffer == BufferKind::React {
                    panic!("injected fault: buffer model diverged");
                }
                s.run()
            },
        );
        // The healthy cell survived its poisoned neighbour.
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells[0].buffer, BufferKind::Static10mF.label());
        assert_eq!(r.poisoned.len(), 1);
        assert_eq!(r.poisoned[0].buffer, BufferKind::React.label());
        assert!(r.poisoned[0].message.contains("injected fault"));
        // The gate flags both the poisoning and the hole it left.
        let violations = compare_reports(&healthy, &r, &Tolerances::default());
        assert!(
            violations.iter().any(|v| v.contains("poisoned")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("missing")),
            "{violations:?}"
        );
    }

    #[test]
    fn resilience_pairs_attacked_cells_with_their_benign_twin() {
        let horizon = Seconds::new(240.0);
        let mut benign = *find_scenario("rf-ge-hour-react-de").expect("registered");
        let mut attacked = *find_scenario("attack-bootstrike-hour-de").expect("registered");
        let mut defended =
            *find_scenario("attack-bootstrike-hour-de-defended").expect("registered");
        benign.horizon = horizon;
        attacked.horizon = horizon;
        defended.horizon = horizon;
        let r = build_report(
            &[benign, attacked, defended],
            &[BufferKind::React],
            &[0],
            false,
        );
        let rows = r.resilience();
        assert_eq!(rows.len(), 2, "{rows:?}");
        assert!(rows.iter().any(|row| row.defended));
        assert!(rows.iter().any(|row| !row.defended));
        for row in &rows {
            assert!(row.fom_benign > 0.0, "{row:?}");
            assert!(row.retained >= 0.0, "{row:?}");
        }
        assert!(!r.render_resilience().render().is_empty());
        // Shifting the attacked FoM shifts the retained ratio past the
        // gate even when scaled tolerances would forgive the raw FoM.
        let mut drifted = r.clone();
        let idx = drifted
            .cells
            .iter()
            .position(|c| c.scenario == "attack-bootstrike-hour-de")
            .expect("attacked cell present");
        drifted.cells[idx].fom = drifted.cells[idx].fom * 3.0 + 100.0;
        let violations = compare_reports(&r, &drifted, &Tolerances::default());
        assert!(
            violations.iter().any(|v| v.contains("retained")),
            "{violations:?}"
        );
    }

    #[test]
    fn fault_survival_pairs_faulted_cells_with_their_healthy_twin() {
        let horizon = Seconds::new(600.0);
        let mut audited =
            *find_scenario("fault-fade-offset-hour-10mf-de-audited").expect("registered");
        let mut unaudited = *find_scenario("fault-fade-offset-hour-10mf-de").expect("registered");
        let mut healthy = *find_scenario("rf-ge-hour-10mf-de").expect("registered");
        audited.horizon = horizon;
        unaudited.horizon = horizon;
        healthy.horizon = horizon;
        let r = build_report(
            &[audited, unaudited, healthy],
            &[BufferKind::Static10mF],
            &[0],
            false,
        );
        let rows = r.survival();
        assert_eq!(rows.len(), 2, "{rows:?}");
        for row in &rows {
            assert_eq!(row.campaign, "fade-offset");
            assert!(row.faults_injected >= 1, "{row:?}");
            assert!(row.fom_healthy > 0.0, "{row:?}");
            assert!(row.retained >= 0.0, "{row:?}");
        }
        let audited_row = rows.iter().find(|r| r.audited).expect("audited row");
        assert!(audited_row.audit_trips >= 1, "{audited_row:?}");
        assert!(!r.render_survival().render().is_empty());
        // An audited campaign that stops tripping is a detection
        // regression the gate must flag, whatever the FoM does.
        let mut drifted = r.clone();
        let idx = drifted
            .cells
            .iter()
            .position(|c| c.audited)
            .expect("audited cell present");
        drifted.cells[idx].audit_trips = 0;
        let violations = compare_reports(&r, &drifted, &Tolerances::default());
        assert!(
            violations.iter().any(|v| v.contains("detection flipped")),
            "{violations:?}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let r = tiny_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn react_normalization_over_environments() {
        let r = tiny_report();
        let scores = r.react_normalized();
        let react = scores
            .iter()
            .find(|(b, _)| b == BufferKind::React.label())
            .expect("REACT scored");
        assert!((react.1 - 1.0).abs() < 1e-12, "{scores:?}");
    }
}
