//! Plain-text table rendering and CSV output for the bench harnesses.

use std::fmt::Write as _;

/// A simple column-aligned text table (the benches print the paper's
/// tables with it).
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn push_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for string-slice rows.
    pub fn push_strs(&mut self, cells: &[&str]) {
        self.push_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new("Table X", &["Buffer", "RF Cart", "Mean"]);
        t.push_strs(&["770 µF", "1275", "2317"]);
        t.push_strs(&["REACT", "1711", "3063"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== Table X =="));
        assert!(s.contains("Buffer"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus title.
        assert_eq!(lines.len(), 5);
        // Numbers right-aligned under their headers.
        assert!(lines[3].ends_with("2317"));
    }

    #[test]
    fn csv_output() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("Buffer,RF Cart,Mean\n"));
        assert!(csv.contains("REACT,1711,3063"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("", &["a"]);
        t.push_strs(&["x,y"]);
        t.push_strs(&["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.push_strs(&["only-a"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("only-a"));
    }
}
