//! Named scenario registry: environment × buffer × workload × horizon.
//!
//! The paper's evaluation is a fixed trace × buffer matrix; the
//! registry generalizes it into *named deployments* over streaming
//! environments — generative `react-env` models with week-long (or
//! unbounded) horizons, adversarial attack fields, and the paper's own
//! recorded traces wrapped as [`TraceSource`] instances of the same
//! abstraction. Each [`Scenario`] is a complete, reproducible run
//! description; [`run_scenarios`] expands a selection into the same
//! rayon-parallel execution the experiment matrix uses.
//!
//! Long-horizon scenarios pick a coarser fine-step (10 ms instead of
//! 1 ms) — the adaptive kernel strides MCU-off spans analytically
//! either way, so the fine step only paces MCU-on execution.
//!
//! [`TraceSource`]: react_harvest::TraceSource

use rayon::prelude::*;
use react_buffers::defense::DefenseConfig;
use react_buffers::BufferKind;
use react_circuit::FaultCampaign;
use react_env::{
    AdaptiveAttack, AttackPolicy, Diurnal, EnergyAttack, MarkovRf, Mobility, PowerSource,
    TraceSource,
};
use react_harvest::{ConverterKind, PowerReplay};
use react_telemetry::{RingRecorder, StepAttribution};
use react_traces::{paper_trace, PaperTrace};
use react_units::{Seconds, Watts};

use crate::audit::AuditConfig;
use crate::metrics::RunOutcome;
use crate::sim::{KernelMode, Simulator};
use crate::WorkloadKind;

/// One week of simulated deployment time.
pub const WEEK: Seconds = Seconds::new(7.0 * 86_400.0);

/// One day of simulated deployment time.
pub const DAY: Seconds = Seconds::new(86_400.0);

/// Seed base for registry environments (each model offsets it).
const ENV_SEED: u64 = 0xE57_2026_0000;

/// Folds the report matrix's seed salt into a base seed. Salt 0 is the
/// identity, preserving every canonical registry stream. All salted
/// seeds — environment models and workload event streams alike — go
/// through this one mix, so the seed axis can never half-apply.
#[inline]
fn salt_seed(base: u64, salt: u64) -> u64 {
    base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The registry's named environment classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// Diurnal solar, mostly clear skies (20 mW clear-sky peak).
    DiurnalClear,
    /// Diurnal solar under heavy broken cloud (12 mW peak, long
    /// overcast dwells at 8 % transmission).
    DiurnalStormy,
    /// Gilbert–Elliott ambient-RF field, office-density bursts.
    RfGilbertElliott,
    /// Sparse RF field: short weak bursts separated by minutes-long
    /// outages (the persistence stress case).
    RfSparse,
    /// Daily commuter mobility schedule (home → walk → subway → office,
    /// repeated every 24 h).
    MobilityCommuter,
    /// The office RF field under periodic 15-minute blackout attacks
    /// every hour (starvation adversary).
    AttackBlackout,
    /// A sparse field under spoofed 25 mW bait bursts followed by
    /// two-minute blackouts (reconfiguration-bait adversary).
    AttackSpoof,
    /// The office RF field under a *stateful* boot-triggered adversary:
    /// it observes the victim's boots through the feedback channel and
    /// blacks out the field just after each cold start.
    AttackBootStrike,
    /// The office RF field under a stateful spoof-baiter: a fake 25 mW
    /// field whenever the victim is down, cut to a blackout the moment
    /// the victim commits (first reconfiguration or radio-on).
    AttackBaitSwitch,
    /// The office RF field under a budget-limited boot-triggered
    /// adversary rationing a finite pool of blackout seconds.
    AttackBudget,
    /// A deterministic near-threshold field: a charge burst followed by
    /// a trickle chosen so REACT's equilibrium parks inside the ±20 mV
    /// comparator guard band — the adaptive kernel's worst case, pinned
    /// here as a registry cell before anyone optimizes the fallback.
    NearThresholdPlateau,
    /// A recorded paper trace wrapped as a streaming source.
    Paper(PaperTrace),
}

impl EnvKind {
    /// Display label for listings.
    pub fn label(self) -> &'static str {
        match self {
            EnvKind::DiurnalClear => "diurnal/clear",
            EnvKind::DiurnalStormy => "diurnal/stormy",
            EnvKind::RfGilbertElliott => "rf/gilbert-elliott",
            EnvKind::RfSparse => "rf/sparse",
            EnvKind::MobilityCommuter => "mobility/commuter",
            EnvKind::AttackBlackout => "attack/blackout",
            EnvKind::AttackSpoof => "attack/spoof",
            EnvKind::AttackBootStrike => "attack/boot-strike",
            EnvKind::AttackBaitSwitch => "attack/bait-switch",
            EnvKind::AttackBudget => "attack/budgeted",
            EnvKind::NearThresholdPlateau => "mobility/near-threshold",
            EnvKind::Paper(p) => p.label(),
        }
    }

    /// Whether this environment contains a *stateful* adversary that
    /// needs the simulator's victim-event feedback channel open.
    /// (The fixed-schedule attack wrappers don't observe the victim.)
    pub fn adversarial(self) -> bool {
        matches!(
            self,
            EnvKind::AttackBootStrike | EnvKind::AttackBaitSwitch | EnvKind::AttackBudget
        )
    }

    /// Builds a fresh seeded source for this environment. Every call
    /// returns an identical stream (fixed seeds), so scenario runs are
    /// reproducible end to end.
    pub fn build(self) -> Box<dyn PowerSource> {
        self.build_salted(0)
    }

    /// Whether this environment's stream actually changes under a
    /// seed salt. Deterministic environments — mobility schedules and
    /// recorded traces — ignore the salt entirely, so re-salting them
    /// replays the identical stream.
    pub fn salt_sensitive(self) -> bool {
        !matches!(
            self,
            EnvKind::MobilityCommuter | EnvKind::NearThresholdPlateau | EnvKind::Paper(_)
        )
    }

    /// Builds this environment with its base seed perturbed by `salt` —
    /// the report matrix's seed axis. Salt 0 is exactly [`EnvKind::build`]
    /// (the stream every pre-existing test and baseline pins down);
    /// other salts re-seed the stochastic models while deterministic
    /// environments (mobility schedules, recorded traces) ignore the
    /// salt entirely.
    pub fn build_salted(self, salt: u64) -> Box<dyn PowerSource> {
        let seed = |base: u64| salt_seed(base, salt);
        match self {
            EnvKind::DiurnalClear => Box::new(
                Diurnal::new(self.label(), Watts::from_milli(20.0), seed(ENV_SEED + 1))
                    .with_clouds(Seconds::new(1800.0), Seconds::new(240.0), 0.25),
            ),
            EnvKind::DiurnalStormy => Box::new(
                Diurnal::new(self.label(), Watts::from_milli(12.0), seed(ENV_SEED + 2))
                    .with_clouds(Seconds::new(400.0), Seconds::new(900.0), 0.08),
            ),
            EnvKind::RfGilbertElliott | EnvKind::RfSparse => {
                Box::new(rf_field_salted(self, salt).expect("RF env"))
            }
            EnvKind::MobilityCommuter => Box::new(Mobility::cyclic(
                self.label(),
                vec![
                    // Overnight at home: dim ambient light.
                    (Seconds::new(0.0), Watts::from_micro(50.0)),
                    // 07:00 walk to the station.
                    (Seconds::new(7.0 * 3600.0), Watts::from_milli(4.0)),
                    // 07:30 subway: nearly dark.
                    (Seconds::new(7.5 * 3600.0), Watts::from_micro(2.0)),
                    // 08:30 office desk by the window.
                    (Seconds::new(8.5 * 3600.0), Watts::from_micro(300.0)),
                    // 17:00 commute home.
                    (Seconds::new(17.0 * 3600.0), Watts::from_milli(4.0)),
                    // 17:30 subway again.
                    (Seconds::new(17.5 * 3600.0), Watts::from_micro(2.0)),
                    // 18:30 evening at home.
                    (Seconds::new(18.5 * 3600.0), Watts::from_micro(80.0)),
                ],
                DAY,
            )),
            EnvKind::AttackBlackout => {
                let inner = rf_field_salted(EnvKind::RfGilbertElliott, salt).expect("RF env");
                Box::new(EnergyAttack::new(inner).with_blackout(
                    Seconds::new(3600.0),
                    Seconds::new(600.0),
                    Seconds::new(900.0),
                ))
            }
            EnvKind::AttackSpoof => {
                let inner = rf_field_salted(EnvKind::RfSparse, salt).expect("RF env");
                Box::new(
                    EnergyAttack::new(inner)
                        .with_spoof(
                            Seconds::new(600.0),
                            Seconds::new(0.0),
                            Seconds::new(3.0),
                            Watts::from_milli(25.0),
                        )
                        .with_blackout(Seconds::new(600.0), Seconds::new(3.0), Seconds::new(120.0)),
                )
            }
            EnvKind::AttackBootStrike => {
                let inner = rf_field_salted(EnvKind::RfGilbertElliott, salt).expect("RF env");
                Box::new(AdaptiveAttack::new(
                    inner,
                    AttackPolicy::BootTriggered {
                        delay: Seconds::new(0.5),
                        strike: Seconds::new(45.0),
                        rearm: Seconds::new(15.0),
                    },
                ))
            }
            EnvKind::AttackBaitSwitch => {
                let inner = rf_field_salted(EnvKind::RfGilbertElliott, salt).expect("RF env");
                Box::new(AdaptiveAttack::new(
                    inner,
                    AttackPolicy::SpoofBait {
                        bait: Watts::from_milli(25.0),
                        blackout: Seconds::new(90.0),
                        rearm: Seconds::new(30.0),
                    },
                ))
            }
            EnvKind::AttackBudget => {
                let inner = rf_field_salted(EnvKind::RfGilbertElliott, salt).expect("RF env");
                Box::new(AdaptiveAttack::new(
                    inner,
                    AttackPolicy::Budgeted {
                        delay: Seconds::new(0.5),
                        strike: Seconds::new(45.0),
                        budget: Seconds::new(600.0),
                    },
                ))
            }
            EnvKind::NearThresholdPlateau => Box::new(Mobility::schedule(
                self.label(),
                vec![
                    // Charge burst: fills REACT's LLB and first banks.
                    (Seconds::new(0.0), Watts::from_milli(20.0)),
                    // Trickle sized to REACT's sleeping draw near the
                    // 3.5 V upper comparator, parking the equilibrium
                    // inside the ±20 mV guard band.
                    (Seconds::new(60.0), Watts::from_micro(80.0)),
                ],
            )),
            EnvKind::Paper(p) => Box::new(TraceSource::new(paper_trace(p))),
        }
    }
}

/// Builds an RF env as its concrete model (attack wrappers need the
/// sized inner type, not a box), with the report matrix's seed salt
/// folded into the base seed (salt 0 = the canonical stream).
fn rf_field_salted(kind: EnvKind, salt: u64) -> Option<MarkovRf> {
    let seed = |base: u64| salt_seed(base, salt);
    match kind {
        EnvKind::RfGilbertElliott => Some(
            MarkovRf::new(
                kind.label(),
                Watts::from_milli(6.0),
                Watts::from_micro(30.0),
                Seconds::new(8.0),
                Seconds::new(45.0),
                seed(ENV_SEED + 3),
            )
            .with_jitter(0.3),
        ),
        EnvKind::RfSparse => Some(
            MarkovRf::new(
                kind.label(),
                Watts::from_milli(3.0),
                Watts::from_micro(5.0),
                Seconds::new(2.0),
                Seconds::new(180.0),
                seed(ENV_SEED + 4),
            )
            .with_jitter(0.2),
        ),
        _ => None,
    }
}

/// One named, fully reproducible deployment description.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Registry key.
    pub name: &'static str,
    /// What the scenario exercises.
    pub description: &'static str,
    /// Environment class.
    pub env: EnvKind,
    /// Buffer design under test.
    pub buffer: BufferKind,
    /// Benchmark application.
    pub workload: WorkloadKind,
    /// Harvester converter between the environment and the buffer.
    /// RF/attack scenarios declare the rectifier model, diurnal/solar
    /// the boost charger; `Ideal` keeps the paper's
    /// power-already-at-the-rail semantics.
    pub converter: ConverterKind,
    /// Harvest horizon (how long the environment streams).
    pub horizon: Seconds,
    /// Fine-step size while the MCU runs.
    pub dt: Seconds,
    /// Seed perturbation for the report matrix's seed axis: 0 is the
    /// canonical registry stream, other values re-seed the stochastic
    /// environment and workload models.
    pub seed_salt: u64,
    /// Whether the run arms the detect-and-degrade defense
    /// ([`DefenseConfig`] default knobs). The red-vs-blue registry
    /// pairs each adversary with a defended and an undefended entry;
    /// benign scenarios run undefended.
    pub defended: bool,
    /// Hardware-drift fault campaign, expanded into a per-node
    /// [`FaultPlan`](react_circuit::FaultPlan) from the scenario's
    /// fault seed. [`FaultCampaign::None`] (every pre-existing entry)
    /// leaves the run untouched.
    pub fault: FaultCampaign,
    /// Whether the run arms the kernel invariant auditor
    /// ([`AuditConfig`] default tolerances). Audited runs clamp stride
    /// lengths, so their step counts differ from unaudited twins; the
    /// fault registry pairs each campaign with an audited and an
    /// unaudited entry.
    pub audited: bool,
}

impl Scenario {
    /// Builds this scenario's (seeded, fresh) environment source.
    pub fn source(&self) -> Box<dyn PowerSource> {
        self.env.build_salted(self.seed_salt)
    }

    /// This scenario with a different buffer design (the report
    /// matrix's buffer axis).
    pub fn with_buffer(mut self, buffer: BufferKind) -> Self {
        self.buffer = buffer;
        self
    }

    /// This scenario re-seeded (the report matrix's seed axis).
    pub fn with_seed_salt(mut self, salt: u64) -> Self {
        self.seed_salt = salt;
        self
    }

    /// This scenario with the defense armed (or disarmed).
    pub fn with_defended(mut self, defended: bool) -> Self {
        self.defended = defended;
        self
    }

    /// This scenario under a hardware-drift fault campaign (the fault
    /// registry's campaign axis).
    pub fn with_fault(mut self, fault: FaultCampaign) -> Self {
        self.fault = fault;
        self
    }

    /// This scenario with the kernel invariant auditor armed (or
    /// disarmed).
    pub fn with_audited(mut self, audited: bool) -> Self {
        self.audited = audited;
        self
    }

    /// Deterministic seed for this scenario's fault plan: the workload
    /// seed (already name- and salt-derived, so fleet nodes get
    /// distinct plans for free through `seed_salt`) remixed through a
    /// fault-specific constant so fault timing never correlates with
    /// workload event arrivals.
    pub fn fault_seed(&self) -> u64 {
        self.workload_seed() ^ 0xFAD3_D21F_7C65_A1B3
    }

    /// The healthy-twin scenario a faulted run is scored against: the
    /// same environment, buffer, workload, and horizon with no fault
    /// campaign and no auditor. `None` for unfaulted scenarios. The
    /// fault report divides faulted FoM by the twin's to get *FoM
    /// retained under faults*.
    pub fn healthy_twin(&self) -> Option<&'static str> {
        if self.fault == FaultCampaign::None {
            return None;
        }
        match self.buffer {
            BufferKind::Static10mF => Some("rf-ge-hour-10mf-de"),
            BufferKind::Dewdrop => Some("rf-ge-hour-dewdrop-de"),
            _ => None,
        }
    }

    /// The benign-twin scenario this adversarial scenario is scored
    /// against: same workload, buffer axis, horizon, and converter, but
    /// the unwrapped environment. `None` for benign scenarios. The
    /// report divides attacked FoM by the twin's to get *FoM retained
    /// under attack*.
    pub fn benign_twin(&self) -> Option<&'static str> {
        match self.env {
            EnvKind::AttackBootStrike | EnvKind::AttackBaitSwitch | EnvKind::AttackBudget => {
                Some("rf-ge-hour-react-de")
            }
            _ => None,
        }
    }

    /// Whether a non-zero seed salt changes this scenario's run at
    /// all: either the environment is stochastic, or the workload
    /// draws on its event-stream seed (only packet forwarding does).
    /// Fully deterministic cells replay bit-identically under every
    /// salt, so the report skips their replicates.
    pub fn seed_salt_matters(&self) -> bool {
        self.env.salt_sensitive() || self.workload == WorkloadKind::PacketForward
    }

    /// Deterministic per-scenario seed for workload event streams
    /// (public so baselines can rebuild the identical workload).
    /// FNV-1a over the scenario name — a stable algorithm, unlike the
    /// standard library's `DefaultHasher`, so seeds (and therefore PF
    /// arrival streams) survive toolchain upgrades. The seed salt folds
    /// in on top (salt 0 leaves the canonical seed untouched).
    pub fn workload_seed(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let base = self
            .name
            .bytes()
            .fold(FNV_OFFSET, |h, b| (h ^ b as u64).wrapping_mul(FNV_PRIME));
        salt_seed(base, self.seed_salt)
    }

    /// Runs the scenario with the default adaptive kernel.
    pub fn run(&self) -> RunOutcome {
        self.run_with_kernel(KernelMode::Adaptive)
    }

    /// Runs the scenario with a [`StepAttribution`] recorder and
    /// returns the outcome together with the "where the steps go"
    /// profile. Recording is bit-identity-neutral, so the outcome is
    /// interchangeable with [`Scenario::run`]'s.
    pub fn run_attributed(&self) -> (RunOutcome, StepAttribution) {
        match self
            .simulator()
            .with_recorder(StepAttribution::default())
            .try_run_telemetry()
        {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the scenario with a bounded [`RingRecorder`] capturing the
    /// full typed event stream (for `sim_trace` export and cell
    /// replay). `capacity` bounds recorder memory; `None` uses
    /// [`RingRecorder::DEFAULT_CAPACITY`].
    pub fn run_traced(&self, capacity: Option<usize>) -> (RunOutcome, RingRecorder) {
        let ring = match capacity {
            Some(n) => RingRecorder::new(n),
            None => RingRecorder::with_default_capacity(),
        };
        match self.simulator().with_recorder(ring).try_run_telemetry() {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// The power gate this scenario runs under: the paper's fixed
    /// 3.3 V / 1.8 V testbed gate for every buffer except Dewdrop,
    /// whose runtime computes its *adaptive* enable voltage — the
    /// lowest voltage holding one task quantum above brown-out
    /// (`≈2.56 V` for the reference configuration). Scenario runs used
    /// to hard-code the fixed gate for Dewdrop too, measuring a
    /// strictly handicapped version of the design.
    pub fn gate(&self) -> react_mcu::PowerGate {
        if self.buffer == BufferKind::Dewdrop {
            let enable = react_buffers::DewdropBuffer::reference().adaptive_enable_voltage();
            react_mcu::PowerGate::new(enable, crate::calib::BROWNOUT_VOLTAGE)
        } else {
            react_mcu::PowerGate::new(crate::calib::ENABLE_VOLTAGE, crate::calib::BROWNOUT_VOLTAGE)
        }
    }

    /// Runs the scenario under an explicit kernel (the fixed-`dt`
    /// reference exists for validation; week-scale scenarios are only
    /// practical under the adaptive kernel).
    pub fn run_with_kernel(&self, kernel: KernelMode) -> RunOutcome {
        self.simulator().with_kernel(kernel).run()
    }

    /// Builds the fully configured [`Simulator`] this scenario runs —
    /// the single construction recipe shared by [`Scenario::run`] and
    /// the fleet kernel, so a fleet cell is bit-identical to a scalar
    /// run of the same (scenario, salt) pair. Defaults to the adaptive
    /// kernel; callers may override with [`Simulator::with_kernel`].
    pub fn simulator(
        &self,
    ) -> Simulator<
        Box<dyn react_buffers::EnergyBuffer>,
        Box<dyn react_workloads::Workload>,
        Box<dyn PowerSource>,
    > {
        let replay = PowerReplay::from_source(self.source(), self.converter.build());
        let workload = self
            .workload
            .build_streaming(self.horizon, self.workload_seed());
        let mut sim = Simulator::new(replay, self.buffer.build(), workload)
            .with_timestep(self.dt)
            .with_horizon(self.horizon)
            .with_gate(self.gate());
        if self.env.adversarial() {
            // Stateful adversaries observe the victim; benign cells
            // skip the emission entirely.
            sim = sim.with_feedback();
        }
        if self.defended {
            sim = sim.with_defense(DefenseConfig::default());
        }
        if self.fault != FaultCampaign::None {
            sim = sim.with_faults(self.fault.plan(self.fault_seed(), self.horizon));
        }
        if self.audited {
            sim = sim.with_auditor(AuditConfig::default());
        }
        sim
    }
}

/// Millisecond fine steps, for sub-hour scenarios.
const DT_FINE: Seconds = Seconds::new(0.001);

/// 10 ms fine steps, for day/week horizons.
const DT_LONG: Seconds = Seconds::new(0.01);

/// The built-in scenario registry.
pub const SCENARIOS: [Scenario; 17] = [
    Scenario {
        name: "rf-sparse-week",
        description: "persistence: a week in a sparse RF field, streamed segment by segment",
        env: EnvKind::RfSparse,
        buffer: BufferKind::Static770uF,
        workload: WorkloadKind::SenseCompute,
        converter: ConverterKind::RfRectifier,
        horizon: WEEK,
        dt: DT_LONG,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "mobility-week-pf",
        description: "a week of daily commutes forwarding packets on REACT",
        env: EnvKind::MobilityCommuter,
        buffer: BufferKind::React,
        workload: WorkloadKind::PacketForward,
        converter: ConverterKind::Ideal,
        horizon: WEEK,
        dt: DT_LONG,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "diurnal-day-react-sc",
        description: "responsiveness: one clear solar day of periodic sensing on REACT",
        env: EnvKind::DiurnalClear,
        buffer: BufferKind::React,
        workload: WorkloadKind::SenseCompute,
        converter: ConverterKind::BoostCharger,
        horizon: DAY,
        dt: DT_LONG,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "stormy-day-morphy-de",
        description: "a stormy solar day of continuous encryption on Morphy",
        env: EnvKind::DiurnalStormy,
        buffer: BufferKind::Morphy,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::BoostCharger,
        horizon: DAY,
        dt: DT_LONG,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "rf-ge-hour-react-de",
        description: "an hour of office RF bursts, continuous encryption on REACT",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "rf-ge-hour-10mf-de",
        description: "the same office field on the best static buffer",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "mobility-day-10mf-sc",
        description: "one commuter day of periodic sensing on a 10 mF buffer",
        env: EnvKind::MobilityCommuter,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::SenseCompute,
        converter: ConverterKind::Ideal,
        horizon: DAY,
        dt: DT_LONG,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-blackout-hour-react-rt",
        description: "starvation adversary: hourly blackouts under atomic radio bursts",
        env: EnvKind::AttackBlackout,
        buffer: BufferKind::React,
        workload: WorkloadKind::RadioTransmit,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-spoof-hour-react-de",
        description: "bait adversary: spoofed surplus bursts then blackout, on REACT",
        env: EnvKind::AttackSpoof,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "paper-rfcart-de",
        description: "the recorded RF Cart trace as a TraceSource registry instance",
        env: EnvKind::Paper(PaperTrace::RfCart),
        buffer: BufferKind::Static770uF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::Ideal,
        horizon: Seconds::new(313.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    // ---- Red-vs-blue family: each stateful adversary paired with an
    // undefended and a defended entry, scored as FoM retained against
    // the benign rf-ge-hour twin. ----
    Scenario {
        name: "attack-bootstrike-hour-de",
        description: "boot-triggered adversary striking after each cold start, undefended",
        env: EnvKind::AttackBootStrike,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-bootstrike-hour-de-defended",
        description: "the boot-triggered adversary against the detect-and-degrade defense",
        env: EnvKind::AttackBootStrike,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: true,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-baitswitch-hour-de",
        description: "spoof-baiter cutting power once the victim commits, undefended",
        env: EnvKind::AttackBaitSwitch,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-baitswitch-hour-de-defended",
        description: "the spoof-baiter against the detect-and-degrade defense",
        env: EnvKind::AttackBaitSwitch,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: true,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-budget-hour-de",
        description: "budget-limited adversary rationing blackout seconds, undefended",
        env: EnvKind::AttackBudget,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "attack-budget-hour-de-defended",
        description: "the budget-limited adversary against the detect-and-degrade defense",
        env: EnvKind::AttackBudget,
        buffer: BufferKind::React,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: true,
        fault: FaultCampaign::None,
        audited: false,
    },
    Scenario {
        name: "react-plateau-sc",
        description: "near-threshold trickle parking REACT inside the comparator guard band",
        env: EnvKind::NearThresholdPlateau,
        buffer: BufferKind::React,
        workload: WorkloadKind::SenseCompute,
        converter: ConverterKind::Ideal,
        horizon: Seconds::new(900.0),
        dt: DT_LONG,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
];

/// The fault-campaign registry: hardware-drift campaigns on the office
/// RF field, each paired as an unaudited and an audited entry, plus
/// the healthy Dewdrop twin the Dewdrop campaign is scored against.
/// Kept separate from [`SCENARIOS`] so the benign scenario and fleet
/// baselines stay byte-identical; the fault report and the
/// `fault-smoke` CI gate run this registry.
pub const FAULT_SCENARIOS: [Scenario; 9] = [
    Scenario {
        name: "fault-fade-offset-hour-10mf-de",
        description: "capacitance fade then comparator offset mid-run, undefended kernel",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::FadeOffset,
        audited: false,
    },
    Scenario {
        name: "fault-fade-offset-hour-10mf-de-audited",
        description: "the fade-then-offset campaign with the invariant auditor armed",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::FadeOffset,
        audited: true,
    },
    Scenario {
        name: "fault-derate-hour-10mf-de",
        description: "harvester derating to 60 % mid-run, undefended kernel",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::Derate,
        audited: false,
    },
    Scenario {
        name: "fault-derate-hour-10mf-de-audited",
        description: "the derating campaign with the invariant auditor armed",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::Derate,
        audited: true,
    },
    Scenario {
        name: "fault-stuck-closed-hour-10mf-de",
        description: "power switch welding closed mid-run, undefended kernel",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::StuckClosed,
        audited: false,
    },
    Scenario {
        name: "fault-stuck-closed-hour-10mf-de-audited",
        description: "the welded-switch campaign with the invariant auditor armed",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Static10mF,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::StuckClosed,
        audited: true,
    },
    Scenario {
        name: "fault-drift-hour-dewdrop-de",
        description: "stochastic drift events (fade/leakage/derate/offset) on Dewdrop",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Dewdrop,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::Drift,
        audited: false,
    },
    Scenario {
        name: "fault-drift-hour-dewdrop-de-audited",
        description: "the stochastic drift campaign with the invariant auditor armed",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Dewdrop,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::Drift,
        audited: true,
    },
    Scenario {
        name: "rf-ge-hour-dewdrop-de",
        description: "healthy Dewdrop twin the drift campaign is scored against",
        env: EnvKind::RfGilbertElliott,
        buffer: BufferKind::Dewdrop,
        workload: WorkloadKind::DataEncryption,
        converter: ConverterKind::RfRectifier,
        horizon: Seconds::new(3600.0),
        dt: DT_FINE,
        seed_salt: 0,
        defended: false,
        fault: FaultCampaign::None,
        audited: false,
    },
];

/// The full built-in registry.
pub fn scenario_registry() -> &'static [Scenario] {
    &SCENARIOS
}

/// The fault-campaign registry (see [`FAULT_SCENARIOS`]).
pub fn fault_scenario_registry() -> &'static [Scenario] {
    &FAULT_SCENARIOS
}

/// Looks up a scenario by name, searching the benign registry first
/// and the fault registry second.
pub fn find_scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS
        .iter()
        .chain(FAULT_SCENARIOS.iter())
        .find(|s| s.name == name)
}

/// Runs a selection of scenarios, fanning the runs out over worker
/// threads exactly like the experiment matrix (`parallel = false` keeps
/// them serial for timing comparisons). Results come back in input
/// order.
pub fn run_scenarios(scenarios: &[Scenario], parallel: bool) -> Vec<RunOutcome> {
    if parallel {
        scenarios.par_iter().map(Scenario::run).collect()
    } else {
        scenarios.iter().map(Scenario::run).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let all: Vec<&Scenario> = scenario_registry()
            .iter()
            .chain(fault_scenario_registry())
            .collect();
        for s in &all {
            assert_eq!(
                all.iter().filter(|o| o.name == s.name).count(),
                1,
                "duplicate scenario name {}",
                s.name
            );
            assert!(find_scenario(s.name).is_some());
            assert!(s.horizon.get() > 0.0);
            assert!(s.dt.get() > 0.0);
        }
        assert!(find_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn benign_registry_carries_no_faults() {
        for s in scenario_registry() {
            assert_eq!(s.fault, FaultCampaign::None, "{}", s.name);
            assert!(!s.audited, "{}", s.name);
            assert!(s.healthy_twin().is_none(), "{}", s.name);
        }
    }

    #[test]
    fn fault_registry_twins_resolve() {
        for s in fault_scenario_registry() {
            if s.fault == FaultCampaign::None {
                continue;
            }
            let twin = s.healthy_twin().expect("faulted scenario has a twin");
            let healthy = find_scenario(twin).expect("twin registered");
            assert_eq!(healthy.fault, FaultCampaign::None, "{twin}");
            assert!(!healthy.audited, "{twin}");
            assert_eq!(healthy.buffer, s.buffer, "{}", s.name);
            assert_eq!(healthy.env, s.env, "{}", s.name);
            assert_eq!(healthy.workload, s.workload, "{}", s.name);
            // The plan is seeded and non-empty inside the horizon.
            let plan = s.fault.plan(s.fault_seed(), s.horizon);
            assert!(!plan.is_empty(), "{}", s.name);
            let again = s.fault.plan(s.fault_seed(), s.horizon);
            assert_eq!(plan.events().len(), again.events().len(), "{}", s.name);
        }
    }

    #[test]
    fn audited_fault_scenario_injects_and_detects() {
        let mut s = *find_scenario("fault-fade-offset-hour-10mf-de-audited").expect("registered");
        s.horizon = Seconds::new(2400.0); // past both events, still quick
        let out = s.run();
        assert!(out.metrics.faults_injected >= 1, "no fault fired");
        assert!(out.metrics.audit_checks > 0, "auditor never ran");
        assert!(out.metrics.audit_trips >= 1, "fade escaped the auditor");
    }

    #[test]
    fn every_environment_builds_and_streams() {
        for s in scenario_registry() {
            let mut env = s.source();
            let mut t = 0.0;
            // Walk a few segments and spot-check the contract.
            for _ in 0..32 {
                let seg = env.segment(Seconds::new(t));
                assert!(
                    seg.power.get() >= 0.0 && seg.power.get().is_finite(),
                    "{}: power {:?}",
                    s.name,
                    seg.power
                );
                assert!(seg.end.get() > t, "{}: segment must advance", s.name);
                if seg.end.get() == f64::INFINITY {
                    break;
                }
                t = seg.end.get();
            }
            // Seeded: a second build replays the same stream.
            let mut again = s.source();
            for i in 0..64 {
                let probe = Seconds::new(i as f64 * 17.3);
                assert_eq!(
                    env.power_at(probe),
                    again.power_at(probe),
                    "{}: stream not reproducible",
                    s.name
                );
            }
        }
    }

    #[test]
    fn paper_trace_scenario_runs_like_its_experiment() {
        let s = find_scenario("paper-rfcart-de").expect("registered");
        let out = s.run();
        let reference =
            crate::Experiment::new(s.buffer, s.workload).run(&paper_trace(PaperTrace::RfCart));
        // Same trace, same engine, same kernel: identical outcomes.
        assert_eq!(out.metrics.ops_completed, reference.metrics.ops_completed);
        assert_eq!(out.metrics.boots, reference.metrics.boots);
    }

    #[test]
    fn short_streaming_scenario_runs_to_completion() {
        let mut s = *find_scenario("rf-ge-hour-10mf-de").expect("registered");
        s.horizon = Seconds::new(300.0); // keep the unit test quick
        let out = s.run();
        assert!(out.metrics.total_time >= s.horizon);
        assert!(out.metrics.relative_conservation_error() < 1e-3);
    }
}
