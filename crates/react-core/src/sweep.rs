//! Parameter sweeps: the design-space exploration behind §2.1.
//!
//! The paper's motivation is that *no single static buffer size wins*:
//! the best capacitance depends on the trace and the workload, and
//! changes over a deployment's life. [`static_size_sweep`] measures that
//! directly — run a workload over a log-spaced range of static buffer
//! sizes and report the figure of merit for each — and
//! [`best_static_size`] picks the winner, which REACT should match or
//! beat without anyone choosing it at design time.

use std::sync::Arc;

use rayon::prelude::*;
use react_buffers::StaticBuffer;
use react_circuit::CapacitorSpec;
use react_harvest::{Converter, PowerReplay};
use react_traces::PowerTrace;
use react_units::Farads;

use crate::metrics::RunMetrics;
use crate::{KernelMode, Simulator, WorkloadKind};

/// One sweep point: a static buffer size and its run result.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The static buffer capacitance evaluated.
    pub capacitance: Farads,
    /// Run metrics at that size.
    pub metrics: RunMetrics,
}

/// Execution strategy for [`static_size_sweep_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepOptions {
    /// Fan the sweep points out over worker threads.
    pub parallel: bool,
    /// Stepping kernel for every point.
    pub kernel: KernelMode,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            kernel: KernelMode::Adaptive,
        }
    }
}

impl SweepOptions {
    /// The serial fixed-`dt` baseline the `engine` bench compares
    /// against.
    pub fn serial_reference() -> Self {
        Self {
            parallel: false,
            kernel: KernelMode::FixedDt,
        }
    }
}

/// Runs `workload` on `trace` for each capacitance in `sizes`
/// (supercapacitor-class leakage, as the paper's bulk buffers), in
/// parallel with the adaptive kernel.
pub fn static_size_sweep(
    trace: &PowerTrace,
    workload: WorkloadKind,
    sizes: &[Farads],
) -> Vec<SweepPoint> {
    static_size_sweep_with(trace, workload, sizes, SweepOptions::default())
}

/// [`static_size_sweep`] with explicit execution options. All points
/// share one [`Arc`]'d copy of the trace; each point runs a
/// monomorphized `Simulator<StaticBuffer, _>`.
pub fn static_size_sweep_with(
    trace: &PowerTrace,
    workload: WorkloadKind,
    sizes: &[Farads],
    options: SweepOptions,
) -> Vec<SweepPoint> {
    let shared: Arc<PowerTrace> = Arc::new(trace.clone());
    let run_point = |capacitance: Farads| {
        let spec = CapacitorSpec::supercap_scaled(capacitance);
        let buffer = StaticBuffer::new(format!("{:.0} µF", capacitance.to_micro()), spec);
        let replay = PowerReplay::new(Arc::clone(&shared), Converter::ideal());
        let sim = Simulator::new(replay, buffer, workload.build(&shared, None))
            .with_kernel(options.kernel);
        SweepPoint {
            capacitance,
            metrics: sim.run().metrics,
        }
    };
    if options.parallel {
        sizes.par_iter().map(|&c| run_point(c)).collect()
    } else {
        sizes.iter().map(|&c| run_point(c)).collect()
    }
}

/// Log-spaced capacitances from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `points ≥ 2`.
pub fn log_spaced_sizes(lo: Farads, hi: Farads, points: usize) -> Vec<Farads> {
    assert!(lo.get() > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(points >= 2, "need at least two points");
    let (a, b) = (lo.get().ln(), hi.get().ln());
    (0..points)
        .map(|i| {
            let f = i as f64 / (points - 1) as f64;
            Farads::new((a + f * (b - a)).exp())
        })
        .collect()
}

/// The sweep point with the highest figure of merit.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn best_static_size(workload: WorkloadKind, points: &[SweepPoint]) -> &SweepPoint {
    points
        .iter()
        .max_by(|a, b| {
            let fa = crate::fom::figure_of_merit(workload, &a.metrics);
            let fb = crate::fom::figure_of_merit(workload, &b.metrics);
            fa.partial_cmp(&fb).expect("finite figures of merit")
        })
        .expect("empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_units::{Seconds, Watts};

    #[test]
    fn log_spacing_is_monotone_and_inclusive() {
        let sizes = log_spaced_sizes(Farads::from_micro(100.0), Farads::from_milli(10.0), 5);
        assert_eq!(sizes.len(), 5);
        assert!((sizes[0].to_micro() - 100.0).abs() < 1e-6);
        assert!((sizes[4].to_milli() - 10.0).abs() < 1e-6);
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn sweep_finds_an_interior_or_boundary_optimum() {
        // Short steady trace: enough to rank sizes.
        let trace = PowerTrace::constant(
            "sweep",
            Watts::from_milli(2.0),
            Seconds::new(40.0),
            Seconds::new(0.1),
        );
        let sizes = log_spaced_sizes(Farads::from_micro(200.0), Farads::from_milli(20.0), 4);
        let points = static_size_sweep(&trace, WorkloadKind::DataEncryption, &sizes);
        assert_eq!(points.len(), 4);
        let best = best_static_size(WorkloadKind::DataEncryption, &points);
        assert!(best.metrics.ops_completed > 0);
        // Oversized buffers never start on this short trace: the sweep
        // must rank them below the winner.
        let biggest = points.last().expect("nonempty");
        assert!(best.metrics.ops_completed >= biggest.metrics.ops_completed);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn bad_bounds_panic() {
        log_spaced_sizes(Farads::from_milli(1.0), Farads::from_micro(1.0), 3);
    }
}
