//! Property tests for the staged un-equalized REACT solve and the
//! Morphy idle dead-band bulk stride: random states and drive levels,
//! each closed-form stride replayed against a fine-stepped Euler clone.
//! Deployment-visible state (rail, stored energy, books, controller
//! counts) must agree within the kernel-equivalence tolerances, and
//! every strided buffer's own ledger must balance to machine precision
//! — the closed forms book energy through the ∫q·dt closure, so any
//! residual is a bookkeeping bug, not discretization error.

use proptest::prelude::*;
use react_buffers::{EnergyBuffer, MorphyBuffer, ReactBuffer};
use react_circuit::BankMode;
use react_units::{Amps, Seconds, Volts, Watts};

/// Fine-step reference: the same buffer state advanced by the
/// fixed-timestep loop the staged solve claims to reproduce.
fn reference_powered<B: EnergyBuffer + Clone>(
    buffer: &B,
    input: Watts,
    load: Amps,
    advanced: f64,
    dt: f64,
) -> B {
    let mut r = buffer.clone();
    let steps = (advanced / dt).round() as usize;
    for _ in 0..steps {
        r.step(input, load, Seconds::new(dt), true);
    }
    r
}

/// Deployment-visible agreement, at the kernel-equivalence tolerances
/// (2 % books with an absolute floor, 1 % rail, ±2 reconfigurations).
fn assert_close(fast: &dyn EnergyBuffer, reference: &dyn EnergyBuffer, label: &str) {
    let (f, r) = (fast.ledger(), reference.ledger());
    for (name, a, b) in [
        ("harvested", f.harvested.get(), r.harvested.get()),
        ("leaked", f.leaked.get(), r.leaked.get()),
        ("load", f.load_consumed.get(), r.load_consumed.get()),
        (
            "overhead",
            f.overhead_consumed.get(),
            r.overhead_consumed.get(),
        ),
        ("switch", f.switch_loss.get(), r.switch_loss.get()),
    ] {
        assert!(
            (a - b).abs() <= 0.02 * a.abs().max(b.abs()) + 1e-6,
            "{label}: {name} {a} vs {b}"
        );
    }
    // Diode loss is booked where the conduction happens: the fine path
    // pays it per step while a charging front equalizes, the staged
    // path at its coupling events — same µJ-scale energy, different
    // attribution instants, so only the magnitude is held close.
    let (da, db) = (f.diode_loss.get(), r.diode_loss.get());
    assert!(
        (da - db).abs() <= 0.05 * da.abs().max(db.abs()) + 1e-5,
        "{label}: diode {da} vs {db}"
    );
    let (va, vr) = (fast.rail_voltage().get(), reference.rail_voltage().get());
    assert!(
        (va - vr).abs() <= 0.01 * vr.max(0.1),
        "{label}: rail {va} vs {vr}"
    );
    let (ea, er) = (fast.stored_energy().get(), reference.stored_energy().get());
    assert!(
        (ea - er).abs() <= 0.02 * er.max(1e-6),
        "{label}: stored {ea} vs {er}"
    );
    let (ca, cr) = (
        fast.reconfiguration_count() as i64,
        reference.reconfiguration_count() as i64,
    );
    assert!(
        (ca - cr).abs() <= 2,
        "{label}: reconfigurations {ca} vs {cr}"
    );
}

/// The strided buffer's own energy books must close exactly: the
/// closed forms derive every ledger entry from the committed energy
/// deltas, so the conservation residual is float roundoff, not a
/// tolerance.
fn assert_ledger_balanced(buffer: &dyn EnergyBuffer, initial: react_units::Joules, label: &str) {
    let residual = buffer
        .ledger()
        .conservation_residual(initial, buffer.stored_energy())
        .get();
    assert!(
        residual.abs() <= 1e-9,
        "{label}: conservation residual {residual:+.3e} J"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Staged un-equalized solve vs the fine reference: an equalized
    /// parallel pack plus one freshly connected low series bank, under
    /// micro-power intake and sleep-scale load — the plateau-parked
    /// regime the staged closed forms exist for.
    #[test]
    fn staged_solve_matches_fine_reference(
        v_pack in 2.2..3.3f64,
        v_low_unit in 0.05..0.6f64,
        p_in_uw in 0.0..180.0f64,
        load_ua in 10.0..300.0f64,
        n_par in 1usize..4,
        dur in 2.0..15.0f64,
    ) {
        let dt = 0.005;
        let mk = || {
            let mut b = ReactBuffer::paper_prototype();
            b.set_llb_voltage(Volts::new(v_pack));
            for i in 0..n_par {
                b.force_bank_state(i, Volts::new(v_pack), BankMode::Parallel);
            }
            b.force_bank_state(n_par, Volts::new(v_low_unit), BankMode::Series);
            for i in (n_par + 1)..5 {
                b.force_bank_state(i, Volts::ZERO, BankMode::Disconnected);
            }
            b
        };
        let input = Watts::from_micro(p_in_uw);
        let load = Amps::from_micro(load_ua);

        let mut staged = mk();
        let initial = staged.stored_energy();
        let advanced = staged.powered_advance(
            input,
            load,
            Seconds::new(dur),
            Volts::new(1.2),
            None,
            Seconds::new(dt),
        );
        // A refusal IS the fine path — nothing to compare.
        let Some(advanced) = advanced else { return; };
        prop_assert!(advanced.get() >= 0.0 && advanced.get() <= dur + dt);

        let reference = reference_powered(&mk(), input, load, advanced.get(), dt);
        assert_close(&staged, &reference, "staged powered_advance");
        assert_ledger_balanced(&staged, initial, "staged powered_advance");
    }

    /// Morphy idle dead-band bulk stride vs the fine reference: the
    /// terminal parked inside the comparator band at a random ladder
    /// level, MCU off, trickle intake — the stormy-day idle regime the
    /// bulk stride collapses.
    #[test]
    fn morphy_idle_bulk_stride_matches_fine_reference(
        v0 in 1.95..3.45f64,
        level in 0usize..11,
        p_in_uw in 0.0..400.0f64,
        dur in 20.0..200.0f64,
    ) {
        let dt = 0.01;
        let mk = || {
            let mut m = MorphyBuffer::paper_implementation();
            m.force_state(level, Volts::new(v0));
            m
        };
        let input = Watts::from_micro(p_in_uw);

        let mut strided = mk();
        let initial = strided.stored_energy();
        let advanced = strided.idle_advance(
            input,
            Seconds::new(dur),
            Volts::new(3.55),
            Seconds::new(dt),
        );
        prop_assert!(advanced.get() >= 0.0 && advanced.get() <= dur + dt);

        let mut reference = mk();
        let steps = (advanced.get() / dt).round() as usize;
        for _ in 0..steps {
            reference.step(input, Amps::ZERO, Seconds::new(dt), false);
        }
        assert_close(&strided, &reference, "morphy idle_advance");
        assert_ledger_balanced(&strided, initial, "morphy idle_advance");
    }
}
