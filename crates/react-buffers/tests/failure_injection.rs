//! Failure injection: degraded components and hostile conditions.
//!
//! Deployed batteryless systems age: capacitors lose capacitance and
//! leak more, harvesters brown out mid-operation, controllers stall.
//! These tests drive the buffer architectures through such conditions
//! and check that the *invariants* (energy conservation, voltage
//! envelope, graceful degradation) survive even when performance does
//! not.

use react_buffers::{
    BufferKind, EnergyBuffer, MorphyBuffer, ReactBuffer, ReactConfig, StaticBuffer,
};
use react_circuit::{BankSpec, CapacitorSpec, LeakageSpec};
use react_units::{Amps, Farads, Seconds, Volts, Watts};

/// A REACT build whose ceramic banks have aged to datasheet-max leakage
/// (20× the shipped typical). It must still run, conserve energy, and
/// simply deliver less to the load.
#[test]
fn aged_react_still_conserves_energy() {
    let mut config = ReactConfig::paper_prototype();
    for bank in &mut config.banks {
        bank.unit.leakage = LeakageSpec {
            current_at_rated: bank.unit.leakage.current_at_rated * 20.0,
            rated_voltage: bank.unit.leakage.rated_voltage,
        };
    }
    let mut aged = ReactBuffer::new(config);
    let mut fresh = ReactBuffer::paper_prototype();
    let e0 = aged.stored_energy();
    for i in 0..60_000u32 {
        let input = if i % 10 < 4 {
            Watts::from_milli(5.0)
        } else {
            Watts::ZERO
        };
        let load = Amps::from_micro(500.0);
        aged.step(input, load, Seconds::from_milli(1.0), true);
        fresh.step(input, load, Seconds::from_milli(1.0), true);
    }
    // Conservation holds for the degraded build.
    let resid = aged
        .ledger()
        .conservation_residual(e0, aged.stored_energy());
    assert!(resid.get().abs() < 1e-3 * aged.ledger().harvested.get().max(1e-9));
    // Aging shows up as leakage, not as vanished energy.
    assert!(aged.ledger().leaked > fresh.ledger().leaked);
}

/// Losing a bank entirely (open switch, cracked part) leaves a valid,
/// smaller REACT; Eq. 2 validation still passes for the survivors.
#[test]
fn react_with_missing_bank_degrades_gracefully() {
    let mut config = ReactConfig::paper_prototype();
    config.banks.remove(4); // the 2×5 mF supercap bank dies
    assert_eq!(config.validate(), Ok(()));
    let mut r = ReactBuffer::new(config);
    for _ in 0..30_000 {
        r.step(
            Watts::from_milli(10.0),
            Amps::from_micro(100.0),
            Seconds::from_milli(1.0),
            true,
        );
    }
    // It still expands past the LLB, just to a smaller ceiling.
    assert!(r.equivalent_capacitance().to_milli() > 1.0);
    assert!(r.equivalent_capacitance().to_milli() < 9.0);
}

/// An absurdly leaky static buffer must never report negative stored
/// energy or a voltage above the clamp.
#[test]
fn extreme_leakage_respects_envelope() {
    let spec = CapacitorSpec::new(Farads::from_milli(1.0)).with_leakage(LeakageSpec {
        current_at_rated: Amps::from_milli(10.0),
        rated_voltage: Volts::new(6.3),
    });
    let mut b = StaticBuffer::new("leaky", spec);
    for i in 0..20_000u32 {
        let input = if i % 2 == 0 {
            Watts::from_milli(20.0)
        } else {
            Watts::ZERO
        };
        b.step(input, Amps::from_milli(1.0), Seconds::from_milli(1.0), true);
        let v = b.rail_voltage().get();
        assert!(
            (0.0..=3.6 + 1e-9).contains(&v),
            "voltage {v} out of envelope"
        );
        assert!(b.stored_energy().get() >= 0.0);
    }
    assert!(b.ledger().leaked.get() > 0.0);
}

/// Morphy with a dead (stuck) controller behaves like a static buffer
/// at its current level — no switching loss, no adaptation.
#[test]
fn morphy_without_controller_actions_is_static() {
    let mut m = MorphyBuffer::paper_implementation();
    // Keep the voltage inside the (v_low, v_high) band so the
    // controller never fires; the network must act like a plain cap.
    m.set_all_voltages(Volts::new(2.5 / 8.0)); // terminal 2.5 V at [8]
    let c0 = m.equivalent_capacitance();
    for _ in 0..5_000 {
        m.step(
            Watts::from_micro(50.0),
            Amps::from_micro(60.0),
            Seconds::from_milli(1.0),
            false,
        );
    }
    assert_eq!(m.equivalent_capacitance(), c0);
    assert_eq!(m.reconfiguration_count(), 0);
    assert!(m.ledger().switch_loss.get() < 1e-12);
}

/// Zero-duration power loss storms: the gate flapping every few
/// milliseconds must not corrupt any buffer's accounting.
#[test]
fn power_flapping_keeps_ledgers_sane() {
    for kind in [
        BufferKind::Static770uF,
        BufferKind::Morphy,
        BufferKind::React,
    ] {
        let mut b = kind.build();
        let e0 = b.stored_energy();
        for i in 0..50_000u32 {
            // Input flickers on/off every 3 ms; MCU flag flaps too.
            let input = if i % 3 == 0 {
                Watts::from_milli(8.0)
            } else {
                Watts::ZERO
            };
            b.step(
                input,
                Amps::from_milli(1.5),
                Seconds::from_milli(1.0),
                i % 7 < 3,
            );
        }
        let resid = b.ledger().conservation_residual(e0, b.stored_energy());
        assert!(
            resid.get().abs() < 2e-3 * b.ledger().harvested.get().max(1e-9),
            "{}: residual {}",
            b.name(),
            resid.get()
        );
    }
}

/// Eq. 2 rejects a physically dangerous retrofit: swapping bank 1's
/// units for 2 mF parts would overshoot V_high on a boost.
#[test]
fn oversized_retrofit_is_rejected() {
    let mut config = ReactConfig::paper_prototype();
    config.banks[0] = BankSpec::new(CapacitorSpec::ceramic_scaled(Farads::from_milli(2.0)), 3);
    assert!(config.validate().is_err());
}
