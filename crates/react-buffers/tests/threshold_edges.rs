//! Threshold-crossing edge cases for the controller-aware idle fast
//! path: every scenario runs the closed-form `idle_advance` against a
//! clone stepped through the fine-step reference loop and asserts the
//! deployment-visible state agrees — advanced time (on the fine-step
//! grid), ladder/bank level, reconfiguration count, rail voltage, and
//! the energy books.

use react_buffers::{EnergyBuffer, MorphyBuffer, ReactBuffer};
use react_units::{Amps, Seconds, Volts, Watts};

/// Replays the fine-step reference idle loop (the `idle_advance` trait
/// default) on a clone.
fn reference_idle<B: EnergyBuffer + Clone>(
    buffer: &B,
    input: Watts,
    duration: f64,
    v_stop: f64,
) -> (B, f64) {
    let mut r = buffer.clone();
    let dt = 1e-3_f64;
    let mut elapsed = 0.0;
    while elapsed < duration {
        if r.rail_voltage().get() >= v_stop {
            break;
        }
        let h = dt.min(duration - elapsed);
        r.step(input, Amps::ZERO, Seconds::new(h), false);
        elapsed += h;
    }
    (r, elapsed)
}

fn assert_books_close(fast: &dyn EnergyBuffer, reference: &dyn EnergyBuffer, label: &str) {
    let (f, r) = (fast.ledger(), reference.ledger());
    for (name, a, b) in [
        ("delivered", f.delivered.get(), r.delivered.get()),
        ("leaked", f.leaked.get(), r.leaked.get()),
        (
            "overhead",
            f.overhead_consumed.get(),
            r.overhead_consumed.get(),
        ),
        ("switch_loss", f.switch_loss.get(), r.switch_loss.get()),
    ] {
        assert!(
            (a - b).abs() <= 0.02 * a.abs().max(b.abs()) + 1e-7,
            "{label}: {name} {a} vs {b}"
        );
    }
    let (va, vr) = (fast.rail_voltage().get(), reference.rail_voltage().get());
    assert!(
        (va - vr).abs() < 0.01 * vr.max(0.1),
        "{label}: rail {va} vs {vr}"
    );
    let (ea, er) = (fast.stored_energy().get(), reference.stored_energy().get());
    assert!(
        (ea - er).abs() <= 0.02 * er.max(1e-6),
        "{label}: stored {ea} vs {er}"
    );
}

/// A controller poll landing exactly on the final fine step of the
/// stride: the threshold handler must fire (or not) exactly as the
/// reference decides, and the poll accumulator must carry the same
/// phase into the next stride.
#[test]
fn morphy_reconfiguration_exactly_at_stride_boundary() {
    let mut m = MorphyBuffer::paper_implementation();
    // Level 2 below v_low (1.9 V): the first poll steps the ladder down.
    m.force_state(2, Volts::new(1.5));
    let (reference, ref_elapsed) = reference_idle(&m, Watts::ZERO, 0.1, 3.3);
    let advanced = m.idle_advance(
        Watts::ZERO,
        Seconds::new(0.1),
        Volts::new(3.3),
        Seconds::from_milli(1.0),
    );
    assert!(
        (advanced.get() - ref_elapsed).abs() < 1e-9,
        "advanced {advanced:?} vs {ref_elapsed}"
    );
    assert_eq!(m.level(), reference.level(), "ladder level after the poll");
    assert_eq!(m.reconfiguration_count(), reference.reconfiguration_count());
    assert_books_close(&m, &reference, "stride-boundary poll");

    // The next stride must continue with the same poll phase: run both
    // onward and check they still agree.
    let (reference2, _) = reference_idle(&reference, Watts::ZERO, 0.35, 3.3);
    m.idle_advance(
        Watts::ZERO,
        Seconds::new(0.35),
        Volts::new(3.3),
        Seconds::from_milli(1.0),
    );
    assert_eq!(m.level(), reference2.level(), "level one stride later");
    assert_eq!(
        m.reconfiguration_count(),
        reference2.reconfiguration_count(),
        "reconfigurations one stride later"
    );
}

/// Several reclamation boosts inside a single `idle_advance` window:
/// each down-step changes the effective capacitance and restarts the
/// cooldown, so the closed form must fire every handler at the exact
/// poll the reference does and resume integrating with the new ladder
/// level.
#[test]
fn morphy_multiple_thresholds_inside_one_window() {
    let mut m = MorphyBuffer::paper_implementation();
    m.force_state(3, Volts::new(1.2));
    let (reference, ref_elapsed) = reference_idle(&m, Watts::ZERO, 2.0, 3.3);
    // The reference must actually have reconfigured more than once for
    // this scenario to mean anything.
    assert!(
        reference.reconfiguration_count() >= 2,
        "setup must trigger multiple boosts, got {}",
        reference.reconfiguration_count()
    );
    let advanced = m.idle_advance(
        Watts::ZERO,
        Seconds::new(2.0),
        Volts::new(3.3),
        Seconds::from_milli(1.0),
    );
    assert!(
        (advanced.get() - ref_elapsed).abs() < 1e-9,
        "advanced {advanced:?} vs {ref_elapsed}"
    );
    assert_eq!(m.level(), reference.level());
    assert_eq!(m.reconfiguration_count(), reference.reconfiguration_count());
    assert_books_close(&m, &reference, "multi-threshold window");
}

/// `v_stop` landing within one fine step of a reconfiguration event:
/// charging slowly from just below `v_low`, the first 10 Hz poll fires
/// a reclamation step right as the rail is about to cross `v_stop`.
/// Sweeping `v_stop` across the poll step exercises every ordering of
/// {reconfiguration, crossing} within one fine step — including the
/// case where the handler fires in the same step the rail crosses and
/// its fabric losses cancel the crossing — and each must match the
/// reference exactly.
#[test]
fn morphy_v_stop_within_one_fine_step_of_reconfiguration() {
    let input = Watts::from_micro(10.0);
    let mut saw_early_crossing = false;
    let mut saw_reconfiguration = false;
    for dv in 0..8 {
        let vs = 1.8972 + 0.0002 * dv as f64;
        let mut m = MorphyBuffer::paper_implementation();
        m.force_state(1, Volts::new(1.897));
        let (reference, ref_elapsed) = reference_idle(&m, input, 20.0, vs);
        let advanced = m.idle_advance(
            input,
            Seconds::new(20.0),
            Volts::new(vs),
            Seconds::from_milli(1.0),
        );
        assert!(
            (advanced.get() - ref_elapsed).abs() < 1e-9,
            "vs={vs}: advanced {advanced:?} vs reference {ref_elapsed}"
        );
        // Crossings land on whole fine steps.
        let steps = advanced.get() / 1e-3;
        assert!(
            (steps - steps.round()).abs() < 1e-6,
            "vs={vs}: steps {steps}"
        );
        assert_eq!(m.level(), reference.level(), "vs={vs}: level");
        assert_eq!(
            m.reconfiguration_count(),
            reference.reconfiguration_count(),
            "vs={vs}: reconfigurations"
        );
        assert_books_close(&m, &reference, &format!("vs={vs}"));
        saw_early_crossing |= reference.reconfiguration_count() == 0;
        saw_reconfiguration |= reference.reconfiguration_count() > 0;
    }
    // The sweep must actually straddle the poll: some stop voltages are
    // reached before it fires, some only after the reclamation step.
    assert!(saw_early_crossing, "sweep never crossed before the poll");
    assert!(saw_reconfiguration, "sweep never triggered the poll");
}

/// REACT's enable crossing under the instrumentation drain: the closed
/// form must land the crossing on the same fine-step-grid point as the
/// reference and book the comparator draw identically.
#[test]
fn react_crossing_quantized_on_grid_with_instrumentation_drain() {
    let mut r = ReactBuffer::paper_prototype();
    let (reference, ref_elapsed) = reference_idle(&r, Watts::from_milli(5.0), 30.0, 3.3);
    let advanced = r.idle_advance(
        Watts::from_milli(5.0),
        Seconds::new(30.0),
        Volts::new(3.3),
        Seconds::from_milli(1.0),
    );
    assert!(advanced.get() < 30.0, "must cross before the horizon");
    let steps = advanced.get() / 1e-3;
    assert!((steps - steps.round()).abs() < 1e-6, "steps {steps}");
    // Within one fine step of the reference's crossing.
    assert!(
        (advanced.get() - ref_elapsed).abs() <= 1e-3 + 1e-9,
        "advanced {advanced:?} vs reference {ref_elapsed}"
    );
    assert!(r.rail_voltage().get() >= 3.3 - 1e-9);
    assert!(
        r.ledger().overhead_consumed.get() > 0.0,
        "instrumentation draw must be booked"
    );
    assert_books_close(&r, &reference, "REACT crossing");
}

/// Input weaker than the comparator draw: the reference chatters within
/// one fine step of the 0.5 V instrumentation floor; the closed form
/// pins the rail there, splitting the input between leakage and the
/// management drain.
#[test]
fn react_pins_at_instrumentation_floor() {
    let mut r = ReactBuffer::paper_prototype();
    r.set_llb_voltage(Volts::new(0.3));
    let input = Watts::from_micro(0.8); // below the 1 µW instrumentation draw
    let (reference, ref_elapsed) = reference_idle(&r, input, 200.0, 3.3);
    let advanced = r.idle_advance(
        input,
        Seconds::new(200.0),
        Volts::new(3.3),
        Seconds::from_milli(1.0),
    );
    assert!((advanced.get() - ref_elapsed).abs() < 1e-9);
    assert!(
        (r.rail_voltage().get() - 0.5).abs() < 0.02,
        "pinned near the floor, got {:?}",
        r.rail_voltage()
    );
    assert_books_close(&r, &reference, "floor chatter");
}
