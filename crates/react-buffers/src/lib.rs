//! Energy-buffer architectures for batteryless systems.
//!
//! This crate holds the paper's primary contribution and its baselines:
//!
//! * [`StaticBuffer`] — fixed capacitors (770 µF / 10 mF / 17 mF, §4.1).
//! * [`ReactBuffer`] — REACT: the last-level buffer plus isolated
//!   series/parallel banks with a polled software controller (§3).
//! * [`MorphyBuffer`] — the Morphy \[49\] fully-interconnected
//!   switched-capacitor network used as the dynamic-buffer comparison.
//! * [`DewdropBuffer`] / [`CapybaraBuffer`] — extension baselines from
//!   the related-work discussion (§2.3–2.4), used by the ablation
//!   benches.
//!
//! All designs implement [`EnergyBuffer`] and are driven step-by-step by
//! the simulator in `react-core`.
//!
//! # Examples
//!
//! ```
//! use react_buffers::{BufferKind, EnergyBuffer};
//! use react_units::{Amps, Seconds, Watts};
//!
//! let mut buffer = BufferKind::React.build();
//! // Charge at 3 mW for one simulated second.
//! for _ in 0..1000 {
//!     buffer.step(Watts::from_milli(3.0), Amps::ZERO, Seconds::from_milli(1.0), false);
//! }
//! assert!(buffer.rail_voltage().get() > 1.0);
//! ```

mod buffer;
mod capybara;
pub mod charge_ode;
mod dewdrop;
mod morphy;
mod react;
pub mod static_buf;

pub use buffer::{
    power_intake, reference_idle_advance, BufferKind, EnergyBuffer, CHARGE_CURRENT_LIMIT,
    CONVERSION_FLOOR,
};
pub use capybara::CapybaraBuffer;
pub use dewdrop::DewdropBuffer;
pub use morphy::{transition_path as morphy_transition_path, MorphyBuffer};
pub use react::{ConfigError, ReactBuffer, ReactConfig};
pub use static_buf::StaticBuffer;
