//! Energy-buffer architectures for batteryless systems.
//!
//! This crate holds the paper's primary contribution and its baselines:
//!
//! * [`StaticBuffer`] — fixed capacitors (770 µF / 10 mF / 17 mF, §4.1).
//! * [`ReactBuffer`] — REACT: the last-level buffer plus isolated
//!   series/parallel banks with a polled software controller (§3).
//! * [`MorphyBuffer`] — the Morphy \[49\] fully-interconnected
//!   switched-capacitor network used as the dynamic-buffer comparison.
//! * [`DewdropBuffer`] / [`CapybaraBuffer`] — extension baselines from
//!   the related-work discussion (§2.3–2.4), used by the ablation
//!   benches.
//!
//! All designs implement [`EnergyBuffer`] and are driven step-by-step by
//! the simulator in `react-core`.
//!
//! # Examples
//!
//! ```
//! use react_buffers::{BufferKind, EnergyBuffer};
//! use react_units::{Amps, Seconds, Watts};
//!
//! let mut buffer = BufferKind::React.build();
//! // Charge at 3 mW for one simulated second.
//! for _ in 0..1000 {
//!     buffer.step(Watts::from_milli(3.0), Amps::ZERO, Seconds::from_milli(1.0), false);
//! }
//! assert!(buffer.rail_voltage().get() > 1.0);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batch;
mod buffer;
mod capybara;
pub mod charge_ode;
pub mod defense;
mod dewdrop;
mod morphy;
mod react;
pub mod static_buf;

pub use batch::{idle_advance_batch, powered_advance_batch};
pub use buffer::{
    power_intake, reference_idle_advance, BufferKind, EnergyBuffer, CHARGE_CURRENT_LIMIT,
    CONVERSION_FLOOR,
};

/// Replays a poll accumulator (`acc += dt` per step, reset to exactly
/// `0.0` on `acc ≥ period`) over `steps` uniform steps in O(steps per
/// window) instead of O(steps): after the first reset the pattern is
/// periodic *bit-exactly*, because every window re-accumulates the
/// same `dt` sequence from the same exact zero. The controller
/// buffers' dead-band bulk strides use this so week-long sleeps don't
/// pay a per-step bookkeeping loop.
pub(crate) fn bulk_poll_acc(acc0: f64, steps: u64, dt: f64, period: f64) -> f64 {
    let mut acc = acc0;
    let mut used = 0u64;
    while used < steps {
        acc += dt;
        used += 1;
        if acc >= period {
            acc = 0.0;
            break;
        }
    }
    if used == steps {
        return acc;
    }
    // Steps per window from an exact-zero start (constant thereafter).
    let mut n_pp = 0u64;
    let mut probe = 0.0;
    loop {
        probe += dt;
        n_pp += 1;
        if probe >= period {
            break;
        }
    }
    let rem = (steps - used) % n_pp;
    let mut acc = 0.0;
    for _ in 0..rem {
        acc += dt;
    }
    acc
}
pub use capybara::CapybaraBuffer;
pub use dewdrop::DewdropBuffer;
pub use morphy::{transition_path as morphy_transition_path, MorphyBuffer};
pub use react::{ConfigError, ReactBuffer, ReactConfig};
pub use static_buf::StaticBuffer;
