//! The energy-buffer abstraction every architecture implements.

use react_circuit::EnergyLedger;
use react_telemetry::FallbackReason;
use react_units::{Amps, Coulombs, Farads, Joules, Seconds, Volts, Watts};

/// Converts harvested rail power into charge at a receiving element's
/// voltage, modelling the constant-current cold-start region of real
/// boost chargers: below [`CONVERSION_FLOOR`] the converter delivers its
/// current limit rather than unbounded current.
pub fn power_intake(power: Watts, v_element: Volts, dt: Seconds) -> Coulombs {
    if power.get() <= 0.0 {
        return Coulombs::ZERO;
    }
    let v_eff = v_element.max(CONVERSION_FLOOR);
    (power / v_eff).min(CHARGE_CURRENT_LIMIT) * dt
}

/// Minimum conversion voltage (constant-current region boundary).
pub const CONVERSION_FLOOR: Volts = Volts::new(0.3);

/// Charge-current ceiling of the harvester IC.
pub const CHARGE_CURRENT_LIMIT: Amps = Amps::new(0.05);

/// An energy buffer between the harvester frontend and the load.
///
/// One `step` advances the buffer by `dt`: the harvester offers `input`
/// *power* at the rail (converters move power, not fixed current — each
/// buffer converts it to charge at its receiving element's voltage via
/// [`power_intake`]), the load draws `load` current, internal physics
/// (leakage, diode conduction, controller actions) play out, and every
/// joule is booked into the [`EnergyLedger`].
pub trait EnergyBuffer {
    /// Display name used in tables (`"770 µF"`, `"REACT"`, …).
    fn name(&self) -> &str;

    /// Voltage presented to the load rail.
    fn rail_voltage(&self) -> Volts;

    /// Voltage the *harvester* sees at the buffer's input node. For a
    /// single capacitor this is the rail; REACT's input isolation diodes
    /// steer charging current to the lowest-voltage connected element
    /// (§3.2.1), so its input node sits at that element's voltage.
    fn input_voltage(&self) -> Volts {
        self.rail_voltage()
    }

    /// Present equivalent capacitance at the rail.
    fn equivalent_capacitance(&self) -> Farads;

    /// Total energy stored across all internal capacitors.
    fn stored_energy(&self) -> Joules;

    /// Energy this buffer can still deliver to the load above `v_floor`
    /// (the brown-out voltage), accounting for the buffer's own
    /// extraction mechanism (REACT's series reclamation, a static
    /// buffer's plain ½C(V²−V_f²)).
    fn usable_energy_above(&self, v_floor: Volts) -> Joules;

    /// `true` if the buffer exposes the software-directed longevity API
    /// (§3.4.1). REACT and Morphy do; static buffers cannot.
    fn supports_longevity(&self) -> bool {
        false
    }

    /// The buffer's capacitance-level surrogate for stored energy
    /// (§3.4.1): 0 for static buffers, the bank/ladder step otherwise.
    fn capacitance_level(&self) -> u32 {
        0
    }

    /// `true` if this buffer's MCU-off physics are coarse-integrable:
    /// its [`idle_advance`](Self::idle_advance) collapses whole charge
    /// phases in closed form instead of replaying fine steps. The
    /// adaptive simulation kernel only hands idle trace windows to
    /// buffers that report `true`; everything else runs through the
    /// ordinary fine-step loop, keeping step counts honest.
    fn supports_idle_fast_path(&self) -> bool {
        false
    }

    /// Count of capacitance reconfigurations the buffer's controller has
    /// performed (REACT bank switches, Morphy ladder moves). Zero for
    /// buffers without a controller.
    fn reconfiguration_count(&self) -> u64 {
        0
    }

    /// Shifts the buffer into a more conservative posture in response
    /// to a suspected energy attack (see [`crate::defense`]): adaptive
    /// buffers step their capacitance ladder *down* one level, banking
    /// less per cycle but surviving shallower charge windows. Returns
    /// `true` if a reconfiguration actually happened. Buffers without a
    /// controller have no defensive posture and return `false`.
    fn defensive_reconfigure(&mut self) -> bool {
        false
    }

    /// Dwell time per [`capacitance_level`](Self::capacitance_level):
    /// `(level, seconds)` pairs covering the whole simulated time, in
    /// ascending level order. Empty for buffers that never change level.
    /// Both kernels must account this identically — the equivalence
    /// suite asserts it.
    fn capacitance_dwell(&self) -> Vec<(u32, f64)> {
        Vec::new()
    }

    /// Advances the buffer by `dt`. `mcu_running` gates controller
    /// software that runs on the target MCU (REACT's poller); externally
    /// powered controllers (Morphy) ignore it.
    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, mcu_running: bool);

    /// Advances the buffer through an MCU-off stretch: constant rail
    /// `input` power, zero load, for up to `duration`, stopping early
    /// once the rail reaches `v_stop` (the power gate's enable voltage).
    /// Returns the simulated time actually advanced, always a whole
    /// number of `fine_dt` steps except possibly a short final partial
    /// step at the end of `duration`.
    ///
    /// The default implementation replays the fixed-timestep reference
    /// loop ([`reference_idle_advance`]) exactly, so buffers with idle
    /// dynamics the closed forms do not cover keep step-identical
    /// semantics. Buffers whose idle physics are coarse-integrable —
    /// [`StaticBuffer`](crate::StaticBuffer),
    /// [`ReactBuffer`](crate::ReactBuffer),
    /// [`MorphyBuffer`](crate::MorphyBuffer) — override this to
    /// integrate whole charge phases analytically (see
    /// [`charge_ode`](crate::charge_ode)), which is what makes the
    /// adaptive simulation kernel fast.
    fn idle_advance(
        &mut self,
        input: Watts,
        duration: Seconds,
        v_stop: Volts,
        fine_dt: Seconds,
    ) -> Seconds {
        reference_idle_advance(self, input, duration, v_stop, fine_dt)
    }

    /// `true` if this buffer's MCU-**on** sleep physics are
    /// coarse-integrable: [`powered_advance`](Self::powered_advance)
    /// collapses workload-idle LPM3 stretches in closed form. The
    /// adaptive kernel's sleep fast path only engages on buffers that
    /// report `true`.
    fn supports_powered_fast_path(&self) -> bool {
        false
    }

    /// Advances the buffer through an MCU-on, workload-asleep stretch:
    /// constant rail `input` power and a constant `load` current (the
    /// MCU's sleep draw plus any peripheral held through the sleep, per
    /// `LoadDemand::sleep_with`), for up to `duration`, stopping early —
    /// quantized *up* onto the `fine_dt` grid — once the rail falls to
    /// `v_stop` (the power gate's brown-out voltage) or rises to
    /// `v_wake` (the predicted crossing of the sleeping workload's
    /// §3.4.1 energy threshold, from
    /// [`rail_voltage_for_usable`](Self::rail_voltage_for_usable)).
    /// Returns the simulated time actually advanced, or `None` when the
    /// buffer's present state has no closed form (the kernel falls back
    /// to fine stepping; controller buffers use this for e.g.
    /// un-equalized bank states). Controller buffers must keep their
    /// poll/reconfiguration bookkeeping step-identical to the fine-step
    /// reference.
    fn powered_advance(
        &mut self,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        let _ = (input, load, duration, v_stop, v_wake, fine_dt);
        None
    }

    /// The rail voltage at which
    /// [`usable_energy_above(v_floor)`](Self::usable_energy_above)
    /// first reaches `energy`, under the buffer's *present*
    /// configuration (bank/ladder topology frozen) — how the kernel
    /// turns a workload's `WakeHint::WhenEnergy` threshold into the
    /// `powered_advance` stop voltage. `None` when the relation has no
    /// simple inverse; the result may exceed the rail clamp (the wait
    /// is then unreachable in this configuration and the stride runs to
    /// its other bounds).
    fn rail_voltage_for_usable(&self, energy: Joules, v_floor: Volts) -> Option<Volts> {
        let _ = (energy, v_floor);
        None
    }

    /// Query-and-clear the reason the most recent
    /// [`idle_advance`](Self::idle_advance)/[`powered_advance`](Self::powered_advance)
    /// call refused (or returned a zero stride), for telemetry.
    /// Controller buffers record *why* their closed form declined —
    /// guard-band proximity, un-equalized topology — instead of
    /// swallowing it; the kernel only reads this when a recorder is
    /// enabled, and the default (buffers with nothing to report) is
    /// `None`, which the kernel attributes from its own state.
    fn take_fallback(&mut self) -> Option<FallbackReason> {
        None
    }

    /// Applies a hardware-drift fault to the live buffer. Returns
    /// `true` when the buffer models this fault kind — the drift
    /// mutated its *actual* component values while the closed-form
    /// fast paths keep integrating with the stale datasheet (believed)
    /// values, which is exactly the divergence the invariant auditor
    /// exists to catch. The default declines every kind: buffers
    /// without a believed/actual split simply don't drift (kernel-level
    /// faults — comparator offset, harvester derate, stuck switches —
    /// are applied by the simulator and affect every buffer).
    fn apply_fault(&mut self, kind: react_circuit::FaultKind) -> bool {
        let _ = kind;
        false
    }

    /// The *actual* instantaneous leakage power at the present
    /// operating point — the invariant auditor's shadow probe, checked
    /// against the closed forms' believed leakage booking. `None` when
    /// the buffer cannot report a single-capacitor leakage law
    /// (composite topologies), which skips the shadow check.
    fn leakage_probe(&self) -> Option<Watts> {
        None
    }

    /// Energy accounting so far.
    fn ledger(&self) -> &EnergyLedger;
}

/// The fixed-timestep reference idle loop: constant rail `input`, zero
/// load, MCU off, stopping early at `v_stop`. This is the single
/// definition behind [`EnergyBuffer::idle_advance`]'s default *and* the
/// controller buffers' fallback paths for states their closed forms do
/// not cover — sharing it guarantees the fallbacks can never drift from
/// the reference semantics the equivalence suite pins.
pub fn reference_idle_advance<B: EnergyBuffer + ?Sized>(
    buffer: &mut B,
    input: Watts,
    duration: Seconds,
    v_stop: Volts,
    fine_dt: Seconds,
) -> Seconds {
    let total = duration.get();
    let dt = fine_dt.get();
    assert!(dt > 0.0, "fine timestep must be positive");
    let mut elapsed = 0.0_f64;
    while elapsed < total {
        if buffer.rail_voltage() >= v_stop {
            break;
        }
        let h = dt.min(total - elapsed);
        buffer.step(input, Amps::ZERO, Seconds::new(h), false);
        elapsed += h;
    }
    Seconds::new(elapsed)
}

/// Forwarding impl so the simulation engine can be generic over
/// `B: EnergyBuffer` while `BufferKind::build`'s `Box<dyn EnergyBuffer>`
/// constructors keep working as thin wrappers. Every method forwards
/// through the box so concrete overrides (notably `idle_advance`) are
/// preserved under dynamic dispatch.
impl<T: EnergyBuffer + ?Sized> EnergyBuffer for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn rail_voltage(&self) -> Volts {
        (**self).rail_voltage()
    }

    fn input_voltage(&self) -> Volts {
        (**self).input_voltage()
    }

    fn equivalent_capacitance(&self) -> Farads {
        (**self).equivalent_capacitance()
    }

    fn stored_energy(&self) -> Joules {
        (**self).stored_energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        (**self).usable_energy_above(v_floor)
    }

    fn supports_longevity(&self) -> bool {
        (**self).supports_longevity()
    }

    fn capacitance_level(&self) -> u32 {
        (**self).capacitance_level()
    }

    fn supports_idle_fast_path(&self) -> bool {
        (**self).supports_idle_fast_path()
    }

    fn reconfiguration_count(&self) -> u64 {
        (**self).reconfiguration_count()
    }

    fn defensive_reconfigure(&mut self) -> bool {
        (**self).defensive_reconfigure()
    }

    fn capacitance_dwell(&self) -> Vec<(u32, f64)> {
        (**self).capacitance_dwell()
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, mcu_running: bool) {
        (**self).step(input, load, dt, mcu_running)
    }

    fn idle_advance(
        &mut self,
        input: Watts,
        duration: Seconds,
        v_stop: Volts,
        fine_dt: Seconds,
    ) -> Seconds {
        (**self).idle_advance(input, duration, v_stop, fine_dt)
    }

    fn supports_powered_fast_path(&self) -> bool {
        (**self).supports_powered_fast_path()
    }

    fn powered_advance(
        &mut self,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        (**self).powered_advance(input, load, duration, v_stop, v_wake, fine_dt)
    }

    fn rail_voltage_for_usable(&self, energy: Joules, v_floor: Volts) -> Option<Volts> {
        (**self).rail_voltage_for_usable(energy, v_floor)
    }

    fn take_fallback(&mut self) -> Option<FallbackReason> {
        (**self).take_fallback()
    }

    fn apply_fault(&mut self, kind: react_circuit::FaultKind) -> bool {
        (**self).apply_fault(kind)
    }

    fn leakage_probe(&self) -> Option<Watts> {
        (**self).leakage_probe()
    }

    fn ledger(&self) -> &EnergyLedger {
        (**self).ledger()
    }
}

/// Catalog of buffer designs evaluated in the paper (§4.1) plus the
/// extension baselines from the related-work discussion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// 770 µF static buffer (equal reactivity to REACT's LLB).
    Static770uF,
    /// 10 mF static buffer.
    Static10mF,
    /// 17 mF static buffer (≈ REACT's full capacity).
    Static17mF,
    /// The REACT prototype (Table 1 configuration).
    React,
    /// The Morphy \[49\] switched-capacitor network (8 × 2 mF).
    Morphy,
    /// Dewdrop-style \[6\] static buffer with an adaptive enable voltage.
    Dewdrop,
    /// Capybara-style \[7\] dual-capacitor programmer-selected buffer.
    Capybara,
}

impl BufferKind {
    /// The five designs the paper's tables compare, in column order.
    pub const PAPER_COLUMNS: [BufferKind; 5] = [
        BufferKind::Static770uF,
        BufferKind::Static10mF,
        BufferKind::Static17mF,
        BufferKind::Morphy,
        BufferKind::React,
    ];

    /// Table-style display label.
    pub fn label(self) -> &'static str {
        match self {
            BufferKind::Static770uF => "770 µF",
            BufferKind::Static10mF => "10 mF",
            BufferKind::Static17mF => "17 mF",
            BufferKind::React => "REACT",
            BufferKind::Morphy => "Morphy",
            BufferKind::Dewdrop => "Dewdrop",
            BufferKind::Capybara => "Capybara",
        }
    }

    /// The inverse of [`label`](Self::label): resolves a table-style
    /// display label (as embedded in scenario-report cell ids like
    /// `"rf-sparse-week/770 µF/s0"`) back to its kind.
    pub fn from_label(label: &str) -> Option<BufferKind> {
        [
            BufferKind::Static770uF,
            BufferKind::Static10mF,
            BufferKind::Static17mF,
            BufferKind::React,
            BufferKind::Morphy,
            BufferKind::Dewdrop,
            BufferKind::Capybara,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }

    /// Builds a fresh buffer of this kind with the paper's parameters.
    pub fn build(self) -> Box<dyn EnergyBuffer> {
        match self {
            BufferKind::Static770uF => Box::new(crate::StaticBuffer::static_770uf()),
            BufferKind::Static10mF => Box::new(crate::StaticBuffer::static_10mf()),
            BufferKind::Static17mF => Box::new(crate::StaticBuffer::static_17mf()),
            BufferKind::React => Box::new(crate::ReactBuffer::paper_prototype()),
            BufferKind::Morphy => Box::new(crate::MorphyBuffer::paper_implementation()),
            BufferKind::Dewdrop => Box::new(crate::DewdropBuffer::reference()),
            BufferKind::Capybara => Box::new(crate::CapybaraBuffer::reference()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(BufferKind::Static770uF.label(), "770 µF");
        assert_eq!(BufferKind::React.label(), "REACT");
        assert_eq!(BufferKind::PAPER_COLUMNS.len(), 5);
        // REACT is the last column, as in Tables 2/4/5.
        assert_eq!(BufferKind::PAPER_COLUMNS[4], BufferKind::React);
    }

    #[test]
    fn build_constructs_every_kind() {
        for kind in [
            BufferKind::Static770uF,
            BufferKind::Static10mF,
            BufferKind::Static17mF,
            BufferKind::React,
            BufferKind::Morphy,
            BufferKind::Dewdrop,
            BufferKind::Capybara,
        ] {
            let buf = kind.build();
            assert!(
                buf.rail_voltage().get().abs() < 1e-9,
                "{} starts empty",
                buf.name()
            );
            assert!(buf.equivalent_capacitance().get() > 0.0);
        }
    }
}
