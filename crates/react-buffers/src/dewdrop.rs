//! Dewdrop-style adaptive-enable-voltage buffer (extension baseline).
//!
//! Dewdrop \[6\] keeps a single static capacitor but varies the *enable
//! voltage*: instead of waiting for a fixed 3.3 V, the runtime computes
//! the voltage at which the buffer holds exactly enough energy for the
//! next task quantum and starts there. Energy stays fully fungible, but
//! the reactivity–longevity tradeoff of the capacitor size itself remains
//! (§2.4). This crate includes it as an extension baseline for the
//! ablation benches; it is not part of the paper's evaluated set.

use react_circuit::{Capacitor, CapacitorSpec, EnergyLedger};
use react_units::{Amps, Farads, Joules, Seconds, Volts, Watts};

use crate::{EnergyBuffer, StaticBuffer};

/// A static buffer that recommends a task-aware enable voltage.
#[derive(Clone, Debug)]
pub struct DewdropBuffer {
    inner: StaticBuffer,
    brownout: Volts,
    task_quantum: Joules,
}

impl DewdropBuffer {
    /// Creates a Dewdrop-style buffer over `spec` sized so one task
    /// quantum of `task_quantum` is available at the adaptive enable
    /// point.
    pub fn new(spec: CapacitorSpec, brownout: Volts, task_quantum: Joules) -> Self {
        Self {
            inner: StaticBuffer::new("Dewdrop", spec),
            brownout,
            task_quantum,
        }
    }

    /// Reference configuration: 3 mF supercap, 1.8 V brown-out, 5 mJ
    /// task quantum.
    pub fn reference() -> Self {
        Self::new(
            CapacitorSpec::supercap_scaled(Farads::from_milli(3.0)),
            Volts::new(1.8),
            Joules::from_milli(5.0),
        )
    }

    /// The adaptive enable voltage: the lowest voltage at which the
    /// buffer holds one task quantum above brown-out,
    /// `V = sqrt(V_br² + 2·E/C)`, clamped to the rail.
    pub fn adaptive_enable_voltage(&self) -> Volts {
        let c = self.inner.equivalent_capacitance().get();
        let v =
            (self.brownout.get() * self.brownout.get() + 2.0 * self.task_quantum.get() / c).sqrt();
        Volts::new(v.min(crate::static_buf::RAIL_CLAMP.get()))
    }

    /// Access to the underlying capacitor for test setup.
    pub fn set_voltage(&mut self, v: Volts) {
        self.inner.set_voltage(v);
    }
}

impl EnergyBuffer for DewdropBuffer {
    fn name(&self) -> &str {
        "Dewdrop"
    }

    fn rail_voltage(&self) -> Volts {
        self.inner.rail_voltage()
    }

    fn equivalent_capacitance(&self) -> Farads {
        self.inner.equivalent_capacitance()
    }

    fn stored_energy(&self) -> Joules {
        self.inner.stored_energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        self.inner.usable_energy_above(v_floor)
    }

    /// Dewdrop's runtime reasons about energy-per-task, which is the
    /// same contract as the longevity API.
    fn supports_longevity(&self) -> bool {
        true
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, mcu_running: bool) {
        self.inner.step(input, load, dt, mcu_running);
    }

    /// Dewdrop is electrically a static capacitor — its MCU-off charge
    /// phases integrate in the same closed form, so it inherits the
    /// inner buffer's idle fast path unchanged (the adaptive *enable
    /// voltage* only moves the `v_stop` the kernel passes in).
    fn supports_idle_fast_path(&self) -> bool {
        self.inner.supports_idle_fast_path()
    }

    fn idle_advance(
        &mut self,
        input: Watts,
        duration: Seconds,
        v_stop: Volts,
        fine_dt: Seconds,
    ) -> Seconds {
        self.inner.idle_advance(input, duration, v_stop, fine_dt)
    }

    /// The MCU-on sleep fast path forwards the same way: the adaptive
    /// enable voltage changes when the gate closes, not the physics of
    /// a powered stretch.
    fn supports_powered_fast_path(&self) -> bool {
        self.inner.supports_powered_fast_path()
    }

    fn powered_advance(
        &mut self,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        self.inner
            .powered_advance(input, load, duration, v_stop, v_wake, fine_dt)
    }

    fn rail_voltage_for_usable(&self, energy: Joules, v_floor: Volts) -> Option<Volts> {
        self.inner.rail_voltage_for_usable(energy, v_floor)
    }

    /// Hardware drift hits the underlying capacitor, so fault support
    /// (and the believed/actual split) forwards to the inner buffer.
    fn apply_fault(&mut self, kind: react_circuit::FaultKind) -> bool {
        self.inner.apply_fault(kind)
    }

    fn leakage_probe(&self) -> Option<Watts> {
        self.inner.leakage_probe()
    }

    fn ledger(&self) -> &EnergyLedger {
        self.inner.ledger()
    }
}

/// A [`Capacitor`] is unused directly here but kept for the doc example.
#[allow(dead_code)]
fn _doc_anchor(_c: Capacitor) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_enable_between_brownout_and_rail() {
        let d = DewdropBuffer::reference();
        let v = d.adaptive_enable_voltage();
        // sqrt(1.8² + 2·5m/3m) = sqrt(3.24 + 3.333) ≈ 2.564 V.
        assert!((v.get() - (3.24_f64 + 10.0 / 3.0).sqrt()).abs() < 1e-9);
        assert!(v > Volts::new(1.8) && v < Volts::new(3.3));
    }

    #[test]
    fn huge_quantum_clamps_to_rail() {
        let d = DewdropBuffer::new(
            CapacitorSpec::supercap_scaled(Farads::from_milli(1.0)),
            Volts::new(1.8),
            Joules::new(1.0),
        );
        assert_eq!(d.adaptive_enable_voltage(), crate::static_buf::RAIL_CLAMP);
    }

    #[test]
    fn behaves_as_static_buffer_electrically() {
        let mut d = DewdropBuffer::reference();
        for _ in 0..1000 {
            d.step(
                Watts::from_milli(2.0),
                Amps::ZERO,
                Seconds::from_milli(1.0),
                false,
            );
        }
        assert!(d.rail_voltage().get() > 0.2);
        assert!(d.supports_longevity());
        assert_eq!(d.name(), "Dewdrop");
    }
}
