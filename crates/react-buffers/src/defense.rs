//! Charge-slope anomaly detection for energy-attack defense.
//!
//! The attack-mitigation literature (PAPERS.md, Singhal et al.) shows
//! batteryless victims can detect adaptive energy attacks from their
//! own power-cycle telemetry: an attacker that strikes right after
//! boot produces *repeated near-boot brown-outs*, and a spoof-baiter
//! produces *implausibly fast recharges* (the real ambient field could
//! never refill the buffer that quickly). Both signals are visible in
//! the gate-event series alone — boot and brown-out timestamps — which
//! the reference and adaptive simulation kernels agree on exactly, so
//! detection never perturbs kernel equivalence the way per-poll
//! voltage thresholds would.
//!
//! [`AttackDetector`] consumes that series and drives three defensive
//! responses in the simulator: a conservative capacitance ladder
//! ([`EnergyBuffer::defensive_reconfigure`]), a raised effective
//! enable gate (boot later, with more banked energy), and an
//! exponential-backoff restart of the workload after repeated
//! attack-correlated reboots.
//!
//! [`EnergyBuffer::defensive_reconfigure`]: crate::EnergyBuffer::defensive_reconfigure

use react_units::{Seconds, Volts};

/// Tuning knobs for [`AttackDetector`] and the simulator's defensive
/// responses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DefenseConfig {
    /// An on-period shorter than this is a *near-boot brown-out* — the
    /// victim died suspiciously soon after waking.
    pub short_cycle: Seconds,
    /// A brown-out→boot recharge faster than this is an *implausible
    /// charge slope* — more power on the air than the deployment's
    /// ambient field plausibly delivers.
    pub min_recharge: Seconds,
    /// Consecutive suspicious cycles before the alarm trips.
    pub streak_to_flag: u32,
    /// How far the effective enable gate rises while alarmed.
    pub gate_raise: Volts,
    /// Hard cap on the total gate raise.
    pub gate_raise_max: Volts,
    /// Workload-restart hold after the first attack-correlated reboot
    /// while alarmed; doubles per subsequent suspicious cycle.
    pub backoff_base: Seconds,
    /// Cap on the exponential backoff hold.
    pub backoff_max: Seconds,
    /// Quiet time (no suspicious cycles) after which the alarm clears.
    pub clear_after: Seconds,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            short_cycle: Seconds::new(2.0),
            min_recharge: Seconds::new(0.25),
            streak_to_flag: 3,
            // REACT's rail clamp sits at 3.5 V: the raise must leave
            // headroom below it or the victim can never re-arm.
            gate_raise: Volts::new(0.1),
            gate_raise_max: Volts::new(0.4),
            // The ramp has to overtake a realistic strike length
            // (tens of seconds) within a few doublings — a victim that
            // sleeps *through* the whole blackout survives it on µA of
            // sleep current instead of paying a deep discharge. Long
            // holds additionally convert strike-free recharge time into
            // banked capacitance (REACT's controller steps up whenever
            // the sleeping rail reaches `v_high`), amortizing the fixed
            // per-strike cost over a much larger work window.
            backoff_base: Seconds::new(16.0),
            backoff_max: Seconds::new(480.0),
            // On a weak ambient field a full strike cycle (blackout +
            // recharge) runs minutes; the alarm must outlive several of
            // them or it ages out between consecutive strikes.
            clear_after: Seconds::new(900.0),
        }
    }
}

/// Detects energy attacks from the victim's own gate-event series and
/// tracks the defensive posture (alarm, gate raise, restart backoff).
///
/// Feed it every boot and brown-out with [`AttackDetector::on_boot`] /
/// [`AttackDetector::on_brownout`]; query the posture with
/// [`AttackDetector::alarmed`], [`AttackDetector::gate_raise`] and
/// [`AttackDetector::backoff`].
#[derive(Clone, Debug)]
pub struct AttackDetector {
    config: DefenseConfig,
    last_boot_at: Option<f64>,
    last_brownout_at: Option<f64>,
    /// Consecutive suspicious power cycles (reset by a healthy cycle).
    streak: u32,
    /// Whether the current cycle's recharge was already implausible —
    /// a long on-period must not clear a streak the boot-side signal
    /// started (spoofed cycles run long before the bait is cut).
    cycle_suspicious: bool,
    /// Time of the most recent suspicious cycle.
    last_suspicious_at: f64,
    alarmed: bool,
    /// Suspicious cycles observed since the current alarm was raised —
    /// escalates the backoff, and distinguishes a confirmed attack from
    /// a false alarm at clear time.
    post_raise_suspicious: u32,
    /// When the previous alarm cleared. A successful defense *masks*
    /// the attacker (held cycles look healthy), so a cleared alarm
    /// followed promptly by fresh suspicion is the same attacker
    /// recidivating, not a new coincidence: re-alarm on a single
    /// suspicious cycle, and don't book the earlier clear as a false
    /// positive.
    last_cleared_at: Option<f64>,
    /// Whether the live alarm was raised outside the recidivism
    /// window (a genuinely fresh detection).
    fresh_alarm: bool,
    /// Backoff escalation at the moment the previous alarm cleared,
    /// restored on a recidivist re-alarm so the hold resumes at the
    /// length that was already covering the attacker's blackout.
    last_ramp: u32,
    detections: u64,
    false_positives: u64,
}

impl AttackDetector {
    /// A quiet detector with the given configuration.
    pub fn new(config: DefenseConfig) -> Self {
        Self {
            config,
            last_boot_at: None,
            last_brownout_at: None,
            streak: 0,
            cycle_suspicious: false,
            last_suspicious_at: 0.0,
            alarmed: false,
            post_raise_suspicious: 0,
            last_cleared_at: None,
            fresh_alarm: true,
            last_ramp: 0,
            detections: 0,
            false_positives: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> DefenseConfig {
        self.config
    }

    /// Records a boot at `t`. An implausibly fast recharge from the
    /// previous brown-out counts as a suspicious cycle (spoofed field).
    pub fn on_boot(&mut self, t: Seconds) {
        let t = t.get();
        self.maybe_clear(t);
        self.cycle_suspicious = match self.last_brownout_at {
            Some(down) => t - down < self.config.min_recharge.get(),
            None => false,
        };
        if self.cycle_suspicious {
            self.note_suspicious(t);
        }
        self.last_boot_at = Some(t);
    }

    /// Records a brown-out at `t`. Dying within `short_cycle` of the
    /// boot counts as a suspicious cycle (near-boot brown-out); a
    /// longer on-period is healthy and resets the streak.
    pub fn on_brownout(&mut self, t: Seconds) {
        let t = t.get();
        self.maybe_clear(t);
        if let Some(up) = self.last_boot_at {
            if t - up < self.config.short_cycle.get() {
                self.note_suspicious(t);
            } else if !self.cycle_suspicious {
                // Fully healthy cycle: plausible recharge AND a long
                // on-period. Only that clears the streak.
                self.streak = 0;
            }
        }
        self.last_brownout_at = Some(t);
    }

    fn note_suspicious(&mut self, t: f64) {
        self.streak = self.streak.saturating_add(1);
        self.last_suspicious_at = t;
        if self.alarmed {
            self.post_raise_suspicious = self.post_raise_suspicious.saturating_add(1);
            return;
        }
        let recidivist = self
            .last_cleared_at
            .is_some_and(|c| t - c < self.config.clear_after.get());
        let needed = if recidivist {
            1
        } else {
            self.config.streak_to_flag
        };
        if self.streak >= needed {
            self.alarmed = true;
            self.fresh_alarm = !recidivist;
            self.post_raise_suspicious = if recidivist { self.last_ramp } else { 0 };
            self.detections += 1;
        }
    }

    fn maybe_clear(&mut self, t: f64) {
        if self.alarmed && t - self.last_suspicious_at >= self.config.clear_after.get() {
            // The alarm aged out. If nothing suspicious happened after
            // a *fresh* raise, the streak that tripped it was benign
            // variance. A recidivist alarm is exempt: the hold masks
            // the very evidence that would confirm it.
            if self.post_raise_suspicious == 0 && self.fresh_alarm {
                self.false_positives += 1;
            }
            self.alarmed = false;
            self.streak = 0;
            self.last_ramp = self.post_raise_suspicious.max(self.last_ramp);
            self.post_raise_suspicious = 0;
            self.last_cleared_at = Some(t);
        }
    }

    /// `true` while the defensive posture is active.
    pub fn alarmed(&self) -> bool {
        self.alarmed
    }

    /// How far to raise the effective enable gate right now.
    pub fn gate_raise(&self) -> Volts {
        if self.alarmed {
            self.config.gate_raise.min(self.config.gate_raise_max)
        } else {
            Volts::ZERO
        }
    }

    /// How long to hold the workload after a boot right now: zero when
    /// quiet, exponential in the attack-correlated reboots while
    /// alarmed, capped at `backoff_max`.
    pub fn backoff(&self) -> Seconds {
        if !self.alarmed {
            return Seconds::ZERO;
        }
        let doubling = 1u64 << self.post_raise_suspicious.min(16);
        let hold = self.config.backoff_base.get() * doubling as f64;
        Seconds::new(hold.min(self.config.backoff_max.get()))
    }

    /// Alarms raised so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Alarms that cleared without any suspicious cycle after the
    /// raise — benign variance mistaken for an attack.
    pub fn false_positives(&self) -> u64 {
        self.false_positives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    /// Boot → near-boot brown-out cycles with period `gap`.
    fn strike_cycles(d: &mut AttackDetector, start: f64, n: usize, gap: f64) -> f64 {
        let mut t = start;
        for _ in 0..n {
            d.on_boot(s(t));
            d.on_brownout(s(t + 0.5));
            t += gap;
        }
        t
    }

    #[test]
    fn repeated_near_boot_brownouts_trip_the_alarm() {
        let mut d = AttackDetector::new(DefenseConfig::default());
        strike_cycles(&mut d, 0.0, 2, 10.0);
        assert!(!d.alarmed(), "two suspicious cycles are below the streak");
        strike_cycles(&mut d, 20.0, 1, 10.0);
        assert!(d.alarmed());
        assert_eq!(d.detections(), 1);
        assert!(d.gate_raise() > Volts::ZERO);
        assert!(d.backoff() >= Seconds::new(4.0));
    }

    #[test]
    fn healthy_cycles_reset_the_streak() {
        let mut d = AttackDetector::new(DefenseConfig::default());
        strike_cycles(&mut d, 0.0, 2, 10.0);
        d.on_boot(s(30.0));
        d.on_brownout(s(50.0)); // 20 s on-period: healthy
        strike_cycles(&mut d, 60.0, 2, 10.0);
        assert!(!d.alarmed(), "streak must restart after a healthy cycle");
        assert_eq!(d.detections(), 0);
    }

    #[test]
    fn implausible_recharge_counts_as_suspicious() {
        let mut d = AttackDetector::new(DefenseConfig::default());
        let mut t = 0.0;
        d.on_boot(s(t));
        for _ in 0..3 {
            d.on_brownout(s(t + 30.0)); // long, healthy on-period…
            t += 30.1; // …but back up 100 ms later: spoofed field
            d.on_boot(s(t));
        }
        assert!(d.alarmed());
    }

    #[test]
    fn backoff_escalates_and_caps_while_alarmed() {
        let cfg = DefenseConfig::default();
        let mut d = AttackDetector::new(cfg);
        let t = strike_cycles(&mut d, 0.0, 3, 10.0);
        assert_eq!(d.backoff(), cfg.backoff_base);
        strike_cycles(&mut d, t, 1, 10.0);
        assert_eq!(d.backoff().get(), cfg.backoff_base.get() * 2.0);
        strike_cycles(&mut d, t + 10.0, 10, 10.0);
        assert_eq!(d.backoff(), cfg.backoff_max);
    }

    #[test]
    fn confirmed_alarm_clears_without_a_false_positive() {
        let mut d = AttackDetector::new(DefenseConfig::default());
        let t = strike_cycles(&mut d, 0.0, 3, 10.0);
        strike_cycles(&mut d, t, 1, 10.0); // attack continues post-raise
        d.on_boot(s(t + 1200.0)); // long quiet: alarm ages out
        assert!(!d.alarmed());
        assert_eq!(d.false_positives(), 0);
        assert_eq!(d.detections(), 1);
    }

    #[test]
    fn unconfirmed_alarm_counts_a_false_positive() {
        let mut d = AttackDetector::new(DefenseConfig::default());
        strike_cycles(&mut d, 0.0, 3, 10.0); // trips the alarm…
        d.on_boot(s(1200.0)); // …then nothing suspicious ever again
        assert!(!d.alarmed());
        assert_eq!(d.false_positives(), 1);
    }

    #[test]
    fn quiet_detector_reports_no_posture() {
        let d = AttackDetector::new(DefenseConfig::default());
        assert!(!d.alarmed());
        assert_eq!(d.gate_raise(), Volts::ZERO);
        assert_eq!(d.backoff(), Seconds::ZERO);
        assert_eq!(d.detections(), 0);
        assert_eq!(d.false_positives(), 0);
    }
}
