//! Closed-form integration of MCU-off charge/decay dynamics — the shared
//! regime solver behind every buffer's `idle_advance` fast path.
//!
//! The per-step reference physics (leak, optional management draw, then
//! [`power_intake`](crate::power_intake) deposit) discretize the ODE
//!
//! ```text
//! C·dv/dt = i_in(v) − G·v − [v > V_d]·P_d/v
//! ```
//!
//! with `i_in(v) = min(p / max(v, V_floor), I_limit)` for `p > 0`. The
//! trajectory is piecewise linear either in `v` (constant-current
//! regions) or in `u = v²` (the power-limited region, where
//! `du/dt = 2(p − P_d − G·u)/C` — the "RC charge curve" with leakage as
//! the R and the management drain folded into the source term). Each
//! regime therefore has an exact exponential solution and an invertible
//! crossing time; the integrator walks the regimes in sequence,
//! accumulating the exact leakage and drain integrals, and holds with
//! clipping at the overvoltage clamp.
//!
//! A constant *current* plus a constant *power* draw has no elementary
//! solution, so when the drain is active inside a constant-current
//! region [`integrate`] returns `None` and the caller falls back to fine
//! stepping. With `p_drain == 0` (plain static buffers, Morphy's
//! externally powered network) the solver is total.

use react_circuit::LeakageSpec;

use crate::{CHARGE_CURRENT_LIMIT, CONVERSION_FLOOR};

/// One idle integration problem: a single equivalent capacitor charged
/// by the harvester frontend and drained by leakage plus (optionally) a
/// constant-power management load active above a voltage threshold.
#[derive(Clone, Copy, Debug)]
pub struct ChargeOde {
    /// Equivalent capacitance at the rail (F).
    pub c: f64,
    /// Leakage conductance, `I_leak(v) = g·v` (S).
    pub g: f64,
    /// Overvoltage clamp (V); charge arriving above it burns in the
    /// protection circuit.
    pub v_max: f64,
    /// Input power offered at the rail (W, ≥ 0).
    pub p_in: f64,
    /// Constant management power drawn from the capacitor while the rail
    /// sits above `v_drain_min` (W). Zero for buffers without an
    /// on-supply controller.
    pub p_drain: f64,
    /// Voltage above which `p_drain` is active.
    pub v_drain_min: f64,
}

/// Result of one closed-form idle integration.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdleSolution {
    /// Time integrated (≤ the requested horizon; shorter only when the
    /// stop voltage was reached first).
    pub elapsed: f64,
    /// Terminal voltage.
    pub v_final: f64,
    /// Energy lost to leakage over `elapsed`, `∫ G·v² dt`.
    pub leaked: f64,
    /// Energy consumed by the management drain over `elapsed`.
    pub drained: f64,
    /// Energy burned by the overvoltage clamp over `elapsed`.
    pub clipped: f64,
}

/// Leakage conductance of a capacitor spec (`I_rated / V_rated`).
pub fn leakage_conductance(leakage: &LeakageSpec) -> f64 {
    if leakage.rated_voltage.get() > 0.0 {
        leakage.current_at_rated.get() / leakage.rated_voltage.get()
    } else {
        0.0
    }
}

/// Integrates the idle ODE from `v_start` for up to `horizon` seconds,
/// stopping early once the voltage reaches `v_stop`. Returns `None` when
/// the trajectory enters a constant-current regime with the drain active
/// (no elementary solution — callers fall back to fine stepping).
pub fn integrate(
    ode: &ChargeOde,
    v_start: f64,
    horizon: f64,
    v_stop: Option<f64>,
) -> Option<IdleSolution> {
    const V_FLOOR: f64 = CONVERSION_FLOOR.get();
    const I_LIMIT: f64 = CHARGE_CURRENT_LIMIT.get();
    let ChargeOde {
        c,
        g,
        v_max,
        p_in: p,
        p_drain,
        v_drain_min,
    } = *ode;

    // Any non-finite input poisons the closed forms — decline and let
    // the caller fall back to fine stepping (the kernel guard counts
    // the fallback).
    if !(v_start.is_finite() && horizon.is_finite() && p.is_finite() && g.is_finite()) {
        return None;
    }

    let mut v = v_start.max(0.0);
    let mut remaining = horizon;
    let mut leaked = 0.0;
    let mut drained = 0.0;
    let mut clipped = 0.0;

    // Exact ∫(a + b·e^{−k t})² dt over [0, T], scaled by `g`: the
    // leakage integral for the linear-in-v regimes.
    let leak_integral_v = |a: f64, b: f64, k: f64, t: f64| -> f64 {
        if g == 0.0 {
            return 0.0;
        }
        if k <= 0.0 {
            // b is constant (no decay term): v = a + b.
            let vv = a + b;
            return g * vv * vv * t;
        }
        let e1 = -(-k * t).exp_m1(); // 1 − e^{−kT}
        let e2 = -(-2.0 * k * t).exp_m1(); // 1 − e^{−2kT}
        g * (a * a * t + 2.0 * a * b * e1 / k + b * b * e2 / (2.0 * k))
    };

    for _ in 0..64 {
        if remaining <= 0.0 {
            break;
        }
        if let Some(vs) = v_stop {
            if v >= vs {
                break;
            }
        }
        let target = v_stop.unwrap_or(f64::INFINITY).min(v_max);
        let drain_on = p_drain > 0.0 && v > v_drain_min;

        // Overvoltage clamp hold: input refills leakage (and the drain,
        // if active at the clamp); the rest burns.
        if v >= v_max - 1e-12 {
            let i_in = if p > 0.0 {
                (p / v_max.max(V_FLOOR)).min(I_LIMIT)
            } else {
                0.0
            };
            let p_d = if p_drain > 0.0 && v_max > v_drain_min {
                p_drain
            } else {
                0.0
            };
            let p_leak = g * v_max * v_max;
            let p_arrive = i_in * v_max;
            if p_arrive >= p_leak + p_d {
                leaked += p_leak * remaining;
                drained += p_d * remaining;
                clipped += (p_arrive - p_leak - p_d) * remaining;
                // Replacement charge arrives continuously; v stays put.
                return Some(IdleSolution {
                    elapsed: horizon,
                    v_final: v_max,
                    leaked,
                    drained,
                    clipped,
                });
            }
            // Outflow outruns the input: fall through and decay below
            // the clamp via the ordinary regimes.
        }

        // Exactly at the drain threshold (a state the pin case below
        // itself produces, and where `drain_on`'s strict comparison
        // matches the reference's `v > V_d` check):
        //
        // * Chatter equilibrium — input strong enough to climb with the
        //   drain off, too weak with it on. The fine-step reference
        //   oscillates within one step of the threshold; the continuum
        //   limit pins the rail there, splitting the input between
        //   leakage and the management drain.
        // * Pass-through — input strong enough to climb even with the
        //   drain on. Hop an ulp above the threshold so the rest of the
        //   rise integrates with the drain active (classifying from
        //   exactly the threshold would otherwise run drain-off all the
        //   way to the target).
        if p_drain > 0.0 && p > 0.0 && (v - v_drain_min).abs() <= 1e-9 && v_drain_min >= V_FLOOR {
            let u = v_drain_min * v_drain_min;
            let rising_below = p - g * u > 0.0;
            let falling_above = p - p_drain - g * u <= 0.0;
            if rising_below && falling_above && v_drain_min < target && p / v_drain_min < I_LIMIT {
                leaked += g * u * remaining;
                drained += (p - g * u) * remaining;
                v = v_drain_min;
                remaining = 0.0;
                break;
            }
            if rising_below && !falling_above && v <= v_drain_min {
                v = f64::from_bits(v_drain_min.to_bits() + 1);
                continue; // reclassify with the drain active
            }
        }

        // Constant-current regimes: linear ODE C·dv/dt = i − G·v. Only
        // closed-form while the drain is off.
        let const_current = if p <= 0.0 && !drain_on {
            Some((0.0, f64::INFINITY)) // pure decay everywhere
        } else if p <= 0.0 {
            None // pure drain decay: linear in u, handled below
        } else if v < V_FLOOR {
            Some(((p / V_FLOOR).min(I_LIMIT), V_FLOOR))
        } else if p / v >= I_LIMIT {
            Some((I_LIMIT, p / I_LIMIT))
        } else {
            None
        };

        if let Some((i, regime_top)) = const_current {
            if drain_on {
                return None; // constant current + constant power: no closed form
            }
            let k = g / c;
            let slope0 = (i - g * v) / c;
            // Crossing the drain threshold from below toggles the ODE,
            // so it bounds the regime like the stop/clamp target does.
            let mut upper = target.min(regime_top);
            if p_drain > 0.0 && v < v_drain_min {
                upper = upper.min(v_drain_min);
            }
            if slope0 <= 0.0 {
                // Decaying (or flat): stays in regime; integrate out.
                let (a, b) = if g > 0.0 {
                    (i / g, v - i / g)
                } else {
                    (0.0, v)
                };
                let v_end = if g > 0.0 {
                    a + b * (-k * remaining).exp()
                } else {
                    v // i == 0 && g == 0: nothing moves
                };
                leaked += leak_integral_v(a, b, k, remaining);
                v = v_end;
                remaining = 0.0;
                break;
            }
            // Rising: time to the regime/target boundary.
            let (a, b) = if g > 0.0 {
                (i / g, v - i / g)
            } else {
                (v, 0.0)
            };
            let t_hit = if g > 0.0 {
                let ratio = (upper - a) / (v - a);
                if ratio <= 0.0 || ratio >= 1.0 {
                    f64::INFINITY // boundary at/behind the asymptote
                } else {
                    -ratio.ln() / k
                }
            } else {
                (upper - v) * c / i
            };
            if t_hit >= remaining {
                let v_end = if g > 0.0 {
                    a + b * (-k * remaining).exp()
                } else {
                    v + i * remaining / c
                };
                leaked += if g > 0.0 {
                    leak_integral_v(a, b, k, remaining)
                } else {
                    0.0
                };
                v = v_end.min(upper);
                remaining = 0.0;
                break;
            }
            leaked += if g > 0.0 {
                leak_integral_v(a, b, k, t_hit)
            } else {
                0.0
            };
            remaining -= t_hit;
            // Land an ulp past the boundary so the next iteration
            // classifies into the adjacent regime.
            v = f64::from_bits(upper.to_bits() + 1);
            continue;
        }

        // Power-limited regime (with the drain folded into the source
        // term when active): linear ODE in u = v²,
        // du/dt = (2/C)(p_net − G·u).
        let p_net = if drain_on { p - p_drain } else { p };
        let u = v * v;
        let k2 = 2.0 * g / c;
        let du0 = 2.0 * (p_net - g * u) / c;
        // Regime bounds: rising caps at the stop/clamp target or the
        // drain threshold from below; decaying exits at the drain
        // threshold from above (the drain switches off there).
        let upper_v = if !drain_on && p_drain > 0.0 && v < v_drain_min {
            target.min(v_drain_min)
        } else {
            target
        };
        let lower_v = if drain_on && v_drain_min >= V_FLOOR {
            v_drain_min
        } else {
            0.0
        };

        let ueq = if g > 0.0 { p_net / g } else { 0.0 };
        let u_after = |tt: f64| -> f64 {
            if g > 0.0 {
                ueq + (u - ueq) * (-k2 * tt).exp()
            } else {
                u + 2.0 * p_net * tt / c
            }
        };
        let leak_over = |tt: f64| -> f64 {
            if g > 0.0 {
                // ∫u dt for u = ueq + (u0−ueq)e^{−k2 t}.
                let e1 = -(-k2 * tt).exp_m1();
                g * (ueq * tt + (u - ueq) * e1 / k2)
            } else {
                0.0
            }
        };

        if du0 <= 0.0 {
            // Decaying toward u_eq (negative when the drain outruns the
            // input); the only exit is the drain threshold from above.
            let lower_u = lower_v * lower_v;
            let t_exit = if lower_u > 0.0 && u > lower_u {
                if g > 0.0 {
                    if ueq < lower_u {
                        let ratio = (lower_u - ueq) / (u - ueq);
                        -ratio.ln() / k2
                    } else {
                        f64::INFINITY // equilibrium above the boundary
                    }
                } else if p_net < 0.0 {
                    (lower_u - u) * c / (2.0 * p_net)
                } else {
                    f64::INFINITY // g == 0 && p_net == 0: flat
                }
            } else {
                f64::INFINITY
            };
            if t_exit >= remaining {
                leaked += leak_over(remaining);
                if drain_on {
                    drained += p_drain * remaining;
                }
                v = u_after(remaining).max(0.0).sqrt();
                remaining = 0.0;
                break;
            }
            leaked += leak_over(t_exit);
            if drain_on {
                drained += p_drain * t_exit;
            }
            remaining -= t_exit;
            // Land an ulp below the threshold: drain off next iteration.
            v = f64::from_bits(lower_v.to_bits() - 1);
            continue;
        }

        // Rising toward the regime's upper boundary.
        let upper_u = upper_v * upper_v;
        let t_hit = if g > 0.0 {
            let ratio = (upper_u - ueq) / (u - ueq);
            if ratio <= 0.0 || ratio >= 1.0 {
                f64::INFINITY // boundary at/behind the asymptote
            } else {
                -ratio.ln() / k2
            }
        } else {
            (upper_u - u) * c / (2.0 * p_net)
        };
        if t_hit >= remaining {
            let u_end = u_after(remaining).min(upper_u);
            leaked += leak_over(remaining);
            if drain_on {
                drained += p_drain * remaining;
            }
            v = u_end.max(0.0).sqrt();
            remaining = 0.0;
            break;
        }
        leaked += leak_over(t_hit);
        if drain_on {
            drained += p_drain * t_hit;
        }
        remaining -= t_hit;
        if let Some(vs) = v_stop {
            if upper_v >= vs {
                v = vs;
                break;
            }
        }
        v = f64::from_bits(upper_v.to_bits() + 1).min(v_max);
    }

    Some(IdleSolution {
        elapsed: horizon - remaining,
        v_final: v,
        leaked,
        drained,
        clipped,
    })
}

/// Two-pass quantized integration for `idle_advance` implementations:
/// pass 1 finds where (if at all) the trajectory crosses `v_stop`; the
/// crossing time is rounded *up* onto the `fine_dt` grid so the power
/// gate observes the enable crossing at the same timestep quantization
/// as the fixed-dt reference kernel; pass 2 integrates exactly that long
/// to book the energy flows. When pass 1 ran the full horizon without
/// stopping (the common long-charge-phase case), its solution already is
/// the answer. Returns the advanced time and the matching solution, or
/// `None` when the trajectory has no closed form (see [`integrate`]).
pub fn integrate_quantized(
    ode: &ChargeOde,
    v_start: f64,
    duration: f64,
    v_stop: f64,
    fine_dt: f64,
) -> Option<(f64, IdleSolution)> {
    assert!(fine_dt > 0.0, "fine timestep must be positive");
    if v_start >= v_stop || duration <= 0.0 {
        return Some((
            0.0,
            IdleSolution {
                v_final: v_start,
                ..IdleSolution::default()
            },
        ));
    }
    let probe = integrate(ode, v_start, duration, Some(v_stop))?;
    if probe.elapsed >= duration {
        return Some((duration, probe));
    }
    // Crossed early: quantize the crossing up to the step grid.
    let t_adv = ((probe.elapsed / fine_dt).ceil() * fine_dt)
        .max(fine_dt)
        .min(duration);
    let fin = integrate(ode, v_start, t_adv, None)?;
    Some((t_adv, fin))
}

/// One powered-sleep integration problem: the idle ODE plus a constant
/// *current* load at the rail — the LPM3 MCU draw and any peripheral the
/// workload holds through the sleep stretch. The governing equation is
///
/// ```text
/// C·dv/dt = i_in(v) − G·v − I_load − [v > V_d]·P_d/v
/// ```
///
/// Multiplying by `v` puts every regime in one quadratic normal form,
/// `C·v·dv/dt = q(v) = γ + β·v − G·v²` (constant-current input folds
/// into `β`, power-limited input and the management drain into `γ`), so
/// `t(v)`, `∫v dt`, and — via the energy identity `∫q dt = ΔE` — every
/// ledger flow have exact log/atan primitives. Unlike the MCU-off
/// solver, the mixed constant-current-plus-constant-power case is *not*
/// a fallback here: the quadratic form covers it.
#[derive(Clone, Copy, Debug)]
pub struct PoweredOde {
    /// Equivalent capacitance at the rail (F).
    pub c: f64,
    /// Leakage conductance, `I_leak(v) = g·v` (S).
    pub g: f64,
    /// Overvoltage clamp (V).
    pub v_max: f64,
    /// Input power offered at the rail (W, ≥ 0).
    pub p_in: f64,
    /// Constant-current load at the rail (A, ≥ 0): MCU sleep current
    /// plus any peripheral held through the stretch.
    pub i_load: f64,
    /// Constant management power drawn while `v > v_drain_min` (W).
    pub p_drain: f64,
    /// Voltage above which `p_drain` is active.
    pub v_drain_min: f64,
}

/// Result of one closed-form powered integration, with every ledger
/// flow closed so `delivered − leaked − drained − load_consumed −
/// clipped == ΔE` to machine precision.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoweredSolution {
    /// Time integrated (≤ the requested horizon; shorter only when the
    /// stop voltage was reached first).
    pub elapsed: f64,
    /// Terminal voltage.
    pub v_final: f64,
    /// Energy the harvester delivered into storage (incl. clipped).
    pub delivered: f64,
    /// Energy lost to leakage, `∫ G·v² dt`.
    pub leaked: f64,
    /// Energy consumed by the management drain.
    pub drained: f64,
    /// Energy consumed by the constant-current load, `I·∫v dt`.
    pub load_consumed: f64,
    /// Energy burned by the overvoltage clamp.
    pub clipped: f64,
}

/// Antiderivative bundle for `q(v) = a·v² + b·v + c`: `i1 = ∫ v/q dv`
/// gives crossing times (`t = C·Δi1`), `i2 = ∫ v²/q dv` gives the load
/// integral (`∫v dt = C·Δi2`). Only evaluated on root-free intervals —
/// the walker confines each segment between its regime boundaries and
/// the nearest equilibrium, where `q` keeps one sign.
#[derive(Clone, Copy, Debug)]
struct Quad {
    a: f64,
    b: f64,
    c: f64,
}

impl Quad {
    #[inline]
    fn q(&self, v: f64) -> f64 {
        (self.a * v + self.b) * v + self.c
    }

    /// Antiderivative of `1/q`.
    fn i0(&self, v: f64) -> f64 {
        let Quad { a, b, c } = *self;
        if a == 0.0 {
            if b == 0.0 {
                return v / c;
            }
            return (b * v + c).abs().ln() / b;
        }
        let disc = b * b - 4.0 * a * c;
        if disc > 0.0 {
            let sq = disc.sqrt();
            let r1 = (-b - sq) / (2.0 * a);
            let r2 = (-b + sq) / (2.0 * a);
            ((v - r2) / (v - r1)).abs().ln() / (a * (r2 - r1))
        } else if disc == 0.0 {
            let r = -b / (2.0 * a);
            -1.0 / (a * (v - r))
        } else {
            let sq = (-disc).sqrt();
            2.0 / sq * ((2.0 * a * v + b) / sq).atan()
        }
    }

    /// Antiderivative of `v/q`.
    fn i1(&self, v: f64) -> f64 {
        let Quad { a, b, c } = *self;
        if a == 0.0 {
            if b == 0.0 {
                return v * v / (2.0 * c);
            }
            return v / b - (c / b) * self.i0(v);
        }
        self.q(v).abs().ln() / (2.0 * a) - (b / (2.0 * a)) * self.i0(v)
    }

    /// Antiderivative of `v²/q`.
    fn i2(&self, v: f64) -> f64 {
        let Quad { a, b, c } = *self;
        if a == 0.0 {
            if b == 0.0 {
                return v * v * v / (3.0 * c);
            }
            return v * v / (2.0 * b) - (c / b) * self.i1(v);
        }
        v / a - (b / a) * self.i1(v) - (c / a) * self.i0(v)
    }

    /// Real roots in ascending order.
    fn roots(&self) -> (Option<f64>, Option<f64>) {
        let Quad { a, b, c } = *self;
        if a == 0.0 {
            if b == 0.0 {
                return (None, None);
            }
            return (Some(-c / b), None);
        }
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return (None, None);
        }
        let sq = disc.sqrt();
        let r1 = (-b - sq) / (2.0 * a);
        let r2 = (-b + sq) / (2.0 * a);
        if r1 <= r2 {
            (Some(r1), Some(r2))
        } else {
            (Some(r2), Some(r1))
        }
    }

    /// Inverts `t(v) = target` on the monotone stretch from `v0`
    /// toward `v_lim` (`v_lim` may be an equilibrium root, where
    /// `t → ∞`; it is never evaluated itself). Newton with a bisection
    /// safeguard: `dt/dv = C·v/q(v)` is exact, so from the Euler
    /// initial guess the solve usually lands in two or three
    /// iterations — this runs once per poll segment on the controller
    /// buffers' sleep strides, so it is hot.
    fn invert(&self, cc: f64, v0: f64, v_lim: f64, target: f64) -> f64 {
        let base = self.i1(v0);
        let rising = v0 <= v_lim;
        let (mut lo, mut hi) = if rising { (v0, v_lim) } else { (v_lim, v0) };
        let mut v = v0 + self.q(v0) / (cc * v0) * target;
        if !(v > lo && v < hi) {
            v = 0.5 * (lo + hi);
        }
        for _ in 0..60 {
            let t = cc * (self.i1(v) - base);
            let err = t - target;
            // Tighten the bracket (t grows along the trajectory: with
            // v0 on the `lo` side when rising, the `hi` side when not).
            if (err < 0.0) == rising {
                lo = v;
            } else {
                hi = v;
            }
            if err.abs() <= 1e-12 * target.abs() {
                break;
            }
            let q = self.q(v);
            let mut next = if q != 0.0 {
                v - err * q / (cc * v)
            } else {
                0.5 * (lo + hi)
            };
            if !(next > lo && next < hi) {
                next = 0.5 * (lo + hi);
            }
            if next == v || lo >= hi {
                break;
            }
            v = next;
        }
        v
    }
}

/// Integrates the powered ODE from `v_start` for up to `horizon`
/// seconds, stopping early once the voltage *falls to* `v_stop` (the
/// power gate's brown-out threshold) or — when `v_wake` is given —
/// *rises to* it (the predicted crossing of a sleeping workload's
/// §3.4.1 energy threshold). Rising trajectories otherwise hold at the
/// overvoltage clamp. Returns `None` only for malformed inputs; every
/// regime has a closed form.
pub fn integrate_powered(
    ode: &PoweredOde,
    v_start: f64,
    horizon: f64,
    v_stop: f64,
    v_wake: Option<f64>,
) -> Option<PoweredSolution> {
    const V_FLOOR: f64 = CONVERSION_FLOOR.get();
    const I_LIMIT: f64 = CHARGE_CURRENT_LIMIT.get();
    let PoweredOde {
        c,
        g,
        v_max,
        p_in: p,
        i_load,
        p_drain,
        v_drain_min,
    } = *ode;
    // A powered stretch starts above the brown-out voltage; an empty
    // rail (or malformed problem — including any non-finite input, which
    // the kernel guard degrades to fine-stepping) is the fine-step
    // loop's business.
    let well_formed = c > 0.0
        && horizon.is_finite()
        && v_start > 0.0
        && v_start.is_finite()
        && p.is_finite()
        && i_load.is_finite()
        && g.is_finite()
        && p_drain.is_finite();
    if !well_formed {
        return None;
    }

    let mut v = v_start.min(v_max);
    let mut remaining = horizon;
    let mut sol = PoweredSolution {
        v_final: v,
        ..PoweredSolution::default()
    };

    // Books one integrated segment, closing the leakage flow against
    // the energy identity so the ledger balances exactly.
    let book = |sol: &mut PoweredSolution,
                quad: &Quad,
                v0: f64,
                v1: f64,
                t: f64,
                i_const: Option<f64>,
                drain_on: bool| {
        let int_v = c * (quad.i2(v1) - quad.i2(v0));
        let delivered = match i_const {
            Some(i) => i * int_v,
            None => p * t,
        };
        let load = i_load * int_v;
        let drained = if drain_on { p_drain * t } else { 0.0 };
        let de = 0.5 * c * (v1 * v1 - v0 * v0);
        // ∫q dt = ΔE ⇒ leaked = delivered − drained − load − ΔE exactly;
        // clamp the g = 0 case's rounding dust at zero and re-close.
        let leaked = (delivered - drained - load - de).max(0.0);
        sol.delivered += de + leaked + drained + load;
        sol.leaked += leaked;
        sol.drained += drained;
        sol.load_consumed += load;
        sol.elapsed += t;
        sol.v_final = v1;
    };

    for _ in 0..64 {
        if remaining <= 0.0 || v <= v_stop {
            break;
        }
        if let Some(vw) = v_wake {
            if v >= vw {
                break;
            }
        }

        // Overvoltage clamp hold: net inflow at the clamp burns in the
        // protection circuit while the rail sits pinned.
        if v >= v_max - 1e-12 {
            let i_in = if p > 0.0 {
                (p / v_max.max(V_FLOOR)).min(I_LIMIT)
            } else {
                0.0
            };
            let p_d = if p_drain > 0.0 && v_max > v_drain_min {
                p_drain
            } else {
                0.0
            };
            let inflow = i_in * v_max;
            let outflow = g * v_max * v_max + i_load * v_max + p_d;
            if inflow >= outflow {
                sol.delivered += inflow * remaining;
                sol.leaked += g * v_max * v_max * remaining;
                sol.drained += p_d * remaining;
                sol.load_consumed += i_load * v_max * remaining;
                sol.clipped += (inflow - outflow) * remaining;
                sol.elapsed += remaining;
                sol.v_final = v_max;
                return Some(sol);
            }
            // Outflow outruns the clamp input: decays below via the
            // ordinary regimes.
        }

        let drain_on = p_drain > 0.0 && v > v_drain_min;

        // Input regime at v: constant current (dark / cold-start floor /
        // current-limited) or power-limited, with its v-interval.
        let (i_const, regime_lo, regime_hi) = if p <= 0.0 {
            (Some(0.0), 0.0, f64::INFINITY)
        } else if v < V_FLOOR {
            (Some((p / V_FLOOR).min(I_LIMIT)), 0.0, V_FLOOR)
        } else if p / v >= I_LIMIT {
            (Some(I_LIMIT), V_FLOOR, p / I_LIMIT)
        } else {
            (None, (p / I_LIMIT).max(V_FLOOR), f64::INFINITY)
        };

        let gamma = match i_const {
            Some(_) => 0.0,
            None => p,
        } - if drain_on { p_drain } else { 0.0 };
        let beta = i_const.unwrap_or(0.0) - i_load;
        let quad = Quad {
            a: -g,
            b: beta,
            c: gamma,
        };

        let q0 = quad.q(v);
        if q0 == 0.0 {
            // Equilibrium: inflow exactly balances outflow; the rail
            // holds for the rest of the horizon.
            let delivered = match i_const {
                Some(i) => i * v,
                None => p,
            };
            sol.delivered += delivered * remaining;
            sol.leaked += g * v * v * remaining;
            sol.drained += if drain_on { p_drain * remaining } else { 0.0 };
            sol.load_consumed += i_load * v * remaining;
            sol.elapsed += remaining;
            sol.v_final = v;
            return Some(sol);
        }

        // Regime boundary in the direction of motion (the drain
        // threshold toggles the ODE, so it bounds like the rest).
        let rising = q0 > 0.0;
        let vb = if rising {
            let mut vb = regime_hi.min(v_max);
            if let Some(vw) = v_wake {
                vb = vb.min(vw);
            }
            if p_drain > 0.0 && !drain_on && v < v_drain_min {
                vb = vb.min(v_drain_min);
            }
            vb
        } else {
            let mut vb = regime_lo.max(v_stop).max(0.0);
            if drain_on && v_drain_min > vb {
                vb = v_drain_min;
            }
            vb
        };

        // Equilibrium root strictly between v and the boundary makes the
        // boundary unreachable: integrate out the horizon toward it.
        let (r_lo, r_hi) = quad.roots();
        let blocking = if rising {
            [r_lo, r_hi]
                .into_iter()
                .flatten()
                .filter(|&r| r > v && r <= vb)
                .fold(None::<f64>, |m, r| Some(m.map_or(r, |m| m.min(r))))
        } else {
            [r_lo, r_hi]
                .into_iter()
                .flatten()
                .filter(|&r| r < v && r >= vb)
                .fold(None::<f64>, |m, r| Some(m.map_or(r, |m| m.max(r))))
        };

        if let Some(r) = blocking {
            let v_end = quad.invert(c, v, r, remaining);
            book(&mut sol, &quad, v, v_end, remaining, i_const, drain_on);
            return Some(sol);
        }

        let t_hit = c * (quad.i1(vb) - quad.i1(v));
        if !t_hit.is_finite() || t_hit >= remaining {
            let v_end = quad.invert(c, v, vb, remaining);
            book(&mut sol, &quad, v, v_end, remaining, i_const, drain_on);
            return Some(sol);
        }
        book(&mut sol, &quad, v, vb, t_hit, i_const, drain_on);
        remaining -= t_hit;
        // Land an ulp past the boundary so the next iteration
        // classifies into the adjacent regime (never above the clamp,
        // never below an empty rail).
        if !rising && vb <= 0.0 {
            break;
        }
        v = if rising {
            f64::from_bits(vb.to_bits() + 1).min(v_max)
        } else {
            f64::from_bits(vb.to_bits() - 1)
        };
        sol.v_final = v;
    }

    Some(sol)
}

/// Two-pass quantized powered integration, mirroring
/// [`integrate_quantized`]: pass 1 finds the brown-out (or wake-energy)
/// crossing, if any; the crossing time is rounded *up* onto the
/// `fine_dt` grid so the power gate — and the sleeping workload's
/// per-step energy check — observe it at the same timestep quantization
/// as the fixed-dt reference; pass 2 integrates exactly that long for
/// the energy books. Returns the advanced time and the matching
/// solution.
pub fn integrate_powered_quantized(
    ode: &PoweredOde,
    v_start: f64,
    duration: f64,
    v_stop: f64,
    v_wake: Option<f64>,
    fine_dt: f64,
) -> Option<(f64, PoweredSolution)> {
    assert!(fine_dt > 0.0, "fine timestep must be positive");
    let woken = |v: f64| v_wake.is_some_and(|vw| v >= vw);
    if v_start <= v_stop || woken(v_start) || duration <= 0.0 {
        return Some((
            0.0,
            PoweredSolution {
                v_final: v_start,
                ..PoweredSolution::default()
            },
        ));
    }
    let probe = integrate_powered(ode, v_start, duration, v_stop, v_wake)?;
    if probe.elapsed >= duration {
        return Some((duration, probe));
    }
    if probe.v_final > v_stop && !woken(probe.v_final) {
        // Regime-walker exhaustion (pathological chatter): commit the
        // whole-step prefix and let the caller fine-step the rest.
        let t_adv = (probe.elapsed / fine_dt).floor() * fine_dt;
        if t_adv < fine_dt {
            return None;
        }
        let fin = integrate_powered(ode, v_start, t_adv, f64::NEG_INFINITY, None)?;
        return Some((t_adv, fin));
    }
    // Crossed a stop early: quantize the crossing up to the grid.
    let t_adv = ((probe.elapsed / fine_dt).ceil() * fine_dt)
        .max(fine_dt)
        .min(duration);
    let fin = integrate_powered(ode, v_start, t_adv, f64::NEG_INFINITY, None)?;
    Some((t_adv, fin))
}

/// Meet time of two *decoupled* trajectories: a bank charging from
/// `v_bank` under `bank` (diode-isolated, so it takes the whole
/// harvester input and no load) and a pack starting at `v_pack > v_bank`
/// under `pack` (load + overhead, no input). This is REACT's
/// un-equalized sleep state: the output diode blocks until the bank
/// terminal rises to the falling pack voltage, at which point the two
/// couple and move as one combined capacitor. Returns the first `t ≤
/// horizon` with `v_bank(t) ≥ v_pack(t)`, or `None` when the
/// trajectories do not meet within the horizon (or either closed form
/// declines).
///
/// Both trajectories have exact closed forms, so the crossing is found
/// by bisection on the *gap* `v_bank(t) − v_pack(t)` — each probe is two
/// O(regimes) solver calls, not a simulation. The gap is negative at 0
/// by precondition; the bracket `[lo, hi]` maintains `gap(lo) < 0 ≤
/// gap(hi)`, so the returned time errs at most `horizon·2⁻⁵⁰` late —
/// callers quantize it up onto the fine-step grid anyway.
pub fn staged_meet_time(
    bank: &ChargeOde,
    v_bank: f64,
    pack: &PoweredOde,
    v_pack: f64,
    horizon: f64,
) -> Option<f64> {
    if !horizon.is_finite() || horizon <= 0.0 || v_bank >= v_pack {
        return None;
    }
    let gap = |t: f64| -> Option<f64> {
        let vb = integrate(bank, v_bank, t, None)?.v_final;
        let vp = integrate_powered(pack, v_pack, t, f64::NEG_INFINITY, None)?.v_final;
        Some(vb - vp)
    };
    if gap(horizon)? < 0.0 {
        return None;
    }
    let (mut lo, mut hi) = (0.0_f64, horizon);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if gap(mid)? < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ode(p_in: f64, p_drain: f64) -> ChargeOde {
        ChargeOde {
            c: 10e-3,
            g: 0.3e-6 / 5.5,
            v_max: 3.6,
            p_in,
            p_drain,
            v_drain_min: 0.5,
        }
    }

    #[test]
    fn zero_drain_charge_reaches_stop() {
        let sol = integrate(&ode(2e-3, 0.0), 0.0, 600.0, Some(3.3)).unwrap();
        assert!(sol.elapsed < 600.0, "should cross before the horizon");
        assert!((sol.v_final - 3.3).abs() < 1e-9);
        assert_eq!(sol.drained, 0.0);
    }

    #[test]
    fn drain_slows_the_charge() {
        let plain = integrate(&ode(2e-3, 0.0), 1.0, 600.0, Some(3.3)).unwrap();
        let drained = integrate(&ode(2e-3, 50e-6), 1.0, 600.0, Some(3.3)).unwrap();
        assert!(
            drained.elapsed > plain.elapsed * 1.005,
            "drain must delay the crossing: {} vs {}",
            drained.elapsed,
            plain.elapsed
        );
        assert!(drained.drained > 0.0);
    }

    #[test]
    fn drain_energy_is_power_times_time_above_threshold() {
        // Start above the threshold with strong input: drain runs the
        // whole horizon.
        let sol = integrate(&ode(5e-3, 20e-6), 1.0, 50.0, None).unwrap();
        assert!((sol.drained - 20e-6 * 50.0).abs() < 1e-12);
    }

    #[test]
    fn weak_input_pins_at_drain_threshold() {
        // 5 µW input < 20 µW drain: climbs to the threshold and chatters
        // there; the continuum limit holds the rail at the threshold with
        // the input split between leakage and drain.
        let sol = integrate(&ode(5e-6, 20e-6), 0.45, 2000.0, Some(3.3)).unwrap();
        assert!((sol.elapsed - 2000.0).abs() < 1e-9);
        assert!(
            (sol.v_final - 0.5).abs() < 1e-6,
            "pinned at threshold, got {}",
            sol.v_final
        );
        // All input energy accounted between leak and drain.
        let input_energy = 5e-6 * sol.elapsed;
        assert!((sol.leaked + sol.drained - input_energy).abs() < 0.05 * input_energy);
    }

    #[test]
    fn drain_decay_crosses_threshold_and_switches_off() {
        // No input: decays from 1 V through the 0.5 V threshold; below it
        // only leakage acts, so the voltage settles slowly rather than
        // draining to zero at constant power.
        let sol = integrate(&ode(0.0, 20e-6), 1.0, 5000.0, None).unwrap();
        assert!(sol.v_final < 0.5);
        assert!(
            sol.v_final > 0.2,
            "leak-only decay is slow: {}",
            sol.v_final
        );
        assert!(sol.drained > 0.0);
    }

    #[test]
    fn drain_stays_active_when_starting_exactly_at_threshold() {
        // The pin case commits v_final == v_drain_min exactly; a later
        // window with stronger input must integrate the rise *with* the
        // drain on, not classify drain-off from the boundary.
        let pinned = integrate(&ode(5e-6, 20e-6), 0.45, 2000.0, Some(3.3)).unwrap();
        assert_eq!(
            pinned.v_final, 0.5,
            "pin must land exactly on the threshold"
        );
        let resumed = integrate(&ode(2e-3, 20e-6), pinned.v_final, 600.0, Some(3.3)).unwrap();
        // Crossing time matches a run that merely passes through the
        // threshold (starting an ulp below), and the drain is booked for
        // the whole rise.
        let through = integrate(&ode(2e-3, 20e-6), 0.4999, 600.0, Some(3.3)).unwrap();
        assert!(
            (resumed.elapsed - through.elapsed).abs() < 0.01 * through.elapsed,
            "boundary start {} vs pass-through {}",
            resumed.elapsed,
            through.elapsed
        );
        assert!(
            (resumed.drained - 20e-6 * resumed.elapsed).abs() < 0.01 * resumed.drained,
            "drain must run for the whole rise: {} vs {}",
            resumed.drained,
            20e-6 * resumed.elapsed
        );
    }

    #[test]
    fn mixed_constant_current_drain_reports_no_closed_form() {
        // 30 mW at 0.6 V is past the 50 mA charge-current limit, with the
        // drain active: no elementary solution.
        assert!(integrate(&ode(30e-3, 20e-6), 0.6, 10.0, None).is_none());
    }

    #[test]
    fn quantized_crossing_lands_on_grid() {
        let (t_adv, sol) = integrate_quantized(&ode(2e-3, 0.0), 0.0, 600.0, 3.3, 1e-3).unwrap();
        let steps = t_adv / 1e-3;
        assert!((steps - steps.round()).abs() < 1e-6, "steps {steps}");
        assert!(sol.v_final >= 3.3 - 1e-6);
    }

    fn powered(p_in: f64, i_load: f64, p_drain: f64) -> PoweredOde {
        PoweredOde {
            c: 10e-3,
            g: 0.3e-6 / 5.5,
            v_max: 3.6,
            p_in,
            i_load,
            p_drain,
            v_drain_min: 0.5,
        }
    }

    /// Dense Euler reference of the same continuous powered ODE.
    fn euler_powered(ode: &PoweredOde, v0: f64, horizon: f64, v_stop: f64) -> (f64, f64) {
        const V_FLOOR: f64 = CONVERSION_FLOOR.get();
        const I_LIMIT: f64 = CHARGE_CURRENT_LIMIT.get();
        let dt = 1e-4;
        let mut v = v0;
        let mut t = 0.0;
        while t < horizon {
            if v <= v_stop {
                break;
            }
            let i_in = if ode.p_in > 0.0 {
                (ode.p_in / v.max(V_FLOOR)).min(I_LIMIT)
            } else {
                0.0
            };
            let p_d = if ode.p_drain > 0.0 && v > ode.v_drain_min {
                ode.p_drain / v
            } else {
                0.0
            };
            let dv = (i_in - ode.g * v - ode.i_load - p_d) * dt / ode.c;
            v = (v + dv).min(ode.v_max).max(0.0);
            t += dt;
        }
        (t, v)
    }

    #[test]
    fn powered_dark_drain_matches_euler_and_crosses_brownout() {
        // 200 µA LPM3+radio draw, no input: C·ΔV/I ≈ 75 s to brown-out.
        let o = powered(0.0, 200e-6, 0.0);
        let sol = integrate_powered(&o, 3.3, 600.0, 1.8, None).unwrap();
        let (t_ref, _) = euler_powered(&o, 3.3, 600.0, 1.8);
        assert!(
            (sol.elapsed - t_ref).abs() < 0.01 * t_ref,
            "crossing {} vs euler {}",
            sol.elapsed,
            t_ref
        );
        assert!((sol.v_final - 1.8).abs() < 1e-6);
        assert!(sol.load_consumed > 0.0 && sol.delivered == 0.0);
    }

    #[test]
    fn powered_charge_rises_and_holds_at_clamp() {
        let o = powered(5e-3, 100e-6, 0.0);
        let sol = integrate_powered(&o, 2.0, 400.0, 1.8, None).unwrap();
        let (_, v_ref) = euler_powered(&o, 2.0, 400.0, 1.8);
        assert!((sol.elapsed - 400.0).abs() < 1e-9);
        assert!(
            (sol.v_final - v_ref).abs() < 0.01 * v_ref,
            "v {} vs euler {v_ref}",
            sol.v_final
        );
        assert!((sol.v_final - 3.6).abs() < 1e-9, "must reach the clamp");
        assert!(sol.clipped > 0.0);
    }

    #[test]
    fn powered_equilibrium_is_asymptotic() {
        // 2.5 mW input vs 1 mA load: equilibrium just under 2.5 V.
        let o = powered(2.5e-3, 1e-3, 0.0);
        let sol = integrate_powered(&o, 2.0, 2000.0, 0.5, None).unwrap();
        let (_, v_ref) = euler_powered(&o, 2.0, 2000.0, 0.5);
        assert!((sol.elapsed - 2000.0).abs() < 1e-9);
        assert!(
            (sol.v_final - v_ref).abs() < 0.005,
            "v {} vs euler {v_ref}",
            sol.v_final
        );
        assert!((sol.v_final - 2.5).abs() < 0.01, "v {}", sol.v_final);
    }

    #[test]
    fn powered_mixed_drain_and_load_matches_euler() {
        // The case the MCU-off solver refuses (constant current +
        // constant power): the quadratic form handles it exactly.
        let o = powered(1e-3, 150e-6, 60e-6);
        for v0 in [3.3, 2.2, 1.9] {
            let sol = integrate_powered(&o, v0, 300.0, 1.8, None).unwrap();
            let (t_ref, v_ref) = euler_powered(&o, v0, 300.0, 1.8);
            assert!(
                (sol.elapsed - t_ref).abs() < 0.01 * t_ref.max(1.0),
                "v0={v0}: t {} vs euler {t_ref}",
                sol.elapsed
            );
            assert!(
                (sol.v_final - v_ref).abs() < 0.01 * v_ref.max(0.1),
                "v0={v0}: v {} vs euler {v_ref}",
                sol.v_final
            );
            assert!(sol.drained > 0.0);
        }
    }

    #[test]
    fn powered_books_balance_exactly() {
        for (p, i, d, v0) in [
            (0.0, 2e-6, 0.0, 3.3),
            (2e-3, 150e-6, 0.0, 2.0),
            (5e-3, 1e-3, 60e-6, 1.9),
            (20e-3, 100e-6, 0.0, 3.55),
            (0.0, 5e-3, 20e-6, 3.0),
        ] {
            let o = powered(p, i, d);
            let sol = integrate_powered(&o, v0, 250.0, 0.4, None).unwrap();
            let de = 0.5 * o.c * (sol.v_final * sol.v_final - v0 * v0);
            let resid =
                sol.delivered - sol.leaked - sol.drained - sol.load_consumed - sol.clipped - de;
            assert!(
                resid.abs() < 1e-9 * sol.delivered.max(sol.load_consumed).max(1e-6),
                "p={p} i={i} d={d}: residual {resid}"
            );
        }
    }

    #[test]
    fn powered_quantized_crossing_lands_on_grid() {
        let o = powered(0.0, 500e-6, 0.0);
        let (t_adv, sol) = integrate_powered_quantized(&o, 3.3, 600.0, 1.8, None, 1e-3).unwrap();
        let steps = t_adv / 1e-3;
        assert!((steps - steps.round()).abs() < 1e-6, "steps {steps}");
        assert!(sol.v_final <= 1.8 + 1e-9, "v {}", sol.v_final);
        assert!(t_adv < 600.0);
    }

    #[test]
    fn conservation_in_every_mode() {
        for (p, d, v0) in [
            (2e-3, 0.0, 0.0),
            (2e-3, 20e-6, 0.0),
            (0.0, 20e-6, 2.5),
            (0.0, 0.0, 2.5),
            (10e-3, 20e-6, 3.55),
        ] {
            let o = ode(p, d);
            let sol = integrate(&o, v0, 300.0, None).unwrap();
            let e0 = 0.5 * o.c * v0 * v0;
            let e1 = 0.5 * o.c * sol.v_final * sol.v_final;
            let input = sol.leaked + sol.drained + sol.clipped + (e1 - e0);
            // Input energy implied by the books must be non-negative and
            // bounded by the offered power.
            assert!(
                input >= -1e-9,
                "p={p} d={d} v0={v0}: negative implied input {input}"
            );
            assert!(
                input <= p * sol.elapsed + 1e-9,
                "p={p} d={d} v0={v0}: implied input {input} exceeds offered {}",
                p * sol.elapsed
            );
        }
    }
}
