//! Batched (SoA-friendly) advance entry points for fleets of
//! same-topology buffers.
//!
//! The fleet kernel advances thousands of [`StaticBuffer`] cells that
//! share one capacitor spec and differ only in state (voltage) and
//! input power. These entry points expose that structure-of-arrays
//! shape explicitly — one spec, parallel `inputs`/`advanced` lanes —
//! so a vectorized backend can later swap in under the same contract
//! without touching callers.
//!
//! **Contract:** results are *bit-identical* to calling
//! [`EnergyBuffer::idle_advance`] / [`EnergyBuffer::powered_advance`]
//! on each buffer independently, in slice order. The current
//! implementation guarantees that trivially by executing exactly those
//! per-cell closed forms; any future SIMD lane-split must preserve it
//! (the `batched_*_matches_scalar` property tests pin the equivalence,
//! and the fleet-vs-scalar CI gate pins it end to end).

use react_units::{Amps, Seconds, Volts, Watts};

use crate::static_buf::StaticBuffer;
use crate::EnergyBuffer;

/// Batched closed-form idle advance over parallel buffer/input lanes.
///
/// Writes the per-lane advanced time into `advanced` and returns the
/// smallest of them — the stride the fleet can commit while keeping
/// every lane inside one environment segment.
///
/// # Panics
///
/// Panics if the three slices disagree in length.
pub fn idle_advance_batch(
    buffers: &mut [StaticBuffer],
    inputs: &[Watts],
    duration: Seconds,
    v_stop: Volts,
    fine_dt: Seconds,
    advanced: &mut [Seconds],
) -> Seconds {
    assert!(
        buffers.len() == inputs.len() && buffers.len() == advanced.len(),
        "batched idle advance: lane count mismatch ({}/{}/{})",
        buffers.len(),
        inputs.len(),
        advanced.len()
    );
    let mut min_adv = duration;
    for ((buf, &input), out) in buffers.iter_mut().zip(inputs).zip(advanced.iter_mut()) {
        let t = buf.idle_advance(input, duration, v_stop, fine_dt);
        *out = t;
        if t < min_adv {
            min_adv = t;
        }
    }
    min_adv
}

/// Batched closed-form powered (LPM3 sleep) advance over parallel
/// buffer/input lanes under a shared constant sleep load.
///
/// Lane `i` of `advanced` receives `None` where the closed form
/// declines the stride (the scalar kernel then falls back to fine
/// stepping for that cell, exactly as in the single-node path).
///
/// # Panics
///
/// Panics if the three slices disagree in length.
#[allow(clippy::too_many_arguments)]
pub fn powered_advance_batch(
    buffers: &mut [StaticBuffer],
    inputs: &[Watts],
    load: Amps,
    duration: Seconds,
    v_stop: Volts,
    v_wake: Option<Volts>,
    fine_dt: Seconds,
    advanced: &mut [Option<Seconds>],
) {
    assert!(
        buffers.len() == inputs.len() && buffers.len() == advanced.len(),
        "batched powered advance: lane count mismatch ({}/{}/{})",
        buffers.len(),
        inputs.len(),
        advanced.len()
    );
    for ((buf, &input), out) in buffers.iter_mut().zip(inputs).zip(advanced.iter_mut()) {
        *out = buf.powered_advance(input, load, duration, v_stop, v_wake, fine_dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(n: usize) -> (Vec<StaticBuffer>, Vec<Watts>) {
        let mut bufs = Vec::with_capacity(n);
        let mut inputs = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = StaticBuffer::static_10mf();
            b.set_voltage(Volts::new(0.4 + 0.3 * i as f64));
            bufs.push(b);
            inputs.push(Watts::from_milli(0.5 + 0.7 * i as f64));
        }
        (bufs, inputs)
    }

    #[test]
    fn batched_idle_matches_scalar_bitwise() {
        let (mut batch, inputs) = lanes(8);
        let mut scalar = batch.clone();
        let duration = Seconds::new(45.0);
        let v_stop = Volts::new(3.3);
        let dt = Seconds::from_milli(1.0);

        let mut advanced = vec![Seconds::ZERO; batch.len()];
        let min_adv = idle_advance_batch(&mut batch, &inputs, duration, v_stop, dt, &mut advanced);

        let mut min_ref = duration;
        for ((b, &input), &adv) in scalar.iter_mut().zip(&inputs).zip(&advanced) {
            let t = b.idle_advance(input, duration, v_stop, dt);
            assert_eq!(t.get().to_bits(), adv.get().to_bits());
            if t < min_ref {
                min_ref = t;
            }
        }
        assert_eq!(min_adv.get().to_bits(), min_ref.get().to_bits());
        for (b, s) in batch.iter().zip(&scalar) {
            assert_eq!(
                b.rail_voltage().get().to_bits(),
                s.rail_voltage().get().to_bits()
            );
            assert_eq!(
                b.ledger().delivered.get().to_bits(),
                s.ledger().delivered.get().to_bits()
            );
        }
    }

    #[test]
    fn batched_powered_matches_scalar_bitwise() {
        let (mut batch, inputs) = lanes(6);
        for b in batch.iter_mut() {
            b.set_voltage(Volts::new(3.1));
        }
        let mut scalar = batch.clone();
        let load = Amps::from_micro(2.0);
        let duration = Seconds::new(120.0);
        let v_stop = Volts::new(1.8);
        let dt = Seconds::from_milli(1.0);

        let mut advanced = vec![None; batch.len()];
        powered_advance_batch(
            &mut batch,
            &inputs,
            load,
            duration,
            v_stop,
            Some(Volts::new(3.3)),
            dt,
            &mut advanced,
        );
        for ((b, &input), adv) in scalar.iter_mut().zip(&inputs).zip(&advanced) {
            let t = b.powered_advance(input, load, duration, v_stop, Some(Volts::new(3.3)), dt);
            assert_eq!(t.map(|s| s.get().to_bits()), adv.map(|s| s.get().to_bits()));
        }
        for (b, s) in batch.iter().zip(&scalar) {
            assert_eq!(
                b.rail_voltage().get().to_bits(),
                s.rail_voltage().get().to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lanes_panic() {
        let (mut bufs, inputs) = lanes(3);
        let mut advanced = vec![Seconds::ZERO; 2];
        idle_advance_batch(
            &mut bufs,
            &inputs,
            Seconds::new(1.0),
            Volts::new(3.3),
            Seconds::from_milli(1.0),
            &mut advanced,
        );
    }
}
