//! Morphy \[49\]: software-defined charge storage over a fully-connected
//! switched-capacitor network (§2.4, §4.1).
//!
//! Eight 2 mF electrolytic capacitors sit in a switch fabric that can
//! realize any partition into series chains placed in parallel. Software
//! walks an eleven-configuration ladder from 250 µF (all series) to
//! 16 mF (all parallel). Unlike REACT's isolated banks, a reconfiguration
//! connects chains at *different* voltages, so charge surges through the
//! fabric and dissipates energy (§3.3.1) — the effect the paper's
//! evaluation shows wiping out Morphy's adaptivity advantage.
//!
//! Per §4.1 we replicate the paper's *favorable* Morphy setup: the
//! controller runs from external (USB) power, so its draw is **not**
//! charged to the harvested-energy ledger.

use react_circuit::{CapacitorSpec, ChainNetwork, EnergyLedger, Partition};
use react_telemetry::FallbackReason;
use react_units::{Amps, Coulombs, Farads, Joules, Seconds, Volts, Watts};

use crate::charge_ode::{self, ChargeOde};
use crate::{power_intake, EnergyBuffer};

/// The Morphy buffer: network + always-powered controller.
#[derive(Clone, Debug)]
pub struct MorphyBuffer {
    network: ChainNetwork,
    ladder: Vec<Partition>,
    level: usize,
    rail_clamp: Volts,
    v_high: Volts,
    v_low: Volts,
    poll_period: Seconds,
    poll_acc: Seconds,
    /// Settling window after a switch before another is allowed —
    /// prevents the controller thrashing on its own voltage transients.
    cooldown: Seconds,
    cooldown_left: Seconds,
    ledger: EnergyLedger,
    reconfigurations: u64,
    /// Seconds spent at each ladder level (index = level).
    dwell: Vec<f64>,
    /// Telemetry: why the last refused closed-form stride fell back
    /// (query-and-clear via `EnergyBuffer::take_fallback`).
    fallback: Option<FallbackReason>,
}

impl MorphyBuffer {
    /// The §4.1 implementation: 8 × 2 mF electrolytics, eleven
    /// configurations spanning 250 µF – 16 mF, thresholds shared with
    /// REACT.
    pub fn paper_implementation() -> Self {
        let ladder = Self::standard_ladder();
        let network = ChainNetwork::new(CapacitorSpec::electrolytic_2mf(), 8, ladder[0].clone());
        Self {
            network,
            ladder,
            level: 0,
            rail_clamp: Volts::new(3.6),
            v_high: Volts::new(3.5),
            v_low: Volts::new(1.9),
            poll_period: Seconds::new(0.1),
            poll_acc: Seconds::ZERO,
            cooldown: Seconds::new(0.3),
            cooldown_left: Seconds::ZERO,
            ledger: EnergyLedger::new(),
            reconfigurations: 0,
            dwell: Vec::new(),
            fallback: None,
        }
    }

    /// The eleven-partition ladder (ascending equivalent capacitance) for
    /// eight unit capacitors: 0.25, 1.0, 1.33, 2.33, 2.5, 4.0, 4.33,
    /// 7.0, 8.5, 10.0, 16.0 mF for C_unit = 2 mF.
    pub fn standard_ladder() -> Vec<Partition> {
        [
            vec![8],
            vec![4, 4],
            vec![6, 2],
            vec![3, 3, 2],
            vec![4, 2, 2],
            vec![2, 2, 2, 2],
            vec![6, 1, 1],
            vec![2, 2, 2, 1, 1],
            vec![4, 1, 1, 1, 1],
            vec![2, 2, 1, 1, 1, 1],
            vec![1, 1, 1, 1, 1, 1, 1, 1],
        ]
        .into_iter()
        .map(|chains| Partition::new(chains).expect("valid ladder partition"))
        .collect()
    }

    /// Present ladder level (0 = smallest capacitance).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of (dissipative) reconfigurations so far.
    pub fn reconfiguration_count(&self) -> u64 {
        self.reconfigurations
    }

    /// Force every capacitor to a voltage (test setup).
    pub fn set_all_voltages(&mut self, v: Volts) {
        self.network.set_all_voltages(v);
    }

    /// Jump to ladder `level` with every chain balanced at terminal
    /// voltage `v`, controller timers cleared (test setup).
    pub fn force_state(&mut self, level: usize, v: Volts) {
        self.network.reconfigure(self.ladder[level].clone());
        self.level = level;
        self.network.set_chain_terminals(v);
        self.cooldown_left = Seconds::ZERO;
        self.poll_acc = Seconds::ZERO;
    }

    /// Accrues dwell time at the present ladder level.
    fn note_dwell(&mut self, seconds: f64) {
        if self.dwell.len() <= self.level {
            self.dwell.resize(self.level + 1, 0.0);
        }
        self.dwell[self.level] += seconds;
    }

    /// Moves from the current partition to `level` one capacitor at a
    /// time — the way the switch fabric physically rewires (§3.3.1's
    /// Fig. 5 analysis is exactly one such move). Every intermediate
    /// repartition equalizes through the fabric and dissipates.
    fn reconfigure_to(&mut self, level: usize) {
        for step in transition_path(
            self.network.partition().chains(),
            self.ladder[level].chains(),
        ) {
            let outcome = self.network.reconfigure(step);
            self.ledger.switch_loss += outcome.dissipated;
        }
        self.level = level;
        self.reconfigurations += 1;
        self.cooldown_left = self.cooldown;
    }

    fn poll_controller(&mut self) {
        let v = self.network.terminal_voltage();
        if v >= self.v_high && self.level + 1 < self.ladder.len() {
            self.reconfigure_to(self.level + 1);
        } else if v <= self.v_low && self.level > 0 {
            self.reconfigure_to(self.level - 1);
        }
    }
}

/// Decomposes a repartition into single-capacitor moves: each step takes
/// one capacitor from an over-long chain and gives it to an under-long
/// one (positions matched by index; chains are created/absorbed at the
/// tail). Returns the sequence of intermediate partitions *including*
/// the target.
pub fn transition_path(from: &[usize], to: &[usize]) -> Vec<Partition> {
    let width = from.len().max(to.len());
    let mut cur: Vec<usize> = from.to_vec();
    cur.resize(width, 0);
    let mut target: Vec<usize> = to.to_vec();
    target.resize(width, 0);

    let mut path = Vec::new();
    loop {
        let donor = (0..width).find(|&i| cur[i] > target[i]);
        let receiver = (0..width).find(|&i| cur[i] < target[i]);
        match (donor, receiver) {
            (Some(d), Some(r)) => {
                cur[d] -= 1;
                cur[r] += 1;
                let chains: Vec<usize> = cur.iter().copied().filter(|&l| l > 0).collect();
                path.push(Partition::new(chains).expect("intermediate partition valid"));
            }
            _ => break,
        }
    }
    path
}

impl EnergyBuffer for MorphyBuffer {
    fn name(&self) -> &str {
        "Morphy"
    }

    fn rail_voltage(&self) -> Volts {
        self.network.terminal_voltage().max(Volts::ZERO)
    }

    fn equivalent_capacitance(&self) -> Farads {
        self.network.terminal_capacitance()
    }

    fn stored_energy(&self) -> Joules {
        self.network.stored_energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        // Energy deliverable in the *current* configuration — further
        // down-switching reclaims more but dissipates in the fabric and
        // takes controller polls, so it is not promised for atomic ops.
        let v = self.network.terminal_voltage();
        if v <= v_floor {
            return Joules::ZERO;
        }
        let c = self.network.terminal_capacitance();
        c.energy_at(v) - c.energy_at(v_floor)
    }

    fn supports_longevity(&self) -> bool {
        true
    }

    fn capacitance_level(&self) -> u32 {
        self.level as u32
    }

    fn supports_idle_fast_path(&self) -> bool {
        true
    }

    fn reconfiguration_count(&self) -> u64 {
        self.reconfigurations
    }

    /// Morphy's conservative posture is one ladder level up: a more
    /// parallel-heavy partition stores more energy at the same rail
    /// voltage, which is what lets the MCU sleep through an attacker's
    /// blackout without browning out. No-op (returns `false`) at the
    /// top of the ladder.
    fn defensive_reconfigure(&mut self) -> bool {
        if self.level + 1 >= self.ladder.len() {
            return false;
        }
        self.reconfigure_to(self.level + 1);
        true
    }

    fn capacitance_dwell(&self) -> Vec<(u32, f64)> {
        self.dwell
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 0.0)
            .map(|(level, s)| (level as u32, *s))
            .collect()
    }

    /// Controller-aware closed-form idle integration. Between controller
    /// decision points the network is electrically one fixed capacitor:
    /// equalized chains share the terminal voltage, every chain decays
    /// at the same `g/C` rate regardless of length, and deposits split
    /// in proportion to chain capacitance — so each inter-poll segment
    /// integrates through the shared regime solver. At each 10 Hz poll
    /// boundary (replayed step-for-step so poll times stay identical to
    /// the fine-step reference) the controller's threshold handler
    /// fires; a reconfiguration changes the effective capacitance (and
    /// may boost the terminal past `v_stop` — the §3.3.4 reclamation
    /// path), and integration resumes with the new ladder level.
    /// `v_stop` crossings are quantized up to the fine-step grid exactly
    /// like the static fast path.
    fn idle_advance(
        &mut self,
        input: Watts,
        duration: Seconds,
        v_stop: Volts,
        fine_dt: Seconds,
    ) -> Seconds {
        let vs = v_stop.get();
        let total = duration.get();
        let dt = fine_dt.get();
        assert!(dt > 0.0, "fine timestep must be positive");
        if total <= 0.0 {
            return Seconds::ZERO;
        }

        // Idle-phase invariant: chains equalized at one terminal
        // voltage. Forced test states may break it; the first reference
        // step would dissipate the imbalance through the fabric, which
        // is not worth a closed form — replay finely instead.
        {
            let chain_vs = self.network.chain_voltages();
            let (lo, hi) = chain_vs.iter().fold((f64::MAX, f64::MIN), |(lo, hi), v| {
                (lo.min(v.get()), hi.max(v.get()))
            });
            if hi - lo > 1e-9 * hi.abs().max(1.0) {
                return crate::reference_idle_advance(self, input, duration, v_stop, fine_dt);
            }
        }

        let unit = *self.network.unit_spec();
        let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
        let p_in = input.get().max(0.0);

        let period = self.poll_period.get();
        let mut elapsed = 0.0_f64;
        while elapsed < total {
            let v_now = self.rail_voltage().get();
            if v_now >= vs {
                break;
            }

            // 0. Comparator dead band, in bulk: while the terminal sits
            // strictly inside (v_low, v_high) with a guard margin, the
            // externally powered 10 Hz poller reads "Ok" and the
            // cooldown/accumulator are the only state that moves — whole
            // spans integrate in one solve, with the accumulator
            // replayed in closed form and the cooldown drained by the
            // elapsed time. The powered solver is used because the idle
            // terminal can fall under leakage (ChargeOde only has a
            // rising stop): with zero load and drain it reduces to the
            // idle ODE, and it gives both a falling stop at the lower
            // band edge and a rising stop at the band top (cut at the
            // wake threshold).
            const BAND_GUARD: f64 = 0.02;
            let band_lo = self.v_low.get() + BAND_GUARD;
            let band_hi = self.v_high.get() - BAND_GUARD;
            let band_stop_up = vs.min(band_hi);
            let whole = (((total - elapsed) / dt).floor() * dt).max(0.0);
            if v_now > band_lo && v_now < band_stop_up && whole > 3.0 * period {
                let c_eq = self.network.terminal_capacitance().get();
                let ode = charge_ode::PoweredOde {
                    c: c_eq,
                    g: c_eq * k,
                    v_max: self.rail_clamp.get(),
                    p_in,
                    i_load: 0.0,
                    p_drain: 0.0,
                    v_drain_min: f64::INFINITY,
                };
                if let Some((t_adv, sol)) = charge_ode::integrate_powered_quantized(
                    &ode,
                    v_now,
                    whole,
                    band_lo,
                    Some(band_stop_up),
                    dt,
                ) {
                    if t_adv > 2.0 * period {
                        let e_before = self.network.stored_energy();
                        let imbalance = self.network.chain_imbalance();
                        let decay = (-k * t_adv).exp();
                        self.network
                            .apply_idle_solution(Volts::new(sol.v_final), decay);
                        let e_after = self.network.stored_energy();
                        let leaked = sol.leaked
                            + 0.5 * unit.capacitance.get() * imbalance * (1.0 - decay * decay);
                        let delivered = ((e_after.get() - e_before.get()) + leaked).max(0.0);
                        self.ledger.leaked += Joules::new(leaked);
                        self.ledger.delivered += Joules::new(delivered);
                        self.ledger.clipped += Joules::new(sol.clipped);
                        self.ledger.harvested += Joules::new(delivered + sol.clipped);
                        self.note_dwell(t_adv);
                        let steps = (t_adv / dt).round() as u64;
                        self.poll_acc = Seconds::new(crate::bulk_poll_acc(
                            self.poll_acc.get(),
                            steps,
                            dt,
                            period,
                        ));
                        self.cooldown_left =
                            (self.cooldown_left - Seconds::new(t_adv)).max(Seconds::ZERO);
                        elapsed += t_adv;
                        continue;
                    }
                }
            }

            // 1. Replay the controller's per-step bookkeeping to find
            // how many fine steps remain until the next poll fires
            // (bounded by the stride horizon). This replicates the
            // reference loop's float accumulation exactly, so poll
            // times stay step-identical.
            let mut acc = self.poll_acc.get();
            let mut sim_elapsed = elapsed;
            let mut seg_steps = 0usize;
            while sim_elapsed < total {
                let h = dt.min(total - sim_elapsed);
                sim_elapsed += h;
                acc += h;
                seg_steps += 1;
                if acc >= self.poll_period.get() {
                    break;
                }
            }
            let seg_horizon = sim_elapsed - elapsed;

            // 2. Closed-form integration of the inter-poll segment.
            let c_eq = self.network.terminal_capacitance().get();
            let ode = ChargeOde {
                c: c_eq,
                g: c_eq * k,
                v_max: self.rail_clamp.get(),
                p_in,
                p_drain: 0.0,
                v_drain_min: f64::INFINITY,
            };
            let v0 = self.network.terminal_voltage().get();
            let (t_adv, sol) = charge_ode::integrate_quantized(&ode, v0, seg_horizon, vs, dt)
                .expect("drain-free charge ODE is total");
            if t_adv <= 0.0 {
                break; // defensive: v0 ≥ vs is caught at the loop top
            }
            let (steps_taken, finished_segment) = if t_adv >= seg_horizon - 1e-15 {
                (seg_steps, true)
            } else {
                ((t_adv / dt).round().max(1.0) as usize, false)
            };

            // 3. Commit network state and energy books. The terminal
            // moves per the solution; within-chain imbalance decays on
            // its own e^{−2kt}, leaking ½C_unit·Σw²·(1−e^{−2kT}) on top
            // of the terminal's G_eff·v² integral.
            let e_before = self.network.stored_energy();
            let imbalance = self.network.chain_imbalance();
            let decay = (-k * t_adv).exp();
            self.network
                .apply_idle_solution(Volts::new(sol.v_final), decay);
            let e_after = self.network.stored_energy();
            let leaked =
                sol.leaked + 0.5 * unit.capacitance.get() * imbalance * (1.0 - decay * decay);
            let delivered = ((e_after.get() - e_before.get()) + leaked).max(0.0);
            self.ledger.leaked += Joules::new(leaked);
            self.ledger.delivered += Joules::new(delivered);
            self.ledger.clipped += Joules::new(sol.clipped);
            self.ledger.harvested += Joules::new(delivered + sol.clipped);
            self.note_dwell(t_adv);

            // 4. Commit the controller bookkeeping for the steps taken;
            // a poll can only land on the segment's last step.
            let mut fire = false;
            for _ in 0..steps_taken {
                let h = dt.min(total - elapsed);
                elapsed += h;
                self.cooldown_left = (self.cooldown_left - Seconds::new(h)).max(Seconds::ZERO);
                self.poll_acc += Seconds::new(h);
                if self.poll_acc >= self.poll_period {
                    self.poll_acc = Seconds::ZERO;
                    fire = true;
                }
            }
            if fire && finished_segment && self.cooldown_left.get() <= 0.0 {
                // The threshold handler reads the settled terminal
                // voltage and may reconfigure for the next segment.
                self.poll_controller();
            }
        }
        Seconds::new(elapsed)
    }

    fn supports_powered_fast_path(&self) -> bool {
        true
    }

    /// Controller-aware closed-form *powered* integration (MCU on,
    /// workload asleep): identical poll-to-poll segment walk to
    /// [`idle_advance`](EnergyBuffer::idle_advance) — the externally
    /// powered controller does not care whether the target sleeps —
    /// with the LPM3 sleep load folded into the quadratic solver as a
    /// constant rail current and the early exit flipped to the
    /// brown-out crossing (quantized up onto the fine grid). Forced
    /// un-equalized chain states have no closed form (`None`).
    fn powered_advance(
        &mut self,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        let vs = v_stop.get();
        let vw = v_wake.map(Volts::get);
        let total = duration.get();
        let dt = fine_dt.get();
        assert!(dt > 0.0, "fine timestep must be positive");
        if total <= 0.0 {
            return Some(Seconds::ZERO);
        }

        // Sleep-phase invariant: chains equalized at one terminal
        // voltage (the continuous equalization of the fine-step loop).
        {
            let chain_vs = self.network.chain_voltages();
            let (lo, hi) = chain_vs.iter().fold((f64::MAX, f64::MIN), |(lo, hi), v| {
                (lo.min(v.get()), hi.max(v.get()))
            });
            if hi - lo > 1e-9 * hi.abs().max(1.0) {
                self.fallback = Some(FallbackReason::NoClosedForm);
                return None;
            }
        }

        let unit = *self.network.unit_spec();
        let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
        let p_in = input.get().max(0.0);
        let i_load = load.get().max(0.0);

        // Books one integrated span: terminal + within-chain imbalance
        // decay, ledger closed against the committed energies, dwell.
        macro_rules! commit_span {
            ($sol:expr, $t_adv:expr) => {{
                let sol = $sol;
                let t_adv = $t_adv;
                let e_before = self.network.stored_energy();
                let imbalance = self.network.chain_imbalance();
                let decay = (-k * t_adv).exp();
                self.network
                    .apply_idle_solution(Volts::new(sol.v_final), decay);
                let e_after = self.network.stored_energy();
                let leaked =
                    sol.leaked + 0.5 * unit.capacitance.get() * imbalance * (1.0 - decay * decay);
                let delivered_gross =
                    ((e_after.get() - e_before.get()) + leaked + sol.load_consumed + sol.clipped)
                        .max(0.0);
                self.ledger.leaked += Joules::new(leaked);
                self.ledger.load_consumed += Joules::new(sol.load_consumed);
                self.ledger.clipped += Joules::new(sol.clipped);
                self.ledger.delivered += Joules::new(delivered_gross - sol.clipped);
                self.ledger.harvested += Joules::new(delivered_gross);
                self.note_dwell(t_adv);
            }};
        }

        let period = self.poll_period.get();
        let mut elapsed = 0.0_f64;
        // Telemetry: why a zero-length stride was refused (stop
        // condition already satisfied unless a break says otherwise).
        let mut refusal = FallbackReason::TransitionDue;
        while elapsed < total {
            let v_now = self.rail_voltage().get();
            if v_now <= vs || vw.is_some_and(|vw| v_now >= vw) {
                break;
            }

            // 0. Comparator dead band, in bulk: while the terminal sits
            // strictly inside (v_low, v_high) with a guard margin, the
            // 10 Hz poller reads "Ok" and the cooldown/accumulator are
            // the only state that moves — whole spans integrate in one
            // solve, with the accumulator replayed in closed form and
            // the cooldown drained by the elapsed time.
            const BAND_GUARD: f64 = 0.02;
            let band_lo = (self.v_low.get() + BAND_GUARD).max(vs);
            let band_hi = self.v_high.get() - BAND_GUARD;
            let band_stop_up = vw.map_or(band_hi, |vw| vw.min(band_hi));
            let whole = (((total - elapsed) / dt).floor() * dt).max(0.0);
            if v_now > band_lo && v_now < band_stop_up && whole > 3.0 * period {
                let c_eq = self.network.terminal_capacitance().get();
                let ode = charge_ode::PoweredOde {
                    c: c_eq,
                    g: c_eq * k,
                    v_max: self.rail_clamp.get(),
                    p_in,
                    i_load,
                    p_drain: 0.0,
                    v_drain_min: f64::INFINITY,
                };
                if let Some((t_adv, sol)) = charge_ode::integrate_powered_quantized(
                    &ode,
                    v_now,
                    whole,
                    band_lo,
                    Some(band_stop_up),
                    dt,
                ) {
                    if t_adv > 2.0 * period {
                        commit_span!(sol, t_adv);
                        let steps = (t_adv / dt).round() as u64;
                        self.poll_acc = Seconds::new(crate::bulk_poll_acc(
                            self.poll_acc.get(),
                            steps,
                            dt,
                            period,
                        ));
                        self.cooldown_left =
                            (self.cooldown_left - Seconds::new(t_adv)).max(Seconds::ZERO);
                        elapsed += t_adv;
                        continue;
                    }
                }
            }

            // 1. Fine steps until the next poll fires (replayed so poll
            // times stay step-identical to the reference).
            let mut acc = self.poll_acc.get();
            let mut sim_elapsed = elapsed;
            let mut seg_steps = 0usize;
            while sim_elapsed < total {
                let h = dt.min(total - sim_elapsed);
                sim_elapsed += h;
                acc += h;
                seg_steps += 1;
                if acc >= self.poll_period.get() {
                    break;
                }
            }
            let seg_horizon = sim_elapsed - elapsed;

            // 2. Closed-form integration of the inter-poll segment.
            let c_eq = self.network.terminal_capacitance().get();
            let ode = charge_ode::PoweredOde {
                c: c_eq,
                g: c_eq * k,
                v_max: self.rail_clamp.get(),
                p_in,
                i_load,
                p_drain: 0.0,
                v_drain_min: f64::INFINITY,
            };
            let v0 = self.network.terminal_voltage().get();
            let Some((t_adv, sol)) =
                charge_ode::integrate_powered_quantized(&ode, v0, seg_horizon, vs, vw, dt)
            else {
                refusal = FallbackReason::NoClosedForm;
                break; // hand the rest back to the fine-step loop
            };
            if t_adv <= 0.0 {
                refusal = FallbackReason::NoClosedForm;
                break;
            }
            let (steps_taken, finished_segment) = if t_adv >= seg_horizon - 1e-15 {
                (seg_steps, true)
            } else {
                ((t_adv / dt).round().max(1.0) as usize, false)
            };

            // 3. Commit network state and energy books (the within-chain
            // imbalance decay mirrors the idle path).
            commit_span!(sol, t_adv);

            // 4. Controller bookkeeping; a poll lands only on the
            // segment's last step.
            let mut fire = false;
            for _ in 0..steps_taken {
                let h = dt.min(total - elapsed);
                elapsed += h;
                self.cooldown_left = (self.cooldown_left - Seconds::new(h)).max(Seconds::ZERO);
                self.poll_acc += Seconds::new(h);
                if self.poll_acc >= self.poll_period {
                    self.poll_acc = Seconds::ZERO;
                    fire = true;
                }
            }
            if fire && finished_segment && self.cooldown_left.get() <= 0.0 {
                let before = self.reconfigurations;
                self.poll_controller();
                if self.reconfigurations != before {
                    // A ladder move changed the effective capacitance,
                    // so the kernel's precomputed wake voltage (and the
                    // workload's usable-energy picture) are stale: hand
                    // control back so the next stride re-derives them.
                    break;
                }
            }
        }
        if elapsed == 0.0 {
            self.fallback = Some(refusal);
        }
        Some(Seconds::new(elapsed))
    }

    fn take_fallback(&mut self) -> Option<FallbackReason> {
        self.fallback.take()
    }

    /// In the present ladder configuration the network is one terminal
    /// capacitor, so the §3.4.1 wait inverts like a static buffer's.
    /// (Ladder moves change `C_eq`; the kernel re-derives the crossing
    /// after every stride, so the frozen-topology assumption holds.)
    fn rail_voltage_for_usable(&self, energy: Joules, v_floor: Volts) -> Option<Volts> {
        let c = self.network.terminal_capacitance().get();
        let vf = v_floor.get().max(0.0);
        Some(Volts::new(
            (vf * vf + 2.0 * energy.get().max(0.0) / c).sqrt(),
        ))
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, _mcu_running: bool) {
        // Dwell accounting uses the level at the top of the step, before
        // the controller acts — both kernels share this convention.
        self.note_dwell(dt.get());

        // 0. Chains are hard-wired in parallel: any imbalance equalizes
        // through the switch fabric continuously, dissipating as it
        // goes — the ongoing cost of the fully-connected design.
        let eq = self.network.equalize();
        self.ledger.switch_loss += eq.dissipated;

        // 1. Leakage.
        self.ledger.leaked += self.network.leak(dt);

        // 2. Load.
        let before = self.network.stored_energy();
        self.network.draw_charge(load * dt);
        self.ledger.load_consumed += before - self.network.stored_energy();

        // 3. Harvest with rail clamping (power converts to charge at the
        // network terminal).
        if input.get() > 0.0 {
            let v = self.network.terminal_voltage();
            let dq = power_intake(input, v, dt);
            let headroom =
                (self.network.terminal_capacitance() * (self.rail_clamp - v)).max(Coulombs::ZERO);
            let store = dq.min(headroom);
            let before = self.network.stored_energy();
            let unit_clip = self.network.deposit_charge(store);
            let delivered = self.network.stored_energy() - before;
            let clipped = unit_clip + (dq - store) * self.rail_clamp;
            self.ledger.delivered += delivered;
            self.ledger.clipped += clipped;
            self.ledger.harvested += delivered + clipped;
        }

        // 4. Controller: externally powered, polls regardless of the
        // target MCU's state.
        self.cooldown_left = (self.cooldown_left - dt).max(Seconds::ZERO);
        self.poll_acc += dt;
        if self.poll_acc >= self.poll_period {
            self.poll_acc = Seconds::ZERO;
            if self.cooldown_left.get() <= 0.0 {
                self.poll_controller();
            }
        }
    }

    fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_spans_paper_range_ascending() {
        let ladder = MorphyBuffer::standard_ladder();
        assert_eq!(ladder.len(), 11);
        let c = Farads::from_milli(2.0);
        let caps: Vec<f64> = ladder
            .iter()
            .map(|p| p.equivalent_capacitance(c).to_milli())
            .collect();
        assert!((caps[0] - 0.25).abs() < 1e-9);
        assert!((caps[10] - 16.0).abs() < 1e-9);
        for w in caps.windows(2) {
            assert!(w[0] < w[1], "ladder not ascending: {caps:?}");
        }
        // Every partition covers all eight capacitors.
        assert!(ladder.iter().all(|p| p.capacitor_count() == 8));
    }

    #[test]
    fn starts_at_minimum_capacitance() {
        let m = MorphyBuffer::paper_implementation();
        assert!((m.equivalent_capacitance().to_micro() - 250.0).abs() < 1e-6);
        assert_eq!(m.level(), 0);
        assert!(m.supports_longevity());
    }

    #[test]
    fn charges_like_a_small_capacitor_initially() {
        let mut m = MorphyBuffer::paper_implementation();
        // 0.5 mW for 250 ms ≈ 0.125 mJ on 250 µF → 1 V.
        for _ in 0..250 {
            m.step(
                Watts::from_micro(500.0),
                Amps::ZERO,
                Seconds::from_milli(1.0),
                false,
            );
        }
        let expected = (2.0 * 0.125e-3 / 250e-6_f64).sqrt();
        assert!((m.rail_voltage().get() - expected).abs() < 0.1);
    }

    #[test]
    fn overvoltage_steps_up_and_dissipates() {
        let mut m = MorphyBuffer::paper_implementation();
        m.set_all_voltages(Volts::new(3.55 / 8.0)); // terminal ≈ 3.55 V
        let e_before = m.stored_energy();
        m.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        assert_eq!(m.level(), 1);
        assert_eq!(m.reconfiguration_count(), 1);
        // [8] → [4,4] walks through [7,1], [6,2], [5,3]: every
        // intermediate connects mismatched chains and dissipates —
        // §3.3.1's complaint about fully-connected fabrics.
        assert!(
            m.ledger().switch_loss.get() > 0.2 * e_before.get(),
            "loss {:?} vs stored {e_before:?}",
            m.ledger().switch_loss
        );
        // Capacitance did grow to the level-1 value.
        assert!((m.equivalent_capacitance().to_milli() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_move_path_reproduces_figure5_loss() {
        // One step of the path — [4] series → [3,1] — is the paper's
        // Fig. 5 example: 25 % of stored energy dissipated.
        let unit = react_circuit::CapacitorSpec::new(Farads::from_milli(2.0))
            .with_max_voltage(Volts::new(1e6));
        let mut n = react_circuit::ChainNetwork::new(unit, 4, Partition::all_series(4));
        n.set_all_voltages(Volts::new(1.0));
        let e_old = n.stored_energy();
        let path = transition_path(&[4], &[3, 1]);
        assert_eq!(path.len(), 1);
        let out = n.reconfigure(path[0].clone());
        assert!((out.dissipated.get() - 0.25 * e_old.get()).abs() < 1e-12);
    }

    #[test]
    fn transition_path_connects_ladder_levels() {
        let ladder = MorphyBuffer::standard_ladder();
        for w in ladder.windows(2) {
            let path = transition_path(w[0].chains(), w[1].chains());
            assert!(!path.is_empty());
            assert_eq!(path.last().unwrap(), &w[1]);
            // Every intermediate covers all 8 capacitors.
            assert!(path.iter().all(|p| p.capacitor_count() == 8));
        }
        // Identity transition needs no moves.
        assert!(transition_path(&[4, 4], &[4, 4]).is_empty());
    }

    #[test]
    fn undervoltage_steps_down_to_boost() {
        let mut m = MorphyBuffer::paper_implementation();
        m.set_all_voltages(Volts::new(0.85));
        m.reconfigure_to(1); // level 1 via single-cap moves
        m.cooldown_left = Seconds::ZERO;
        // Drain to v_low and poll: the controller steps back down.
        m.set_all_voltages(Volts::new(1.85 / 4.0));
        let loss_before = m.ledger().switch_loss;
        m.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        assert_eq!(m.level(), 0);
        // The boost dissipated energy in the fabric on the way.
        assert!(m.ledger().switch_loss > loss_before);
    }

    #[test]
    fn cooldown_prevents_thrash() {
        let mut m = MorphyBuffer::paper_implementation();
        m.set_all_voltages(Volts::new(3.55 / 8.0));
        m.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        assert_eq!(m.reconfiguration_count(), 1);
        // Terminal is low now, but the cooldown holds for 0.3 s.
        m.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        assert_eq!(m.reconfiguration_count(), 1);
        // After the cooldown it may act again.
        for _ in 0..10 {
            m.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        }
        assert!(m.reconfiguration_count() >= 2);
    }

    #[test]
    fn clips_at_rail() {
        let mut m = MorphyBuffer::paper_implementation();
        m.set_all_voltages(Volts::new(3.6 / 8.0));
        m.step(
            Watts::from_milli(100.0),
            Amps::ZERO,
            Seconds::from_milli(1.0),
            false,
        );
        assert!(m.ledger().clipped.get() > 0.0);
        assert!(m.rail_voltage().get() <= 3.6 + 1e-9);
    }

    #[test]
    fn controller_runs_even_with_mcu_off() {
        let mut m = MorphyBuffer::paper_implementation();
        m.set_all_voltages(Volts::new(3.55 / 8.0));
        m.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        assert_eq!(m.level(), 1, "externally powered controller must act");
    }

    #[test]
    fn usable_energy_is_current_config() {
        let mut m = MorphyBuffer::paper_implementation();
        m.set_all_voltages(Volts::new(2.0 / 8.0)); // level 0 ([8]) at 2 V
        let usable = m.usable_energy_above(Volts::new(1.8));
        let expected = 0.5 * 250e-6 * (2.0_f64.powi(2) - 1.8_f64.powi(2));
        assert!((usable.get() - expected).abs() < 1e-9);
        assert_eq!(m.usable_energy_above(Volts::new(2.5)), Joules::ZERO);
    }
}
