//! Capybara-style dual-capacitor buffer (extension baseline).
//!
//! Capybara \[7\] switches between heterogeneous static banks under
//! programmer direction: a small capacitor powers reactive, interruptible
//! work; a large capacitor is pre-charged for high-energy atomic tasks
//! (§2.3). Charging the big bank *reserves* energy — if the task mix
//! changes, that reservation was speculative and the energy sits leaking.
//! We model the common two-bank design: the rail always runs from the
//! small capacitor; the harvester charges the small capacitor first, then
//! the big one; connecting the big bank to the rail equalizes it into the
//! small one (dissipative if their voltages differ).

use react_circuit::{pair_equalize, Capacitor, CapacitorSpec, EnergyLedger};
use react_units::{Amps, Farads, Joules, Seconds, Volts, Watts};

use crate::static_buf::RAIL_CLAMP;
use crate::{power_intake, EnergyBuffer};

/// The Capybara-style buffer.
#[derive(Clone, Debug)]
pub struct CapybaraBuffer {
    small: Capacitor,
    big: Capacitor,
    /// `true` while the big bank is switched onto the rail.
    big_connected: bool,
    ledger: EnergyLedger,
}

impl CapybaraBuffer {
    /// Creates the buffer from small/large capacitor specs.
    pub fn new(small: CapacitorSpec, big: CapacitorSpec) -> Self {
        Self {
            small: Capacitor::new(small.with_max_voltage(RAIL_CLAMP)),
            big: Capacitor::new(big.with_max_voltage(RAIL_CLAMP)),
            big_connected: false,
            ledger: EnergyLedger::new(),
        }
    }

    /// Reference configuration: 770 µF reactive bank + 10 mF burst bank.
    pub fn reference() -> Self {
        Self::new(
            CapacitorSpec::ceramic_scaled(Farads::from_micro(770.0)),
            CapacitorSpec::supercap_scaled(Farads::from_milli(10.0)),
        )
    }

    /// `true` while the burst bank is on the rail.
    pub fn is_big_connected(&self) -> bool {
        self.big_connected
    }

    /// Programmer direction: connect the burst bank to the rail for a
    /// high-energy atomic task. Equalization between the banks dissipates
    /// energy if their voltages differ.
    pub fn connect_big(&mut self) {
        if !self.big_connected {
            let out = pair_equalize(&mut self.small, &mut self.big);
            self.ledger.switch_loss += out.dissipated;
            self.big_connected = true;
        }
    }

    /// Programmer direction: return to the reactive (small-bank) mode.
    pub fn disconnect_big(&mut self) {
        self.big_connected = false;
    }

    /// Voltage on the burst bank (diagnostics).
    pub fn big_voltage(&self) -> Volts {
        self.big.voltage()
    }

    /// Force voltages (test setup).
    pub fn set_voltages(&mut self, small: Volts, big: Volts) {
        self.small.set_voltage(small);
        self.big.set_voltage(big);
    }
}

impl EnergyBuffer for CapybaraBuffer {
    fn name(&self) -> &str {
        "Capybara"
    }

    fn rail_voltage(&self) -> Volts {
        self.small.voltage()
    }

    fn equivalent_capacitance(&self) -> Farads {
        if self.big_connected {
            self.small.capacitance() + self.big.capacitance()
        } else {
            self.small.capacitance()
        }
    }

    fn stored_energy(&self) -> Joules {
        self.small.energy() + self.big.energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        let mut usable = Joules::ZERO;
        for (cap, reachable) in [(&self.small, true), (&self.big, true)] {
            // The big bank is reachable by connecting it (software's
            // choice), so both count — but only energy above the floor.
            if reachable && cap.voltage() > v_floor {
                usable += cap.capacitance().energy_at(cap.voltage())
                    - cap.capacitance().energy_at(v_floor);
            }
        }
        usable
    }

    fn supports_longevity(&self) -> bool {
        true
    }

    fn capacitance_level(&self) -> u32 {
        self.big_connected as u32
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, _mcu_running: bool) {
        // Leakage on both banks (the speculation cost §2.3 describes).
        self.ledger.leaked += self.small.leak(dt) + self.big.leak(dt);

        // Load from the rail (both banks when connected; they equalize
        // continuously, so split by capacitance).
        let before = self.small.energy() + self.big.energy();
        if self.big_connected {
            let c_total = self.small.capacitance() + self.big.capacitance();
            let dq = load * dt;
            let q_small = dq.get() * (self.small.capacitance() / c_total);
            self.small.draw(Amps::new(q_small / dt.get()), dt);
            self.big
                .draw(Amps::new((dq.get() - q_small) / dt.get()), dt);
        } else {
            self.small.draw(load, dt);
        }
        self.ledger.load_consumed += before - (self.small.energy() + self.big.energy());

        // Harvest: small bank first (reactivity), then the big bank.
        if input.get() > 0.0 {
            let before = self.small.energy() + self.big.energy();
            let dq = power_intake(input, self.small.voltage(), dt);
            let clip_small = self.small.deposit(dq / dt, dt);
            let mut clipped = Joules::ZERO;
            if clip_small.get() > 0.0 {
                // Redirect the surplus to the big bank.
                let surplus_q = clip_small.get() / RAIL_CLAMP.get();
                clipped = self.big.deposit(Amps::new(surplus_q / dt.get()), dt);
            }
            let delivered = (self.small.energy() + self.big.energy()) - before;
            self.ledger.delivered += delivered;
            self.ledger.clipped += clipped;
            self.ledger.harvested += delivered + clipped;
        }

        // Keep equalized while connected (quasi-static, negligible loss).
        if self.big_connected {
            let out = pair_equalize(&mut self.small, &mut self.big);
            self.ledger.switch_loss += out.dissipated;
        }
    }

    fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bank_charges_first() {
        let mut c = CapybaraBuffer::reference();
        for _ in 0..500 {
            c.step(
                Watts::from_milli(1.0),
                Amps::ZERO,
                Seconds::from_milli(1.0),
                false,
            );
        }
        assert!(c.rail_voltage().get() > 0.3);
        assert!(c.big_voltage().get() < 0.01);
    }

    #[test]
    fn surplus_spills_into_big_bank() {
        let mut c = CapybaraBuffer::reference();
        c.set_voltages(Volts::new(3.6), Volts::ZERO);
        for _ in 0..1000 {
            c.step(
                Watts::from_milli(20.0),
                Amps::ZERO,
                Seconds::from_milli(1.0),
                false,
            );
        }
        assert!(
            c.big_voltage().get() > 0.4,
            "big bank at {}",
            c.big_voltage().get()
        );
        assert_eq!(c.ledger().clipped, Joules::ZERO);
    }

    #[test]
    fn connecting_mismatched_banks_dissipates() {
        let mut c = CapybaraBuffer::reference();
        c.set_voltages(Volts::new(3.3), Volts::new(1.0));
        c.connect_big();
        assert!(c.is_big_connected());
        assert!(c.ledger().switch_loss.get() > 0.0);
        // Rail pulled down toward the big bank.
        assert!(c.rail_voltage().get() < 1.5);
    }

    #[test]
    fn connecting_matched_banks_is_cheap() {
        let mut c = CapybaraBuffer::reference();
        c.set_voltages(Volts::new(3.0), Volts::new(3.0));
        c.connect_big();
        assert!(c.ledger().switch_loss.get() < 1e-12);
        assert!((c.equivalent_capacitance().to_milli() - 10.77).abs() < 0.01);
        c.disconnect_big();
        assert!((c.equivalent_capacitance().to_micro() - 770.0).abs() < 1e-6);
    }

    #[test]
    fn usable_counts_both_banks() {
        let mut c = CapybaraBuffer::reference();
        c.set_voltages(Volts::new(3.3), Volts::new(3.3));
        let usable = c.usable_energy_above(Volts::new(1.8));
        let expected = 0.5 * (770e-6 + 10e-3) * (3.3f64.powi(2) - 1.8f64.powi(2));
        assert!((usable.get() - expected).abs() < 1e-9);
    }

    #[test]
    fn load_splits_when_connected() {
        let mut c = CapybaraBuffer::reference();
        c.set_voltages(Volts::new(3.3), Volts::new(3.3));
        c.connect_big();
        for _ in 0..1000 {
            c.step(
                Watts::ZERO,
                Amps::from_milli(10.0),
                Seconds::from_milli(1.0),
                false,
            );
        }
        // Both banks sagged together.
        assert!((c.rail_voltage().get() - c.big_voltage().get()).abs() < 0.01);
        assert!(c.rail_voltage().get() < 3.3);
    }
}
