//! REACT configuration: thresholds, bank layout, and the §3.3.5 sizing
//! constraints (Equations 1 and 2).

use react_circuit::{BankSpec, CapacitorSpec};
use react_units::{Farads, Ohms, Seconds, Volts, Watts};

/// Error validating a [`ReactConfig`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// Threshold ordering broken (needs `v_low < v_high ≤ rail clamp`).
    BadThresholds,
    /// A bank violates Eq. 2: its parallel→series boost at `v_low` would
    /// overshoot `v_high` at the last-level buffer.
    BankTooLarge {
        /// Index of the offending bank (0-based, excluding the LLB).
        bank: usize,
        /// The unit-capacitance limit from Eq. 2.
        limit: Farads,
    },
    /// No banks configured.
    NoBanks,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadThresholds => write!(f, "thresholds must satisfy v_low < v_high"),
            Self::BankTooLarge { bank, limit } => write!(
                f,
                "bank {bank} unit capacitance exceeds the Eq. 2 limit of {limit:.1}"
            ),
            Self::NoBanks => write!(f, "at least one configurable bank is required"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full REACT configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ReactConfig {
    /// The last-level buffer (bank 0 in Table 1).
    pub llb: CapacitorSpec,
    /// Configurable banks in connection order (banks 1–5 in Table 1).
    pub banks: Vec<BankSpec>,
    /// Rail overvoltage clamp (Fig. 6: clipping at 3.6 V).
    pub rail_clamp: Volts,
    /// Upper comparator threshold (buffer near capacity): 3.5 V (§5.1).
    pub v_high: Volts,
    /// Lower comparator threshold (buffer near empty).
    pub v_low: Volts,
    /// Software polling period (§5.1 characterizes 10 Hz).
    pub poll_period: Seconds,
    /// Quiescent draw per *connected* bank (§5.1: ≈68 µW total over five
    /// banks, ≈13.6 µW each).
    pub overhead_per_bank: Watts,
    /// Always-on instrumentation draw (two comparators).
    pub instrumentation_overhead: Watts,
    /// Ideal-diode on-resistance (LM66100-class).
    pub diode_r: Ohms,
    /// Charge reclamation (§3.3.4): when `true` (the paper's design), a
    /// near-empty signal boosts parallel banks into series before
    /// disconnecting them; when `false`, banks are simply disconnected —
    /// the strawman §3.3.4 compares against (N² more stranded energy).
    pub charge_reclamation: bool,
}

impl ReactConfig {
    /// The paper's prototype: Table 1 banks, 770 µF LLB, 3.5 V / 1.9 V
    /// thresholds, 10 Hz polling.
    pub fn paper_prototype() -> Self {
        let ceramic = |uf: f64| CapacitorSpec::ceramic_scaled(Farads::from_micro(uf));
        Self {
            llb: ceramic(770.0),
            banks: vec![
                BankSpec::new(ceramic(220.0), 3),
                BankSpec::new(ceramic(440.0), 3),
                BankSpec::new(ceramic(880.0), 3),
                BankSpec::new(ceramic(880.0), 3),
                BankSpec::new(CapacitorSpec::supercap_5mf(), 2),
            ],
            rail_clamp: Volts::new(3.6),
            v_high: Volts::new(3.5),
            v_low: Volts::new(1.9),
            poll_period: Seconds::new(0.1),
            overhead_per_bank: Watts::from_micro(13.6),
            instrumentation_overhead: Watts::from_micro(1.0),
            diode_r: Ohms::new(0.079),
            charge_reclamation: true,
        }
    }

    /// Maximum total capacitance (LLB + every bank in parallel).
    pub fn max_capacitance(&self) -> Farads {
        self.llb.capacitance
            + self
                .banks
                .iter()
                .map(|b| b.parallel_capacitance())
                .sum::<Farads>()
    }

    /// Minimum (cold-start) capacitance: just the LLB.
    pub fn min_capacitance(&self) -> Farads {
        self.llb.capacitance
    }

    /// Eq. 1: last-level buffer voltage after boosting a bank of `n`
    /// unit capacitors (`c_unit` each) from parallel to series at
    /// `v_low`.
    pub fn eq1_post_boost_voltage(&self, c_unit: Farads, n: usize) -> Volts {
        let nf = n as f64;
        let c_ser = c_unit.get() / nf;
        let c_last = self.llb.capacitance.get();
        let v_low = self.v_low.get();
        Volts::new((nf * v_low) * c_ser / (c_last + c_ser) + v_low * c_last / (c_last + c_ser))
    }

    /// Eq. 2: the unit-capacitance ceiling for a bank of `n` capacitors.
    /// Returns `None` when the constraint does not bind
    /// (`n·v_low ≤ v_high`).
    pub fn eq2_unit_capacitance_limit(&self, n: usize) -> Option<Farads> {
        let nf = n as f64;
        let (v_low, v_high) = (self.v_low.get(), self.v_high.get());
        if nf * v_low <= v_high {
            return None;
        }
        let c_last = self.llb.capacitance.get();
        Some(Farads::new(
            nf * c_last * (v_high - v_low) / (nf * v_low - v_high),
        ))
    }

    /// Validates thresholds and every bank against Eq. 2.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.v_low < self.v_high && self.v_high <= self.rail_clamp) {
            return Err(ConfigError::BadThresholds);
        }
        if self.banks.is_empty() {
            return Err(ConfigError::NoBanks);
        }
        for (i, bank) in self.banks.iter().enumerate() {
            if let Some(limit) = self.eq2_unit_capacitance_limit(bank.count) {
                if bank.unit.capacitance > limit {
                    return Err(ConfigError::BankTooLarge { bank: i, limit });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_matches_table_1() {
        let c = ReactConfig::paper_prototype();
        assert!((c.llb.capacitance.to_micro() - 770.0).abs() < 1e-9);
        assert_eq!(c.banks.len(), 5);
        let sizes: Vec<f64> = c
            .banks
            .iter()
            .map(|b| b.unit.capacitance.to_micro())
            .collect();
        for (got, want) in sizes.iter().zip([220.0, 440.0, 880.0, 880.0, 5000.0]) {
            assert!((got - want).abs() < 1e-6, "bank size {got} vs {want}");
        }
        let counts: Vec<usize> = c.banks.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![3, 3, 3, 3, 2]);
        // Range 770 µF – 18.03 mF as §4 reports.
        assert!((c.min_capacitance().to_micro() - 770.0).abs() < 1e-9);
        assert!((c.max_capacitance().to_milli() - 18.03).abs() < 1e-3);
    }

    #[test]
    fn paper_prototype_satisfies_eq2() {
        assert_eq!(ReactConfig::paper_prototype().validate(), Ok(()));
    }

    #[test]
    fn eq2_limit_values() {
        let c = ReactConfig::paper_prototype();
        // N = 3: 3·770µ·(3.5−1.9)/(3·1.9−3.5) = 3·770µ·1.6/2.2 = 1680 µF.
        let lim3 = c.eq2_unit_capacitance_limit(3).unwrap();
        assert!((lim3.to_micro() - 3.0 * 770.0 * 1.6 / 2.2).abs() < 1e-6);
        // N = 2: 2·770µ·1.6/0.3 ≈ 8213 µF — the 5 mF supercap bank fits.
        let lim2 = c.eq2_unit_capacitance_limit(2).unwrap();
        assert!(lim2.to_micro() > 5000.0);
        // N = 1: 1·1.9 < 3.5 → unconstrained.
        assert_eq!(c.eq2_unit_capacitance_limit(1), None);
    }

    #[test]
    fn eq1_boost_stays_below_v_high_for_paper_banks() {
        let c = ReactConfig::paper_prototype();
        for bank in &c.banks {
            let v = c.eq1_post_boost_voltage(bank.unit.capacitance, bank.count);
            assert!(v <= c.v_high, "bank boost to {v:?} exceeds v_high");
            // And the boost actually raises the LLB above v_low.
            if bank.count as f64 * c.v_low.get() > c.v_low.get() {
                assert!(v > c.v_low);
            }
        }
    }

    #[test]
    fn oversized_bank_fails_validation() {
        let mut c = ReactConfig::paper_prototype();
        c.banks[0] = BankSpec::new(CapacitorSpec::ceramic_scaled(Farads::from_milli(5.0)), 3);
        match c.validate() {
            Err(ConfigError::BankTooLarge { bank: 0, .. }) => {}
            other => panic!("expected BankTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bad_thresholds_fail_validation() {
        let mut c = ReactConfig::paper_prototype();
        c.v_low = Volts::new(3.6);
        assert_eq!(c.validate(), Err(ConfigError::BadThresholds));
        let mut c2 = ReactConfig::paper_prototype();
        c2.v_high = Volts::new(5.0); // above the rail clamp
        assert_eq!(c2.validate(), Err(ConfigError::BadThresholds));
    }

    #[test]
    fn empty_banks_fail_validation() {
        let mut c = ReactConfig::paper_prototype();
        c.banks.clear();
        assert_eq!(c.validate(), Err(ConfigError::NoBanks));
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::BankTooLarge {
            bank: 2,
            limit: Farads::from_micro(100.0),
        };
        assert!(format!("{e}").contains("bank 2"));
    }
}
