//! REACT: the paper's reconfigurable, energy-adaptive capacitor buffer.
//!
//! Hardware structure (Fig. 2): a small always-connected *last-level
//! buffer* (LLB) feeds the load; configurable [`SeriesParallelBank`]s sit
//! behind isolation diodes — charged only from the harvester, discharged
//! only into the LLB. Two comparators watch the LLB voltage; a software
//! state machine polled at 10 Hz steps bank configurations up
//! (disconnected → series → parallel) on a near-capacity signal and down
//! (parallel → series → disconnected) on a near-empty signal, reclaiming
//! otherwise-stranded charge by boosting bank output voltage (§3.3.4).
//!
//! Because banks only ever reconfigure between full-series and
//! full-parallel, no current flows between capacitors during a switch:
//! reconfiguration is lossless, unlike the fully-connected network of
//! [`MorphyBuffer`](crate::MorphyBuffer).

mod config;

pub use config::{ConfigError, ReactConfig};

use react_circuit::{BankMode, Capacitor, EnergyLedger, SeriesParallelBank};
use react_telemetry::FallbackReason;
use react_units::{Amps, Coulombs, Farads, Joules, Seconds, Volts, Watts};

use crate::charge_ode::{self, ChargeOde};
use crate::{power_intake, EnergyBuffer, CHARGE_CURRENT_LIMIT, CONVERSION_FLOOR};

/// Rail voltage above which the comparators and instrumentation draw
/// their quiescent power.
const INSTRUMENTATION_FLOOR: f64 = 0.5;

/// Residual comparator ambiguity (V) around `v_high`/`v_low` where the
/// reconstructed LLB reading is not trusted to resolve a poll: the
/// microstate-offset reconstruction is accurate to the fine-step churn's
/// step-to-step spread (a load-dip plus one input deposit across the
/// LLB, well under a millivolt at sleep currents), so only polls this
/// close to a threshold still refuse the closed-form stride.
const RESIDUAL_GUARD: f64 = 0.002;

/// Input-power ceiling (W) for the staged un-equalized solve. The
/// staged closed forms carry residual discretization error that grows
/// with the square of the harvest power; below this ceiling the error
/// is sub-microvolt over minutes-long strides, above it the fine-step
/// reference is both exact and cheap (high power means imminent
/// reconfigurations, so strides would be short regardless).
const STAGED_INPUT_MAX: f64 = 2.0e-4;

/// The REACT buffer: LLB + banks + instrumentation + controller FSM.
#[derive(Clone, Debug)]
pub struct ReactBuffer {
    config: ReactConfig,
    llb: Capacitor,
    banks: Vec<SeriesParallelBank>,
    poll_acc: Seconds,
    ledger: EnergyLedger,
    reconfigurations: u64,
    /// Whether the MCU was running last step — REACT's bank switches are
    /// normally-open (§3.2), so every bank disconnects (keeping its
    /// charge) the moment the MCU loses power.
    mcu_was_running: bool,
    /// Seconds spent at each capacitance level (index = level).
    dwell: Vec<f64>,
    /// Telemetry: why the last refused closed-form stride fell back
    /// (query-and-clear via `EnergyBuffer::take_fallback`).
    fallback: Option<FallbackReason>,
}

impl ReactBuffer {
    /// Builds a buffer from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ReactConfig::validate`]
    /// (use `validate` first for a recoverable error).
    pub fn new(config: ReactConfig) -> Self {
        config.validate().expect("invalid REACT configuration");
        let llb_spec = config.llb.with_max_voltage(config.rail_clamp);
        Self {
            llb: Capacitor::new(llb_spec),
            banks: config
                .banks
                .iter()
                .map(|&b| SeriesParallelBank::new(b))
                .collect(),
            config,
            poll_acc: Seconds::ZERO,
            ledger: EnergyLedger::new(),
            reconfigurations: 0,
            mcu_was_running: false,
            dwell: Vec::new(),
            fallback: None,
        }
    }

    /// The paper's Table 1 prototype.
    pub fn paper_prototype() -> Self {
        Self::new(ReactConfig::paper_prototype())
    }

    /// The active configuration.
    pub fn config(&self) -> &ReactConfig {
        &self.config
    }

    /// Bank modes in connection order (diagnostics/tests).
    pub fn bank_modes(&self) -> Vec<BankMode> {
        self.banks.iter().map(|b| b.mode()).collect()
    }

    /// Count of bank reconfigurations performed so far.
    pub fn reconfiguration_count(&self) -> u64 {
        self.reconfigurations
    }

    /// Force LLB voltage (test setup).
    pub fn set_llb_voltage(&mut self, v: Volts) {
        self.llb.set_voltage(v);
    }

    /// Force a bank's unit voltage and mode (test setup).
    pub fn force_bank_state(&mut self, index: usize, unit_voltage: Volts, mode: BankMode) {
        self.banks[index].set_unit_voltage(unit_voltage);
        self.banks[index].reconfigure(mode);
    }

    /// Accrues dwell time at the present capacitance level.
    fn note_dwell(&mut self, seconds: f64) {
        let level = EnergyBuffer::capacitance_level(self) as usize;
        if self.dwell.len() <= level {
            self.dwell.resize(level + 1, 0.0);
        }
        self.dwell[level] += seconds;
    }

    /// Output isolation diodes: every connected bank whose terminal sits
    /// above the LLB dumps charge into it until the voltages meet.
    fn drain_banks_into_llb(&mut self) {
        const EPS: f64 = 1e-6;
        // Bounded sweep: each bank needs at most one equalization per
        // call because diodes only conduct bank→LLB (the LLB only rises).
        for _ in 0..self.banks.len() {
            let candidate = self
                .banks
                .iter()
                .enumerate()
                .filter(|(_, b)| b.mode() != BankMode::Disconnected)
                .map(|(i, b)| (i, b.terminal_voltage()))
                .filter(|(_, v)| v.get() > self.llb.voltage().get() + EPS)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite voltages"));
            let Some((idx, v_bank)) = candidate else {
                break;
            };
            let bank = &mut self.banks[idx];
            let c_bank = bank.terminal_capacitance();
            let c_llb = self.llb.capacitance();
            let v_llb = self.llb.voltage();
            let e_before = bank.stored_energy() + self.llb.energy();
            let v_star = (c_bank * v_bank + c_llb * v_llb) / (c_bank + c_llb);
            let dq = c_bank * (v_bank - v_star);
            let got = bank.draw_charge(dq);
            self.llb.shift_charge(got);
            let e_after = bank.stored_energy() + self.llb.energy();
            self.ledger.diode_loss += (e_before - e_after).max(Joules::ZERO);
        }
    }

    /// Input isolation diodes route harvester power to the
    /// lowest-voltage connected element (§3.2.1); the converter delivers
    /// charge at that element's voltage.
    fn route_input(&mut self, input: Watts, dt: Seconds) {
        if input.get() <= 0.0 {
            return;
        }
        // Candidates: LLB plus connected banks, by terminal voltage.
        let llb_v = self.llb.voltage();
        let bank_candidate = self
            .banks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.mode() != BankMode::Disconnected)
            .map(|(i, b)| (i, b.terminal_voltage()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite voltages"));

        let e_before: Joules =
            self.llb.energy() + self.banks.iter().map(|b| b.stored_energy()).sum::<Joules>();

        let clipped = match bank_candidate {
            Some((idx, v_bank)) if v_bank < llb_v => {
                // Charge the bank, clamping its terminal at the rail.
                let dq = power_intake(input, v_bank, dt);
                let bank = &mut self.banks[idx];
                let headroom = bank.terminal_capacitance() * (self.config.rail_clamp - v_bank);
                let store = dq.min(headroom.max(Coulombs::ZERO));
                let clip_units = bank.deposit_charge(store);
                clip_units + (dq - store) * self.config.rail_clamp
            }
            _ => {
                let dq = power_intake(input, llb_v, dt);
                self.llb.deposit(dq / dt, dt)
            }
        };

        let e_after: Joules =
            self.llb.energy() + self.banks.iter().map(|b| b.stored_energy()).sum::<Joules>();
        let delivered = (e_after - e_before).max(Joules::ZERO);
        self.ledger.delivered += delivered;
        self.ledger.clipped += clipped;
        self.ledger.harvested += delivered + clipped;
    }

    /// One software poll (§3.4): read the comparators, step the bank
    /// state machine.
    fn poll_controller(&mut self) {
        self.poll_controller_at(self.llb.voltage());
    }

    /// One software poll resolved against an explicit comparator
    /// reading: the closed-form strides pass the *reconstructed* LLB
    /// voltage (committed pack average plus the tracked microstate
    /// offset) since the committed state only carries the average.
    fn poll_controller_at(&mut self, v: Volts) {
        if v >= self.config.v_high {
            self.step_up();
        } else if v <= self.config.v_low {
            self.step_down();
        }
    }

    /// Near-capacity: connect the next bank in series, or promote the
    /// most recently connected series bank to parallel.
    ///
    /// A disconnected bank that *retained* a high charge (normally-open
    /// switches opened at a brown-out) reconnects in parallel instead —
    /// reconnecting it in series would multiply its terminal voltage
    /// past the rail and burn the charge in the clamp.
    fn step_up(&mut self) {
        let v_high = self.config.v_high;
        for bank in &mut self.banks {
            match bank.mode() {
                BankMode::Disconnected => {
                    let n = bank.spec().count as f64;
                    if bank.unit_voltage() * n > v_high {
                        bank.reconfigure(BankMode::Parallel);
                    } else {
                        bank.reconfigure(BankMode::Series);
                    }
                    self.reconfigurations += 1;
                    return;
                }
                BankMode::Series => {
                    bank.reconfigure(BankMode::Parallel);
                    self.reconfigurations += 1;
                    return;
                }
                BankMode::Parallel => continue,
            }
        }
    }

    /// Near-empty: reclaim charge by boosting the most recently expanded
    /// bank (parallel → series), or disconnect a drained series bank.
    /// With reclamation disabled (ablation), parallel banks disconnect
    /// outright, stranding their sub-threshold charge (§3.3.4).
    fn step_down(&mut self) {
        let reclaim = self.config.charge_reclamation;
        for bank in self.banks.iter_mut().rev() {
            match bank.mode() {
                BankMode::Parallel => {
                    bank.reconfigure(if reclaim {
                        BankMode::Series
                    } else {
                        BankMode::Disconnected
                    });
                    self.reconfigurations += 1;
                    return;
                }
                BankMode::Series => {
                    bank.reconfigure(BankMode::Disconnected);
                    self.reconfigurations += 1;
                    return;
                }
                BankMode::Disconnected => continue,
            }
        }
    }

    /// Staged closed-form sleep integration for the *un-equalized* bank
    /// state: one or more connected banks sit below the pack (freshly
    /// connected drained banks still charging up behind their blocking
    /// output diodes). While the diodes block, the circuit is a set of
    /// decoupled closed-form trajectories — the input diodes route the
    /// whole harvester intake to the *charging front* (the lowest-voltage
    /// banks, which the per-step routing keeps level, so they charge as
    /// one combined capacitance), every other low bank decays on its own
    /// leak, and the LLB plus the already-equalized banks drain under the
    /// sleep load and overhead. The stride walks poll-to-poll committing
    /// all trajectories, bulk-striding the comparator dead band exactly
    /// like the equalized path, and cuts every span at the earliest
    /// predicted topology event: the front absorbing the next-lowest
    /// bank, or a diode-coupling with the falling pack (from either
    /// side). On coupling, `drain_banks_into_llb` equalizes the met pair
    /// — booking the (second-order, quantization-sized) loss through the
    /// same ∫q·dt energy closure the fine-step reference uses — and the
    /// remainder of the stride re-enters `powered_advance`, which
    /// re-partitions the (smaller) un-equalized set or continues in the
    /// equalized combined-capacitor form.
    #[allow(clippy::too_many_arguments)]
    fn staged_powered_advance(
        &mut self,
        mut lows: Vec<usize>,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        let vs = v_stop.get();
        let vw = v_wake.map(Volts::get);
        let total = duration.get();
        let dt = fine_dt.get();

        // The pack: LLB plus every connected bank already equalized
        // with it (the low banks are excluded by construction).
        let pack: Vec<usize> = self
            .banks
            .iter()
            .enumerate()
            .filter(|(i, b)| !lows.contains(i) && b.mode() != BankMode::Disconnected)
            .map(|(i, _)| i)
            .collect();
        let llb_spec = *self.llb.spec();
        let llb_v = self.llb.voltage().get();
        let mut c_pack = llb_spec.capacitance.get();
        let mut g_pack = charge_ode::leakage_conductance(&llb_spec.leakage);
        let mut charge = c_pack * llb_v;
        for &i in &pack {
            let unit = self.banks[i].spec().unit;
            let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
            let c_term = self.banks[i].terminal_capacitance().get();
            charge += c_term * self.banks[i].terminal_voltage().get();
            c_pack += c_term;
            g_pack += k * c_term;
        }
        let mut v_pack = charge / c_pack;
        // LLB microstate offset for comparator reconstruction, exactly
        // as in the equalized path.
        let llb_offset = llb_v - v_pack;

        // Low banks ascending by terminal voltage; per-bank terminal
        // capacitance and leak rate ride along.
        lows.sort_by(|&a, &b| {
            self.banks[a]
                .terminal_voltage()
                .get()
                .total_cmp(&self.banks[b].terminal_voltage().get())
        });
        let mut low_v: Vec<f64> = lows
            .iter()
            .map(|&i| self.banks[i].terminal_voltage().get())
            .collect();
        let low_c: Vec<f64> = lows
            .iter()
            .map(|&i| self.banks[i].terminal_capacitance().get())
            .collect();
        let low_k: Vec<f64> = lows
            .iter()
            .map(|&i| {
                let unit = self.banks[i].spec().unit;
                charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get()
            })
            .collect();
        // The charging front: `lows[..front_len]` share the lowest
        // voltage and split the harvester intake, so they charge as one
        // combined capacitance at `v_front`.
        let mut front_len = 1usize;
        let mut v_front = low_v[0];

        // The powered stride only runs while the MCU is on (see the
        // equalized path).
        self.mcu_was_running = true;

        let p_in = input.get().max(0.0);
        let i_load = load.get().max(0.0);
        // The overhead draw scales with every *connected* bank,
        // including the ones still charging up.
        let overhead = self.config.instrumentation_overhead.get()
            + self.config.overhead_per_bank.get() * (pack.len() + lows.len()) as f64;
        let pack_ode = charge_ode::PoweredOde {
            c: c_pack,
            g: g_pack,
            v_max: llb_spec.max_voltage.get(),
            p_in: 0.0,
            i_load,
            p_drain: overhead,
            v_drain_min: INSTRUMENTATION_FLOOR,
        };
        let rail_clamp = self.config.rail_clamp.get();
        let front_ode = |n: usize| {
            let c: f64 = low_c[..n].iter().sum();
            let g: f64 = low_c[..n].iter().zip(&low_k[..n]).map(|(c, k)| c * k).sum();
            ChargeOde {
                c,
                g,
                v_max: rail_clamp,
                p_in,
                p_drain: 0.0,
                v_drain_min: f64::INFINITY,
            }
        };
        // The fine reference deposits each step's intake charge at the
        // step-*start* voltage, so every Euler step books a `dq²/2C`
        // quadrature excess over the continuous closed form — material
        // on a small, low-voltage charging front (`dq ∝ 1/v`). Summed
        // along the front's own trajectory the excess has closed forms
        // per converter regime: `i²·dt·t/2C` through the
        // constant-current region and `(p·dt/4)·ln(v1²/v0²)` through
        // constant-power. Booking it keeps staged strides step-faithful
        // to the reference discretization.
        let euler_intake_excess = |v0: f64, v1: f64, c: f64| -> f64 {
            if p_in <= 0.0 || v1 <= v0 || c <= 0.0 {
                return 0.0;
            }
            let v_floor = CONVERSION_FLOOR.get();
            let i_limit = CHARGE_CURRENT_LIMIT.get();
            let i_cc = (p_in / v_floor).min(i_limit);
            let v_cc = v_floor.max(p_in / i_limit);
            let mut excess = 0.0;
            let v_cc_end = v1.min(v_cc);
            if v0 < v_cc_end {
                let t_cc = c * (v_cc_end - v0) / i_cc;
                excess += i_cc * i_cc * dt * t_cc / (2.0 * c);
            }
            let va = v0.max(v_cc);
            if v1 > va {
                excess += p_in * dt * 0.25 * ((v1 * v1) / (va * va)).ln();
            }
            excess
        };

        // Books one decoupled span: the pack and the front land on
        // their own closed-form finals, the remaining low banks decay
        // on their leaks, and the ledger closes against the committed
        // energies exactly (∫q·dt = ΔE on each trajectory, summed).
        macro_rules! commit_staged {
            ($pack_fin:expr, $front_fin:expr, $t_adv:expr) => {{
                let pack_fin = $pack_fin;
                let front_fin = $front_fin;
                let t_adv = $t_adv;
                let group_energy = |banks: &[SeriesParallelBank]| -> Joules {
                    pack.iter()
                        .chain(lows.iter())
                        .map(|&i| banks[i].stored_energy())
                        .sum()
                };
                let set_terminal = |bank: &mut SeriesParallelBank, v: f64| {
                    let unit_v = match bank.mode() {
                        BankMode::Series => v / bank.spec().count as f64,
                        BankMode::Parallel => v,
                        BankMode::Disconnected => unreachable!("staged banks are connected"),
                    };
                    bank.set_unit_voltage(Volts::new(unit_v));
                };
                let e_before = self.llb.energy() + group_energy(&self.banks);
                self.llb.set_voltage(Volts::new(pack_fin.v_final));
                for &i in &pack {
                    set_terminal(&mut self.banks[i], pack_fin.v_final);
                }
                for j in 0..front_len {
                    set_terminal(&mut self.banks[lows[j]], front_fin.v_final);
                }
                // Low banks behind both blocking diodes just leak; the
                // drop is booked so the gross-delivery closure below
                // stays an identity.
                let mut decay_leaked = 0.0;
                for j in front_len..lows.len() {
                    let i = lows[j];
                    let e_b = self.banks[i].stored_energy();
                    low_v[j] *= (-low_k[j] * t_adv).exp();
                    set_terminal(&mut self.banks[i], low_v[j]);
                    decay_leaked += (e_b - self.banks[i].stored_energy()).get();
                }
                let e_after = self.llb.energy() + group_energy(&self.banks);
                let delta_e = (e_after - e_before).get();
                let leaked = pack_fin.leaked + front_fin.leaked + decay_leaked;
                let clipped = pack_fin.clipped + front_fin.clipped;
                let delivered_gross =
                    (delta_e + leaked + pack_fin.load_consumed + pack_fin.drained + clipped)
                        .max(0.0);
                self.ledger.leaked += Joules::new(leaked);
                self.ledger.load_consumed += Joules::new(pack_fin.load_consumed);
                self.ledger.overhead_consumed += Joules::new(pack_fin.drained);
                self.ledger.clipped += Joules::new(clipped);
                self.ledger.delivered += Joules::new(delivered_gross - clipped);
                self.ledger.harvested += Joules::new(delivered_gross);
                for (i, bank) in self.banks.iter_mut().enumerate() {
                    if pack.contains(&i) || lows.contains(&i) {
                        continue;
                    }
                    let unit = bank.spec().unit;
                    let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
                    if k > 0.0 && bank.unit_voltage().get() > 0.0 {
                        let e_b = bank.stored_energy();
                        let v_unit = bank.unit_voltage().get() * (-k * t_adv).exp();
                        bank.set_unit_voltage(Volts::new(v_unit));
                        self.ledger.leaked += e_b - bank.stored_energy();
                    }
                }
                self.note_dwell(t_adv);
                v_pack = pack_fin.v_final;
                v_front = front_fin.v_final;
            }};
        }

        // Topology events resolve once trajectories are within the
        // equalization sweep's own epsilon of each other.
        const MEET_EPS: f64 = 1e-6;
        // Quantize a predicted event time up onto the step grid.
        let quantize_meet = |meet: Option<f64>, horizon: f64| -> f64 {
            match meet {
                Some(t) => ((t / dt).ceil() * dt).max(dt).min(horizon),
                None => horizon,
            }
        };

        let period = self.config.poll_period.get();
        let mut elapsed = 0.0_f64;
        let mut refusal = FallbackReason::TransitionDue;
        let mut coupled = false;
        while elapsed < total {
            // The front absorbs the next-lowest bank once level with it
            // (per-step routing alternates deposits between them, which
            // is charge-equivalent to charging the merged capacitance).
            while front_len < lows.len() && v_front >= low_v[front_len] - MEET_EPS {
                let c_f: f64 = low_c[..front_len].iter().sum();
                let j = front_len;
                v_front = (c_f * v_front + low_c[j] * low_v[j]) / (c_f + low_c[j]);
                front_len += 1;
            }
            if v_pack <= vs || vw.is_some_and(|vw| v_pack >= vw) {
                break;
            }
            // Diode coupling: the front caught the falling pack, or the
            // pack fell onto a decaying low bank. Either way that output
            // diode conducts and the decoupled forms are stale.
            if v_front >= v_pack - MEET_EPS
                || (front_len < lows.len() && low_v[lows.len() - 1] >= v_pack - MEET_EPS)
            {
                coupled = true;
                break;
            }

            // The earliest predicted topology event bounds every span
            // this iteration integrates.
            let fr_ode = front_ode(front_len);
            let event_cut = |h: f64| -> f64 {
                let mut cut = quantize_meet(
                    charge_ode::staged_meet_time(&fr_ode, v_front, &pack_ode, v_pack, h),
                    h,
                );
                if front_len < lows.len() {
                    let j = front_len;
                    let next_fall = charge_ode::PoweredOde {
                        c: low_c[j],
                        g: low_c[j] * low_k[j],
                        v_max: rail_clamp,
                        p_in: 0.0,
                        i_load: 0.0,
                        p_drain: 0.0,
                        v_drain_min: f64::INFINITY,
                    };
                    cut = cut.min(quantize_meet(
                        charge_ode::staged_meet_time(&fr_ode, v_front, &next_fall, low_v[j], h),
                        h,
                    ));
                    let top = lows.len() - 1;
                    let top_rise = ChargeOde {
                        c: low_c[top],
                        g: low_c[top] * low_k[top],
                        v_max: rail_clamp,
                        p_in: 0.0,
                        p_drain: 0.0,
                        v_drain_min: f64::INFINITY,
                    };
                    cut = cut.min(quantize_meet(
                        charge_ode::staged_meet_time(&top_rise, low_v[top], &pack_ode, v_pack, h),
                        h,
                    ));
                }
                cut
            };

            // 0. Comparator dead band, in bulk — same guard bounds as
            // the equalized path, additionally cut at the predicted
            // topology events.
            const BAND_GUARD: f64 = 0.02;
            let band_lo = (self.config.v_low.get() + BAND_GUARD).max(vs);
            let band_hi = self.config.v_high.get() - BAND_GUARD;
            let band_stop_up = vw.map_or(band_hi, |vw| vw.min(band_hi));
            let whole = (((total - elapsed) / dt).floor() * dt).max(0.0);
            if v_pack > band_lo && v_pack < band_stop_up && whole > 3.0 * period {
                let window = event_cut(whole);
                if window > 3.0 * period {
                    if let Some((t_adv, pack_fin)) = charge_ode::integrate_powered_quantized(
                        &pack_ode,
                        v_pack,
                        window,
                        band_lo,
                        Some(band_stop_up),
                        dt,
                    ) {
                        if t_adv > 2.0 * period {
                            let Some(mut front_fin) =
                                charge_ode::integrate(&fr_ode, v_front, t_adv, None)
                            else {
                                refusal = FallbackReason::NoClosedForm;
                                break;
                            };
                            if front_fin.clipped == 0.0 {
                                let e = euler_intake_excess(v_front, front_fin.v_final, fr_ode.c);
                                front_fin.v_final = (front_fin.v_final * front_fin.v_final
                                    + 2.0 * e / fr_ode.c)
                                    .sqrt()
                                    .min(rail_clamp);
                            }
                            commit_staged!(pack_fin, front_fin, t_adv);
                            let steps = (t_adv / dt).round() as u64;
                            self.poll_acc = Seconds::new(crate::bulk_poll_acc(
                                self.poll_acc.get(),
                                steps,
                                dt,
                                period,
                            ));
                            elapsed += t_adv;
                            continue;
                        }
                    }
                }
            }

            // 1. Replay the controller's per-step bookkeeping to find
            // how many fine steps remain until the next poll fires.
            let mut acc = self.poll_acc.get();
            let mut sim_elapsed = elapsed;
            let mut seg_steps = 0usize;
            while sim_elapsed < total {
                let h = dt.min(total - sim_elapsed);
                sim_elapsed += h;
                acc += h;
                seg_steps += 1;
                if acc >= period {
                    break;
                }
            }
            let seg_polls = acc >= period;
            let seg_horizon = sim_elapsed - elapsed;

            // 2. All decoupled closed forms over the segment, cut at
            // the earliest topology event so no committed span ever
            // integrates past a routing or coupling change.
            let horizon_eff = event_cut(seg_horizon);
            let Some((t_adv, pack_fin)) =
                charge_ode::integrate_powered_quantized(&pack_ode, v_pack, horizon_eff, vs, vw, dt)
            else {
                refusal = FallbackReason::NoClosedForm;
                break;
            };
            if t_adv <= 0.0 {
                refusal = FallbackReason::NoClosedForm;
                break;
            }
            let (steps_taken, finished_segment) = if t_adv >= seg_horizon - 1e-15 {
                (seg_steps, true)
            } else {
                ((t_adv / dt).round().max(1.0) as usize, false)
            };
            let Some(mut front_fin) = charge_ode::integrate(&fr_ode, v_front, t_adv, None) else {
                refusal = FallbackReason::NoClosedForm;
                break;
            };
            if front_fin.clipped == 0.0 {
                let e = euler_intake_excess(v_front, front_fin.v_final, fr_ode.c);
                front_fin.v_final = (front_fin.v_final * front_fin.v_final + 2.0 * e / fr_ode.c)
                    .sqrt()
                    .min(rail_clamp);
            }

            // Guard band: resolve the poll against the reconstructed
            // LLB voltage; only the residual sliver still refuses.
            let v_poll = pack_fin.v_final + llb_offset;
            if seg_polls
                && finished_segment
                && ((v_poll - self.config.v_high.get()).abs() < RESIDUAL_GUARD
                    || (v_poll - self.config.v_low.get()).abs() < RESIDUAL_GUARD)
            {
                if elapsed == 0.0 {
                    self.fallback = Some(FallbackReason::GuardBand);
                    return None;
                }
                refusal = FallbackReason::GuardBand;
                break;
            }

            // 3. Commit every trajectory and the energy books.
            commit_staged!(pack_fin, front_fin, t_adv);

            // 4. Controller bookkeeping; a poll can only land on the
            // segment's last step.
            let mut fire = false;
            for _ in 0..steps_taken {
                let h = dt.min(total - elapsed);
                elapsed += h;
                self.poll_acc += Seconds::new(h);
                if self.poll_acc >= self.config.poll_period {
                    self.poll_acc = Seconds::ZERO;
                    fire = true;
                }
            }
            if fire && finished_segment {
                let before = self.reconfigurations;
                self.poll_controller_at(Volts::new(v_pack + llb_offset));
                if self.reconfigurations != before {
                    self.drain_banks_into_llb();
                    // Bank topology changed: every trajectory is
                    // stale, so hand control back to the kernel.
                    break;
                }
            }
        }

        if coupled && elapsed < total {
            // A diode conducts: equalize the met pair (booking the
            // quantization-sized second-order loss through the
            // reference's own diode-loss closure) and continue the
            // stride from the re-partitioned state.
            self.drain_banks_into_llb();
            return match self.powered_advance(
                input,
                load,
                Seconds::new(total - elapsed),
                v_stop,
                v_wake,
                fine_dt,
            ) {
                Some(rest) => Some(Seconds::new(elapsed) + rest),
                // The re-partitioned walk refused from the
                // post-coupling state; the staged prefix still
                // advanced, so commit it and let the kernel re-stride
                // (clearing the refusal the inner call recorded — this
                // stride is not refused).
                None if elapsed > 0.0 => {
                    self.fallback = None;
                    Some(Seconds::new(elapsed))
                }
                None => None,
            };
        }
        if elapsed == 0.0 {
            self.fallback = Some(refusal);
        }
        Some(Seconds::new(elapsed))
    }
}

impl EnergyBuffer for ReactBuffer {
    fn name(&self) -> &str {
        "REACT"
    }

    fn rail_voltage(&self) -> Volts {
        self.llb.voltage()
    }

    fn input_voltage(&self) -> Volts {
        // The input diodes steer current to the lowest-voltage connected
        // element; the harvester sees that node.
        let bank_min = self
            .banks
            .iter()
            .filter(|b| b.mode() != BankMode::Disconnected)
            .map(|b| b.terminal_voltage())
            .fold(f64::MAX, |m, v| m.min(v.get()));
        Volts::new(self.llb.voltage().get().min(bank_min))
    }

    fn equivalent_capacitance(&self) -> Farads {
        self.llb.capacitance()
            + self
                .banks
                .iter()
                .map(|b| b.terminal_capacitance())
                .sum::<Farads>()
    }

    fn stored_energy(&self) -> Joules {
        self.llb.energy() + self.banks.iter().map(|b| b.stored_energy()).sum::<Joules>()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        // The §3.4.1 guarantee: energy deliverable during an *atomic*
        // operation, i.e. without waiting on reconfiguration cascades.
        // Connected banks ride the LLB down through their output diodes
        // at their present terminal capacitance; disconnected banks and
        // charge below `v_floor` (recoverable later via series boosts,
        // §3.3.4) are deliberately not promised to the application.
        let mut usable = Joules::ZERO;
        if self.llb.voltage() > v_floor {
            usable += self.llb.capacitance().energy_at(self.llb.voltage())
                - self.llb.capacitance().energy_at(v_floor);
        }
        for bank in &self.banks {
            if bank.mode() == BankMode::Disconnected {
                continue;
            }
            let v = bank.terminal_voltage();
            if v > v_floor {
                let c = bank.terminal_capacitance();
                usable += c.energy_at(v) - c.energy_at(v_floor);
            }
        }
        usable
    }

    fn supports_longevity(&self) -> bool {
        true
    }

    fn capacitance_level(&self) -> u32 {
        self.banks
            .iter()
            .map(|b| match b.mode() {
                BankMode::Disconnected => 0,
                BankMode::Series => 1,
                BankMode::Parallel => 2,
            })
            .sum()
    }

    fn supports_idle_fast_path(&self) -> bool {
        true
    }

    fn reconfiguration_count(&self) -> u64 {
        self.reconfigurations
    }

    /// REACT's conservative posture is one step *up* the expansion
    /// sequence: reconnect the most recently stranded bank, whose
    /// normally-open switches retained its charge across the forced
    /// brown-out. The extra committed capacitance is what lets the MCU
    /// sleep through an attacker's blackout without browning out
    /// again. No-op (returns `false`) once every bank is connected in
    /// parallel.
    fn defensive_reconfigure(&mut self) -> bool {
        let before = self.reconfigurations;
        self.step_up();
        self.reconfigurations > before
    }

    fn capacitance_dwell(&self) -> Vec<(u32, f64)> {
        self.dwell
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 0.0)
            .map(|(level, s)| (level as u32, *s))
            .collect()
    }

    /// Controller-aware closed-form idle integration. While the MCU is
    /// dark REACT's normally-open switches hold every bank disconnected
    /// and the 10 Hz poller cannot run, so the LLB is electrically a
    /// fixed-capacitance static buffer with one extra term: the
    /// always-on instrumentation draw (two comparators) above the
    /// 0.5 V `INSTRUMENTATION_FLOOR`. The shared regime solver integrates
    /// the whole stride in closed form — quantizing any `v_stop`
    /// crossing up to the fine-step grid, exactly like the static fast
    /// path — while each disconnected bank decays on its own
    /// leakage exponential.
    fn idle_advance(
        &mut self,
        input: Watts,
        duration: Seconds,
        v_stop: Volts,
        fine_dt: Seconds,
    ) -> Seconds {
        let v0 = self.llb.voltage().get();
        let vs = v_stop.get();
        if v0 >= vs || duration.get() <= 0.0 {
            return Seconds::ZERO;
        }
        assert!(fine_dt.get() > 0.0, "fine timestep must be positive");

        // The first MCU-off step of the reference opens every bank
        // switch (§3.2); replicate it before integrating.
        if self.mcu_was_running {
            for bank in &mut self.banks {
                bank.reconfigure(BankMode::Disconnected);
            }
            self.mcu_was_running = false;
        }
        // Forced test states can leave banks connected with the MCU flag
        // already clear; their diode routing has no closed form, so
        // replay the reference loop for them.
        if self
            .banks
            .iter()
            .any(|b| b.mode() != BankMode::Disconnected)
        {
            return crate::reference_idle_advance(self, input, duration, v_stop, fine_dt);
        }

        let spec = *self.llb.spec();
        let ode = ChargeOde {
            c: spec.capacitance.get(),
            g: charge_ode::leakage_conductance(&spec.leakage),
            v_max: spec.max_voltage.get(),
            p_in: input.get().max(0.0),
            p_drain: self.config.instrumentation_overhead.get(),
            v_drain_min: INSTRUMENTATION_FLOOR,
        };
        let Some((t_adv, fin)) =
            charge_ode::integrate_quantized(&ode, v0, duration.get(), vs, fine_dt.get())
        else {
            // Drain active inside a constant-current regime (≥ 25 mW
            // input): no elementary solution.
            return crate::reference_idle_advance(self, input, duration, v_stop, fine_dt);
        };

        // LLB flows. delivered := ΔE + losses keeps the ledger residual
        // exactly zero; clamp the p = 0 case's rounding dust at zero.
        let e0 = self.llb.energy();
        self.llb.set_voltage(Volts::new(fin.v_final));
        let delta_e = self.llb.energy() - e0;
        let delivered = Joules::new((delta_e.get() + fin.leaked + fin.drained).max(0.0));
        self.ledger.leaked += Joules::new(fin.leaked);
        self.ledger.overhead_consumed += Joules::new(fin.drained);
        self.ledger.delivered += delivered;
        self.ledger.clipped += Joules::new(fin.clipped);
        self.ledger.harvested += delivered + Joules::new(fin.clipped);

        // Disconnected banks keep leaking on their own exponentials
        // (`dv/dt = −(g/C)·v` per unit capacitor).
        for bank in &mut self.banks {
            let unit = bank.spec().unit;
            let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
            if k > 0.0 && bank.unit_voltage().get() > 0.0 {
                let e_before = bank.stored_energy();
                let v_unit = bank.unit_voltage().get() * (-k * t_adv).exp();
                bank.set_unit_voltage(Volts::new(v_unit));
                self.ledger.leaked += e_before - bank.stored_energy();
            }
        }

        // The reference resets the poll accumulator on every MCU-off
        // step; all capacitance dwell lands at level 0 (banks open).
        self.poll_acc = Seconds::ZERO;
        self.note_dwell(t_adv);
        Seconds::new(t_adv)
    }

    fn supports_powered_fast_path(&self) -> bool {
        true
    }

    /// Controller-aware closed-form *powered* integration: MCU on,
    /// workload asleep in LPM3. Unlike the dark phase, the 10 Hz
    /// software poller is alive, so the stride walks poll-to-poll
    /// segments exactly like [`MorphyBuffer`](crate::MorphyBuffer)'s
    /// idle path: between polls the LLB and every output-diode-coupled
    /// bank move as **one combined capacitor** (connected banks sit
    /// pinned at the LLB voltage — the equalized steady state
    /// `drain_banks_into_llb` maintains each fine step, whose continuum
    /// limit has zero diode loss), with the comparator/instrumentation
    /// draw (plus the per-connected-bank overhead) as a constant-power
    /// drain and the sleep load as a constant current. At each poll
    /// boundary the threshold handler runs (replayed step-for-step so
    /// poll times stay identical to the reference); a reconfiguration
    /// changes the bank topology, so the stride ends there and the
    /// kernel re-strides from the new state. Un-equalized connected
    /// banks (a bank charging up from below the LLB, forced test
    /// states) have no closed form — `None` falls back to fine steps.
    fn powered_advance(
        &mut self,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        let vs = v_stop.get();
        let vw = v_wake.map(Volts::get);
        let total = duration.get();
        let dt = fine_dt.get();
        assert!(dt > 0.0, "fine timestep must be positive");
        if total <= 0.0 {
            return Some(Seconds::ZERO);
        }

        // Diode-coupled steady state: the fine-step loop's per-step
        // interleaving (load draw → bank equalization → deposit into
        // the lowest element) keeps every connected bank within one
        // step's deposit of the LLB. A bank sitting *below* that band —
        // a freshly connected drained bank still charging up behind its
        // blocking output diode — is a genuinely decoupled state, which
        // the staged two-trajectory solve handles; a bank pinned *above*
        // the LLB (forced test states — continuous diode conduction
        // would have equalized it) has no closed form.
        let llb_v = self.llb.voltage().get();
        let connected: Vec<usize> = self
            .banks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.mode() != BankMode::Disconnected)
            .map(|(i, _)| i)
            .collect();
        let equalize_tol = 0.01 * llb_v.abs().max(1.0);
        let low_banks: Vec<usize> = connected
            .iter()
            .copied()
            .filter(|&i| self.banks[i].terminal_voltage().get() < llb_v - equalize_tol)
            .collect();
        if connected
            .iter()
            .any(|&i| self.banks[i].terminal_voltage().get() > llb_v + equalize_tol)
        {
            self.fallback = Some(FallbackReason::NoClosedForm);
            return None;
        }
        if !low_banks.is_empty() {
            // The staged decoupled solve only engages at micro-power
            // intake. Its per-step discretization corrections (the
            // charging front's `dq²/2C` quadrature) scale with the
            // *square* of the input power, so at trickle currents —
            // the plateau-parked regime it exists for — the closed
            // forms track the fine reference to sub-microvolt, while
            // during harvest bursts the un-equalized state fine-steps
            // exactly like the reference (bursts also reconfigure the
            // banks within a poll or two, so there is no long stride
            // to win there anyway).
            if input.get() > STAGED_INPUT_MAX {
                self.fallback = Some(FallbackReason::NoClosedForm);
                return None;
            }
            return self
                .staged_powered_advance(low_banks, input, load, duration, v_stop, v_wake, fine_dt);
        }

        // Enter the stride from the charge-weighted combined voltage
        // (what continuous diode conduction converges to). Nothing is
        // committed yet — the guard-band fallback below must leave the
        // buffer untouched so the fine steps it hands back to really
        // are the reference microdynamics. The first committed span
        // lands everything on its `v_final`, and the second-order
        // equalization loss folds into that commit's energy closure.
        let mut v_cur = if connected.is_empty() {
            llb_v
        } else {
            let mut num = self.llb.capacitance().get() * llb_v;
            let mut den = self.llb.capacitance().get();
            for &i in &connected {
                let c = self.banks[i].terminal_capacitance().get();
                num += c * self.banks[i].terminal_voltage().get();
                den += c;
            }
            num / den
        };

        // LLB microstate offset: the combined capacitor reproduces the
        // *pack average*, but the 10 Hz comparator reads the LLB
        // specifically, which the fine-step churn (load dip →
        // re-equalization → input deposit) holds a quasi-stationary few
        // mV off the average. The offset at entry — left behind by the
        // genuine microdynamics of the preceding fine steps, under the
        // same input/load this stride integrates — reconstructs the
        // comparator's reading at every in-stride poll.
        let llb_offset = llb_v - v_cur;

        // The powered stride only runs while the MCU is on; keep the
        // normally-open-switch bookkeeping consistent for the next
        // MCU-off transition (a fine step would set the same flag).
        self.mcu_was_running = true;

        let p_in = input.get().max(0.0);
        let i_load = load.get().max(0.0);
        let llb_spec = *self.llb.spec();
        let mut c_eq = llb_spec.capacitance.get();
        let mut g_eq = charge_ode::leakage_conductance(&llb_spec.leakage);
        for &i in &connected {
            // A bank's terminal decays at its unit's g/C rate in both
            // modes, so its terminal conductance is k·C_terminal.
            let unit = self.banks[i].spec().unit;
            let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
            let c_term = self.banks[i].terminal_capacitance().get();
            c_eq += c_term;
            g_eq += k * c_term;
        }
        let overhead = self.config.instrumentation_overhead.get()
            + self.config.overhead_per_bank.get() * connected.len() as f64;

        // Books one integrated span: commits the combined capacitor,
        // closes the ledger against the actual committed energies,
        // decays disconnected banks, and accrues dwell.
        macro_rules! commit_span {
            ($fin:expr, $t_adv:expr) => {{
                let fin = $fin;
                let t_adv = $t_adv;
                let bank_energy = |banks: &[react_circuit::SeriesParallelBank]| -> Joules {
                    connected.iter().map(|&i| banks[i].stored_energy()).sum()
                };
                let e_before = self.llb.energy() + bank_energy(&self.banks);
                self.llb.set_voltage(Volts::new(fin.v_final));
                for &i in &connected {
                    let bank = &mut self.banks[i];
                    let unit_v = match bank.mode() {
                        BankMode::Series => fin.v_final / bank.spec().count as f64,
                        BankMode::Parallel => fin.v_final,
                        BankMode::Disconnected => unreachable!("connected banks only"),
                    };
                    bank.set_unit_voltage(Volts::new(unit_v));
                }
                let e_after = self.llb.energy() + bank_energy(&self.banks);
                let delta_e = (e_after - e_before).get();
                let delivered_gross =
                    (delta_e + fin.leaked + fin.load_consumed + fin.drained + fin.clipped).max(0.0);
                self.ledger.leaked += Joules::new(fin.leaked);
                self.ledger.load_consumed += Joules::new(fin.load_consumed);
                self.ledger.overhead_consumed += Joules::new(fin.drained);
                self.ledger.clipped += Joules::new(fin.clipped);
                self.ledger.delivered += Joules::new(delivered_gross - fin.clipped);
                self.ledger.harvested += Joules::new(delivered_gross);
                for (i, bank) in self.banks.iter_mut().enumerate() {
                    if connected.contains(&i) {
                        continue;
                    }
                    let unit = bank.spec().unit;
                    let k = charge_ode::leakage_conductance(&unit.leakage) / unit.capacitance.get();
                    if k > 0.0 && bank.unit_voltage().get() > 0.0 {
                        let e_before = bank.stored_energy();
                        let v_unit = bank.unit_voltage().get() * (-k * t_adv).exp();
                        bank.set_unit_voltage(Volts::new(v_unit));
                        self.ledger.leaked += e_before - bank.stored_energy();
                    }
                }
                self.note_dwell(t_adv);
                v_cur = fin.v_final;
            }};
        }

        let period = self.config.poll_period.get();
        let mut elapsed = 0.0_f64;
        // Telemetry: why a zero-length stride was refused (stop
        // condition already satisfied unless a break says otherwise).
        let mut refusal = FallbackReason::TransitionDue;
        while elapsed < total {
            let v_now = v_cur;
            if v_now <= vs || vw.is_some_and(|vw| v_now >= vw) {
                break;
            }

            // 0. Comparator dead band, in bulk: while the rail sits
            // strictly inside (v_low, v_high) — with the same guard
            // margin the per-poll path uses — every poll reads "Ok"
            // and fires nothing, so whole spans of the sleep integrate
            // in ONE solve instead of poll-by-poll, with the poll
            // accumulator replayed in closed form. The stride stops at
            // the band edges (quantized onto the step grid); threshold
            // approaches then fall to the per-poll walk below.
            const BAND_GUARD: f64 = 0.02;
            let band_lo = (self.config.v_low.get() + BAND_GUARD).max(vs);
            let band_hi = self.config.v_high.get() - BAND_GUARD;
            let band_stop_up = vw.map_or(band_hi, |vw| vw.min(band_hi));
            let whole = (((total - elapsed) / dt).floor() * dt).max(0.0);
            if v_now > band_lo && v_now < band_stop_up && whole > 3.0 * period {
                let ode = charge_ode::PoweredOde {
                    c: c_eq,
                    g: g_eq,
                    v_max: llb_spec.max_voltage.get(),
                    p_in,
                    i_load,
                    p_drain: overhead,
                    v_drain_min: INSTRUMENTATION_FLOOR,
                };
                if let Some((t_adv, fin)) = charge_ode::integrate_powered_quantized(
                    &ode,
                    v_now,
                    whole,
                    band_lo,
                    Some(band_stop_up),
                    dt,
                ) {
                    if t_adv > 2.0 * period {
                        commit_span!(fin, t_adv);
                        let steps = (t_adv / dt).round() as u64;
                        self.poll_acc = Seconds::new(crate::bulk_poll_acc(
                            self.poll_acc.get(),
                            steps,
                            dt,
                            period,
                        ));
                        elapsed += t_adv;
                        continue;
                    }
                }
            }

            // 1. Replay the controller's per-step bookkeeping to find
            // how many fine steps remain until the next poll fires.
            let mut acc = self.poll_acc.get();
            let mut sim_elapsed = elapsed;
            let mut seg_steps = 0usize;
            while sim_elapsed < total {
                let h = dt.min(total - sim_elapsed);
                sim_elapsed += h;
                acc += h;
                seg_steps += 1;
                if acc >= self.config.poll_period.get() {
                    break;
                }
            }
            let seg_polls = acc >= self.config.poll_period.get();
            let seg_horizon = sim_elapsed - elapsed;

            // 2. Closed-form integration of the inter-poll segment.
            let ode = charge_ode::PoweredOde {
                c: c_eq,
                g: g_eq,
                v_max: llb_spec.max_voltage.get(),
                p_in,
                i_load,
                p_drain: overhead,
                v_drain_min: INSTRUMENTATION_FLOOR,
            };
            let Some((t_adv, fin)) =
                charge_ode::integrate_powered_quantized(&ode, v_now, seg_horizon, vs, vw, dt)
            else {
                refusal = FallbackReason::NoClosedForm;
                break; // hand the rest back to the fine-step loop
            };
            if t_adv <= 0.0 {
                // A zero-length quantized advance with the rail pinned
                // at a comparator edge is the guard band refusing the
                // stride; anywhere else the closed form itself gave up.
                refusal = if (v_now - self.config.v_high.get()).abs() < THRESHOLD_GUARD
                    || (v_now - self.config.v_low.get()).abs() < THRESHOLD_GUARD
                {
                    FallbackReason::GuardBand
                } else {
                    FallbackReason::NoClosedForm
                };
                break;
            }
            let (steps_taken, finished_segment) = if t_adv >= seg_horizon - 1e-15 {
                (seg_steps, true)
            } else {
                ((t_adv / dt).round().max(1.0) as usize, false)
            };

            // Comparator guard band: polls landing near a threshold
            // resolve against the *reconstructed* LLB voltage (pack
            // average plus the tracked microstate offset) instead of
            // refusing the whole ±20 mV band. Only a residual sliver —
            // where the reconstruction error (the churn's step-to-step
            // spread, well under a millivolt at sleep currents) could
            // genuinely flip the comparator — still falls back to fine
            // steps, which are the reference microdynamics.
            const THRESHOLD_GUARD: f64 = 0.02;
            let v_poll = fin.v_final + llb_offset;
            if seg_polls
                && finished_segment
                && !connected.is_empty()
                && ((v_poll - self.config.v_high.get()).abs() < RESIDUAL_GUARD
                    || (v_poll - self.config.v_low.get()).abs() < RESIDUAL_GUARD)
            {
                if elapsed == 0.0 {
                    self.fallback = Some(FallbackReason::GuardBand);
                    return None;
                }
                refusal = FallbackReason::GuardBand;
                break;
            }

            // 3. Commit the combined capacitor and the energy books.
            commit_span!(fin, t_adv);

            // 4. Controller bookkeeping for the steps taken; a poll can
            // only land on the segment's last step.
            let mut fire = false;
            for _ in 0..steps_taken {
                let h = dt.min(total - elapsed);
                elapsed += h;
                self.poll_acc += Seconds::new(h);
                if self.poll_acc >= self.config.poll_period {
                    self.poll_acc = Seconds::ZERO;
                    fire = true;
                }
            }
            if fire && finished_segment {
                let before = self.reconfigurations;
                // The comparator reads the reconstructed LLB voltage,
                // not the committed pack average.
                self.poll_controller_at(Volts::new(v_cur + llb_offset));
                if self.reconfigurations != before {
                    self.drain_banks_into_llb();
                    // Bank topology changed: the combined capacitor is
                    // stale, so hand control back to the kernel.
                    break;
                }
            }
        }
        if elapsed == 0.0 {
            self.fallback = Some(refusal);
        }
        Some(Seconds::new(elapsed))
    }

    /// With the LLB and every connected bank riding at one rail voltage
    /// (the equalized sleep-stride invariant), the usable pool is
    /// `½·C_active·(v² − v_floor²)` for `C_active` = LLB + connected
    /// terminals — the same inverse as a static buffer of that size.
    /// Disconnected banks are not promised to the application (§3.4.1),
    /// so they do not move the crossing.
    fn take_fallback(&mut self) -> Option<FallbackReason> {
        self.fallback.take()
    }

    fn rail_voltage_for_usable(&self, energy: Joules, v_floor: Volts) -> Option<Volts> {
        let c_active = self.llb.capacitance()
            + self
                .banks
                .iter()
                .filter(|b| b.mode() != BankMode::Disconnected)
                .map(|b| b.terminal_capacitance())
                .sum::<Farads>();
        let vf = v_floor.get().max(0.0);
        Some(Volts::new(
            (vf * vf + 2.0 * energy.get().max(0.0) / c_active.get()).sqrt(),
        ))
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, mcu_running: bool) {
        // Dwell accounting uses the level at the top of the step, before
        // any controller action — both kernels share this convention.
        self.note_dwell(dt.get());

        // 0. Normally-open switches (§3.2): when the MCU loses power the
        // switch drivers de-energize and every bank disconnects, keeping
        // its charge. Cold starts therefore always see only the LLB.
        if self.mcu_was_running && !mcu_running {
            for bank in &mut self.banks {
                bank.reconfigure(BankMode::Disconnected);
            }
        }
        self.mcu_was_running = mcu_running;

        // 1. Leakage everywhere (disconnected banks still leak).
        self.ledger.leaked += self.llb.leak(dt);
        for bank in &mut self.banks {
            self.ledger.leaked += bank.leak(dt);
        }

        // 2. Load + REACT's own quiescent draw come from the LLB.
        let v = self.llb.voltage();
        if v.get() > INSTRUMENTATION_FLOOR {
            let connected = self
                .banks
                .iter()
                .filter(|b| b.mode() != BankMode::Disconnected)
                .count() as f64;
            let overhead =
                self.config.instrumentation_overhead + self.config.overhead_per_bank * connected;
            let i_overhead = overhead / v;
            // Book the overhead separately from the application load.
            let before = self.llb.energy();
            self.llb.draw(i_overhead, dt);
            self.ledger.overhead_consumed += before - self.llb.energy();
        }
        let before = self.llb.energy();
        self.llb.draw(load, dt);
        self.ledger.load_consumed += before - self.llb.energy();

        // 3. Output diodes hold the LLB up from the banks.
        self.drain_banks_into_llb();

        // 4. Harvester input to the lowest-voltage element.
        self.route_input(input, dt);

        // 5. Software controller, 10 Hz while the MCU runs (§3.4). A
        // reconfiguration takes effect immediately: the output diodes
        // conduct as soon as a boosted bank rises above the LLB, so
        // drain again after a poll.
        if mcu_running {
            self.poll_acc += dt;
            if self.poll_acc >= self.config.poll_period {
                self.poll_acc = Seconds::ZERO;
                let before = self.reconfigurations;
                self.poll_controller();
                if self.reconfigurations != before {
                    self.drain_banks_into_llb();
                }
            }
        } else {
            self.poll_acc = Seconds::ZERO;
        }
    }

    fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charged_react(v: f64) -> ReactBuffer {
        let mut r = ReactBuffer::paper_prototype();
        r.set_llb_voltage(Volts::new(v));
        r
    }

    #[test]
    fn cold_start_uses_only_the_llb() {
        let r = ReactBuffer::paper_prototype();
        assert!((r.equivalent_capacitance().to_micro() - 770.0).abs() < 1e-9);
        assert_eq!(r.capacitance_level(), 0);
        assert!(r.bank_modes().iter().all(|&m| m == BankMode::Disconnected));
    }

    #[test]
    fn overvoltage_signal_connects_banks_stepwise() {
        let mut r = charged_react(3.55);
        // One poll period with the MCU running.
        r.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), true);
        assert_eq!(r.bank_modes()[0], BankMode::Series);
        assert_eq!(r.capacitance_level(), 1);
        // Keep the LLB pinned high: next poll promotes to parallel.
        r.set_llb_voltage(Volts::new(3.55));
        r.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), true);
        assert_eq!(r.bank_modes()[0], BankMode::Parallel);
        // Then the second bank connects in series.
        r.set_llb_voltage(Volts::new(3.55));
        r.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), true);
        assert_eq!(r.bank_modes()[1], BankMode::Series);
        assert_eq!(r.reconfiguration_count(), 3);
    }

    #[test]
    fn controller_is_dead_while_mcu_is_off() {
        let mut r = charged_react(3.55);
        for _ in 0..20 {
            r.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), false);
        }
        assert_eq!(r.capacitance_level(), 0);
    }

    #[test]
    fn undervoltage_boosts_parallel_bank_and_spikes_llb() {
        let mut r = ReactBuffer::paper_prototype();
        r.set_llb_voltage(Volts::new(1.9));
        // Bank 0 (3 × 220 µF) charged in parallel at 1.9 V.
        r.force_bank_state(0, Volts::new(1.9), BankMode::Parallel);
        let e_before = r.stored_energy();
        r.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), true);
        // Controller flips the bank to series (3 × 1.9 = 5.7 V terminal);
        // the output diode then dumps it into the LLB.
        assert_eq!(r.bank_modes()[0], BankMode::Series);
        let v = r.rail_voltage();
        // Eq. 1 for C_unit = 220 µF, N = 3: ≈ 2.18 V.
        let expected = r
            .config()
            .eq1_post_boost_voltage(Farads::from_micro(220.0), 3);
        assert!(
            (v.get() - expected.get()).abs() < 0.02,
            "post-boost LLB {v:?} vs Eq.1 {expected:?}"
        );
        assert!(v > Volts::new(1.9) && v < r.config().v_high);
        // Equalization dissipated something, booked as diode loss.
        assert!(r.ledger().diode_loss.get() > 0.0);
        assert!(r.stored_energy() < e_before);
    }

    #[test]
    fn bank_reconfiguration_itself_is_lossless() {
        let mut r = ReactBuffer::paper_prototype();
        r.force_bank_state(2, Volts::new(1.5), BankMode::Parallel);
        let e = r.banks[2].stored_energy();
        r.banks[2].reconfigure(BankMode::Series);
        assert!((r.banks[2].stored_energy().get() - e.get()).abs() < 1e-15);
    }

    #[test]
    fn input_routes_to_lowest_voltage_element() {
        let mut r = charged_react(3.0);
        r.force_bank_state(0, Volts::new(0.2), BankMode::Series); // 0.6 V terminal
        let llb_e = r.llb.energy();
        r.step(
            Watts::from_milli(10.0),
            Amps::ZERO,
            Seconds::from_milli(1.0),
            false,
        );
        // The bank (lower terminal) got the charge, not the LLB.
        assert!(r.banks[0].unit_voltage() > Volts::new(0.2));
        assert!(r.llb.energy() <= llb_e + Joules::new(1e-12));
    }

    #[test]
    fn llb_clips_when_everything_full() {
        let mut r = charged_react(3.6);
        r.step(
            Watts::from_milli(30.0),
            Amps::ZERO,
            Seconds::from_milli(1.0),
            false,
        );
        assert!(r.ledger().clipped.get() > 0.0);
        assert!((r.rail_voltage().get() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn banks_above_llb_hold_it_up() {
        let mut r = charged_react(2.0);
        r.force_bank_state(1, Volts::new(3.0), BankMode::Parallel); // 3 V terminal
        r.step(
            Watts::ZERO,
            Amps::from_milli(1.5),
            Seconds::from_milli(1.0),
            false,
        );
        // The LLB equalized up toward the bank.
        assert!(r.rail_voltage().get() > 2.5);
    }

    #[test]
    fn usable_energy_counts_reclaimable_bank_charge() {
        let mut r = ReactBuffer::paper_prototype();
        r.set_llb_voltage(Volts::new(3.3));
        r.force_bank_state(4, Volts::new(3.3), BankMode::Parallel); // 2×5 mF
        let usable = r.usable_energy_above(Volts::new(1.8));
        // LLB: ½·770µ·(3.3²−1.8²) ≈ 2.94 mJ. Bank 5 (2 × 5 mF parallel
        // at 3.3 V) rides the LLB down: ½·10m·(3.3²−1.8²) ≈ 38.25 mJ.
        let expected = 0.5 * (770e-6 + 10e-3) * (3.3_f64.powi(2) - 1.8_f64.powi(2));
        assert!(
            (usable.get() - expected).abs() < 1e-6,
            "usable {} mJ",
            usable.to_milli()
        );
        // A disconnected charged bank is not promised to the app.
        r.force_bank_state(4, Volts::new(3.3), BankMode::Disconnected);
        let llb_only = r.usable_energy_above(Volts::new(1.8));
        assert!((llb_only.get() - 0.5 * 770e-6 * (3.3_f64.powi(2) - 1.8_f64.powi(2))).abs() < 1e-6);
    }

    #[test]
    fn overhead_scales_with_connected_banks() {
        let mut none = charged_react(3.0);
        let mut many = charged_react(3.0);
        for i in 0..5 {
            many.force_bank_state(i, Volts::new(3.0), BankMode::Parallel);
        }
        for _ in 0..1000 {
            none.step(Watts::ZERO, Amps::ZERO, Seconds::from_milli(1.0), false);
            many.step(Watts::ZERO, Amps::ZERO, Seconds::from_milli(1.0), false);
        }
        assert!(many.ledger().overhead_consumed > none.ledger().overhead_consumed);
        // ~68 µW for one second across five banks.
        let drawn = many.ledger().overhead_consumed.to_micro();
        assert!(drawn > 50.0 && drawn < 90.0, "overhead {drawn} µJ");
    }

    #[test]
    fn step_down_sequence_reverses_step_up() {
        let mut r = charged_react(1.8);
        r.force_bank_state(0, Volts::new(1.0), BankMode::Parallel);
        r.force_bank_state(1, Volts::new(1.0), BankMode::Parallel);
        r.set_llb_voltage(Volts::new(1.8));
        r.step(Watts::ZERO, Amps::ZERO, Seconds::new(0.1), true);
        // The *last* connected bank (index 1) boosts first.
        assert_eq!(r.bank_modes()[1], BankMode::Series);
        assert_eq!(r.bank_modes()[0], BankMode::Parallel);
    }

    #[test]
    fn energy_conservation_over_noisy_run() {
        let mut r = ReactBuffer::paper_prototype();
        let e0 = r.stored_energy();
        for i in 0..20_000u32 {
            let input = if i % 7 < 4 {
                Watts::from_milli(8.0)
            } else {
                Watts::ZERO
            };
            let load = if i % 5 < 2 {
                Amps::from_milli(1.5)
            } else {
                Amps::ZERO
            };
            r.step(input, load, Seconds::from_milli(1.0), i % 3 == 0);
        }
        let resid = r.ledger().conservation_residual(e0, r.stored_energy());
        assert!(
            resid.get().abs() < 1e-3 * r.ledger().harvested.get().max(1e-9),
            "residual {} J vs harvested {} J",
            resid.get(),
            r.ledger().harvested.get()
        );
    }
}
