//! Fixed-capacity buffers: the paper's baseline designs (§4.1).

use react_circuit::{Capacitor, CapacitorSpec, EnergyLedger};
use react_units::{Amps, Farads, Joules, Seconds, Volts, Watts};

use crate::{power_intake, EnergyBuffer, CHARGE_CURRENT_LIMIT, CONVERSION_FLOOR};

/// A single static buffer capacitor with an overvoltage clamp.
#[derive(Clone, Debug)]
pub struct StaticBuffer {
    name: String,
    cap: Capacitor,
    ledger: EnergyLedger,
}

/// The rail clamp every tested configuration shares (Fig. 6 shows the
/// buffers clipping at 3.6 V).
pub const RAIL_CLAMP: Volts = Volts::new(3.6);

impl StaticBuffer {
    /// Creates a static buffer from a capacitor spec, clamped at the
    /// shared rail voltage.
    pub fn new(name: impl Into<String>, spec: CapacitorSpec) -> Self {
        Self {
            name: name.into(),
            cap: Capacitor::new(spec.with_max_voltage(RAIL_CLAMP)),
            ledger: EnergyLedger::new(),
        }
    }

    /// The paper's 770 µF baseline (ceramic-class leakage).
    pub fn static_770uf() -> Self {
        Self::new("770 µF", CapacitorSpec::ceramic_scaled(Farads::from_micro(770.0)))
    }

    /// The paper's 10 mF baseline (supercapacitor-class leakage).
    pub fn static_10mf() -> Self {
        Self::new("10 mF", CapacitorSpec::supercap_scaled(Farads::from_milli(10.0)))
    }

    /// The paper's 17 mF baseline, matching REACT's full capacity.
    pub fn static_17mf() -> Self {
        Self::new("17 mF", CapacitorSpec::supercap_scaled(Farads::from_milli(17.0)))
    }

    /// Force the stored voltage (test setup).
    pub fn set_voltage(&mut self, v: Volts) {
        self.cap.set_voltage(v);
    }
}

/// Result of one closed-form idle integration.
#[derive(Clone, Copy, Debug)]
struct IdleSolution {
    /// Time integrated (≤ the requested horizon; shorter only when the
    /// stop voltage was reached first).
    elapsed: f64,
    /// Terminal voltage.
    v_final: f64,
    /// Energy lost to leakage over `elapsed`, `∫ G·v² dt`.
    leaked: f64,
    /// Energy burned by the overvoltage clamp over `elapsed`.
    clipped: f64,
}

/// Integrates the MCU-off charge/decay dynamics of a single capacitor in
/// closed form.
///
/// The per-step reference physics (leak, then `power_intake` deposit)
/// discretize the ODE `C·dv/dt = i_in(v) − G·v` with
/// `i_in(v) = min(p / max(v, V_floor), I_limit)` for `p > 0`, which is
/// piecewise linear either in `v` (constant-current regions) or in
/// `u = v²` (the power-limited region, where `du/dt = 2(p − G·u)/C` —
/// the "RC charge curve" with leakage as the R). Each regime therefore
/// has an exact exponential solution and an invertible crossing time;
/// the integrator walks the regimes in sequence, accumulating the exact
/// leakage integral, and holds with clipping at the overvoltage clamp.
fn integrate_idle(
    c: f64,
    g: f64,
    v_max: f64,
    p: f64,
    v_start: f64,
    horizon: f64,
    v_stop: Option<f64>,
) -> IdleSolution {
    const V_FLOOR: f64 = CONVERSION_FLOOR.get();
    const I_LIMIT: f64 = CHARGE_CURRENT_LIMIT.get();

    let mut v = v_start.max(0.0);
    let mut remaining = horizon;
    let mut leaked = 0.0;
    let mut clipped = 0.0;

    // Exact ∫(a + b·e^{−k t})² dt over [0, T], scaled by `g`: the
    // leakage integral for the linear-in-v regimes.
    let leak_integral_v = |a: f64, b: f64, k: f64, t: f64| -> f64 {
        if g == 0.0 {
            return 0.0;
        }
        if k <= 0.0 {
            // b is constant (no decay term): v = a + b.
            let vv = a + b;
            return g * vv * vv * t;
        }
        let e1 = -(-k * t).exp_m1(); // 1 − e^{−kT}
        let e2 = -(-2.0 * k * t).exp_m1(); // 1 − e^{−2kT}
        g * (a * a * t + 2.0 * a * b * e1 / k + b * b * e2 / (2.0 * k))
    };

    for _ in 0..64 {
        if remaining <= 0.0 {
            break;
        }
        if let Some(vs) = v_stop {
            if v >= vs {
                break;
            }
        }
        let target = v_stop.unwrap_or(f64::INFINITY).min(v_max);

        // Overvoltage clamp hold: input refills leakage, the rest burns.
        if v >= v_max - 1e-12 {
            let i_in = if p > 0.0 {
                (p / v_max.max(V_FLOOR)).min(I_LIMIT)
            } else {
                0.0
            };
            let i_leak = g * v_max;
            if i_in >= i_leak {
                leaked += i_leak * v_max * remaining;
                clipped += (i_in - i_leak) * v_max * remaining;
                // Replacement charge arrives continuously; v stays put.
                return IdleSolution {
                    elapsed: horizon,
                    v_final: v_max,
                    leaked,
                    clipped,
                };
            }
            // Leak outruns the input: fall through and decay below the
            // clamp via the ordinary regimes.
        }

        // Constant-current regimes: linear ODE C·dv/dt = i − G·v.
        let const_current = if p <= 0.0 {
            Some((0.0, f64::INFINITY)) // pure decay everywhere
        } else if v < V_FLOOR {
            Some(((p / V_FLOOR).min(I_LIMIT), V_FLOOR))
        } else if p / v >= I_LIMIT {
            Some((I_LIMIT, p / I_LIMIT))
        } else {
            None
        };

        if let Some((i, regime_top)) = const_current {
            let k = g / c;
            let slope0 = (i - g * v) / c;
            let upper = target.min(regime_top);
            if slope0 <= 0.0 {
                // Decaying (or flat): stays in regime; integrate out.
                let (a, b) = if g > 0.0 { (i / g, v - i / g) } else { (0.0, v) };
                let v_end = if g > 0.0 {
                    a + b * (-k * remaining).exp()
                } else {
                    v // i == 0 && g == 0: nothing moves
                };
                leaked += leak_integral_v(a, b, k, remaining);
                v = v_end;
                remaining = 0.0;
                break;
            }
            // Rising: time to the regime/target boundary.
            let (a, b) = if g > 0.0 { (i / g, v - i / g) } else { (v, 0.0) };
            let t_hit = if g > 0.0 {
                let ratio = (upper - a) / (v - a);
                if ratio <= 0.0 || ratio >= 1.0 {
                    f64::INFINITY // boundary at/behind the asymptote
                } else {
                    -ratio.ln() / k
                }
            } else {
                (upper - v) * c / i
            };
            if t_hit >= remaining {
                let v_end = if g > 0.0 {
                    a + b * (-k * remaining).exp()
                } else {
                    v + i * remaining / c
                };
                leaked += if g > 0.0 {
                    leak_integral_v(a, b, k, remaining)
                } else {
                    0.0
                };
                v = v_end.min(upper);
                remaining = 0.0;
                break;
            }
            leaked += if g > 0.0 {
                leak_integral_v(a, b, k, t_hit)
            } else {
                0.0
            };
            remaining -= t_hit;
            // Land an ulp past the boundary so the next iteration
            // classifies into the adjacent regime.
            v = f64::from_bits(upper.to_bits() + 1);
            continue;
        }

        // Power-limited regime: linear ODE in u = v²,
        // du/dt = (2/C)(p − G·u).
        let u = v * v;
        let target_u = target * target;
        let k2 = 2.0 * g / c;
        let du0 = 2.0 * (p - g * u) / c;
        if du0 <= 0.0 {
            // Decaying toward √(p/G) (which sits above the lower regime
            // boundaries whenever decay happens — leakage currents are
            // orders of magnitude below the charge-current limit): the
            // trajectory never exits the regime; integrate out.
            let ueq = p / g; // g > 0 here, else du0 > 0
            let u_end = ueq + (u - ueq) * (-k2 * remaining).exp();
            // ∫u dt for u = ueq + (u0−ueq)e^{−k2 t}.
            let e1 = -(-k2 * remaining).exp_m1();
            leaked += g * (ueq * remaining + (u - ueq) * e1 / k2);
            v = u_end.max(0.0).sqrt();
            remaining = 0.0;
            break;
        }
        // u(t) = ueq + (u0 − ueq)·e^{−k2 t} for G > 0, else a linear
        // ramp u0 + 2pt/C.
        let u_after = |tt: f64| -> f64 {
            if g > 0.0 {
                let ueq = p / g;
                ueq + (u - ueq) * (-k2 * tt).exp()
            } else {
                u + 2.0 * p * tt / c
            }
        };
        let leak_over = |tt: f64| -> f64 {
            if g > 0.0 {
                let ueq = p / g;
                let e1 = -(-k2 * tt).exp_m1();
                g * (ueq * tt + (u - ueq) * e1 / k2)
            } else {
                0.0
            }
        };
        let t_hit = if g > 0.0 {
            let ueq = p / g;
            let ratio = (target_u - ueq) / (u - ueq);
            if ratio <= 0.0 || ratio >= 1.0 {
                f64::INFINITY // boundary at/behind the asymptote
            } else {
                -ratio.ln() / k2
            }
        } else {
            (target_u - u) * c / (2.0 * p)
        };
        if t_hit >= remaining {
            let u_end = u_after(remaining).min(target_u);
            leaked += leak_over(remaining);
            v = u_end.max(0.0).sqrt();
            remaining = 0.0;
            break;
        }
        leaked += leak_over(t_hit);
        remaining -= t_hit;
        v = f64::from_bits(target.to_bits() + 1).min(v_max);
        if let Some(vs) = v_stop {
            if target >= vs {
                v = vs;
                break;
            }
        }
    }

    IdleSolution {
        elapsed: horizon - remaining,
        v_final: v,
        leaked,
        clipped,
    }
}

impl EnergyBuffer for StaticBuffer {
    fn name(&self) -> &str {
        &self.name
    }

    fn rail_voltage(&self) -> Volts {
        self.cap.voltage()
    }

    fn equivalent_capacitance(&self) -> Farads {
        self.cap.capacitance()
    }

    fn stored_energy(&self) -> Joules {
        self.cap.energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        let v = self.cap.voltage();
        if v <= v_floor {
            return Joules::ZERO;
        }
        self.cap.capacitance().energy_at(v) - self.cap.capacitance().energy_at(v_floor)
    }

    /// Closed-form idle integration: whole charge phases (the dominant
    /// cost of low-power traces at a fixed 1 ms step) collapse into a
    /// handful of per-regime exponential evaluations. The crossing time
    /// to `v_stop` is solved exactly, then rounded *up* to the fine-step
    /// grid so the power gate observes the enable crossing at the same
    /// timestep quantization as the fixed-dt reference kernel.
    fn idle_advance(&mut self, input: Watts, duration: Seconds, v_stop: Volts, fine_dt: Seconds) -> Seconds {
        let v0 = self.cap.voltage().get();
        let vs = v_stop.get();
        if v0 >= vs || duration.get() <= 0.0 {
            return Seconds::ZERO;
        }
        let dt = fine_dt.get();
        assert!(dt > 0.0, "fine timestep must be positive");
        let spec = *self.cap.spec();
        let c = spec.capacitance.get();
        let g = if spec.leakage.rated_voltage.get() > 0.0 {
            spec.leakage.current_at_rated.get() / spec.leakage.rated_voltage.get()
        } else {
            0.0
        };
        let p = input.get().max(0.0);

        // Pass 1: where (if at all) does the trajectory cross `v_stop`?
        let probe = integrate_idle(c, g, spec.max_voltage.get(), p, v0, duration.get(), Some(vs));
        let t_adv = if probe.elapsed < duration.get() {
            // Crossed early: quantize the crossing up to the step grid.
            ((probe.elapsed / dt).ceil() * dt).max(dt).min(duration.get())
        } else {
            duration.get()
        };

        // Pass 2: integrate exactly `t_adv` and book the energy flows.
        // When pass 1 ran the full horizon without stopping (the common
        // long-charge-phase case), its solution already is the answer.
        let fin = if probe.elapsed >= duration.get() {
            probe
        } else {
            integrate_idle(c, g, spec.max_voltage.get(), p, v0, t_adv, None)
        };
        let e0 = self.cap.energy();
        self.cap.set_voltage(Volts::new(fin.v_final));
        let delta_e = self.cap.energy() - e0;
        // delivered := ΔE + leaked keeps the ledger residual exactly
        // zero; clamp the p = 0 case's rounding dust at zero.
        let delivered = Joules::new((delta_e.get() + fin.leaked).max(0.0));
        self.ledger.leaked += Joules::new(fin.leaked);
        self.ledger.delivered += delivered;
        self.ledger.clipped += Joules::new(fin.clipped);
        self.ledger.harvested += delivered + Joules::new(fin.clipped);
        Seconds::new(t_adv)
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, _mcu_running: bool) {
        // Leakage.
        self.ledger.leaked += self.cap.leak(dt);

        // Load draw (energy booked exactly as the stored-energy drop).
        let before = self.cap.energy();
        self.cap.draw(load, dt);
        self.ledger.load_consumed += before - self.cap.energy();

        // Harvest deposit with overvoltage clipping: the converter moves
        // power; charge arrives at the capacitor's own voltage.
        let dq = power_intake(input, self.cap.voltage(), dt);
        let before = self.cap.energy();
        let clipped = self.cap.deposit(dq / dt, dt);
        let delivered = self.cap.energy() - before;
        self.ledger.delivered += delivered;
        self.ledger.clipped += clipped;
        self.ledger.harvested += delivered + clipped;
    }

    fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert!((StaticBuffer::static_770uf().equivalent_capacitance().to_micro() - 770.0).abs() < 1e-9);
        assert!((StaticBuffer::static_10mf().equivalent_capacitance().to_milli() - 10.0).abs() < 1e-9);
        assert!((StaticBuffer::static_17mf().equivalent_capacitance().to_milli() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn charges_under_input() {
        let mut b = StaticBuffer::static_770uf();
        // 2 mW for 1 s = 2 mJ stored → V = sqrt(2·2m/770µ) ≈ 2.28 V.
        for _ in 0..1000 {
            b.step(Watts::from_milli(2.0), Amps::ZERO, Seconds::from_milli(1.0), false);
        }
        let expected = (2.0 * 2e-3 / 770e-6_f64).sqrt();
        assert!(
            (b.rail_voltage().get() - expected).abs() < 0.05,
            "v = {}",
            b.rail_voltage().get()
        );
        assert!(b.ledger().delivered.get() > 0.0);
        assert_eq!(b.ledger().clipped, Joules::ZERO);
    }

    #[test]
    fn clips_at_rail_clamp() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.6));
        b.step(Watts::from_milli(15.0), Amps::ZERO, Seconds::from_milli(1.0), false);
        assert!((b.rail_voltage().get() - 3.6).abs() < 1e-9);
        assert!(b.ledger().clipped.get() > 0.0);
    }

    #[test]
    fn load_discharges_and_is_booked() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.3));
        let e0 = b.stored_energy();
        for _ in 0..100 {
            b.step(Watts::ZERO, Amps::from_milli(1.5), Seconds::from_milli(1.0), true);
        }
        assert!(b.rail_voltage().get() < 3.3);
        let spent = e0 - b.stored_energy();
        let booked = b.ledger().load_consumed + b.ledger().leaked;
        assert!((spent.get() - booked.get()).abs() < 1e-9);
    }

    #[test]
    fn usable_energy_formula() {
        let mut b = StaticBuffer::static_10mf();
        b.set_voltage(Volts::new(3.3));
        let usable = b.usable_energy_above(Volts::new(1.8));
        let expected = 0.5 * 10e-3 * (3.3 * 3.3 - 1.8 * 1.8);
        assert!((usable.get() - expected).abs() < 1e-9);
        assert_eq!(b.usable_energy_above(Volts::new(3.4)), Joules::ZERO);
    }

    #[test]
    fn no_longevity_api() {
        let b = StaticBuffer::static_770uf();
        assert!(!b.supports_longevity());
        assert_eq!(b.capacitance_level(), 0);
    }

    /// Runs the default (reference) fine-step idle loop on a clone.
    fn reference_idle(
        b: &StaticBuffer,
        input_mw: f64,
        duration_s: f64,
        v_stop: f64,
    ) -> (StaticBuffer, f64) {
        let mut r = b.clone();
        let total = duration_s;
        let dt = 1e-3_f64;
        let mut elapsed = 0.0;
        while elapsed < total {
            if r.rail_voltage().get() >= v_stop {
                break;
            }
            let h = dt.min(total - elapsed);
            r.step(
                Watts::from_milli(input_mw),
                Amps::ZERO,
                Seconds::new(h),
                false,
            );
            elapsed += h;
        }
        (r, elapsed)
    }

    fn assert_analytic_matches(start_v: f64, input_mw: f64, duration_s: f64, v_stop: f64) {
        let mut b = StaticBuffer::static_10mf();
        b.set_voltage(Volts::new(start_v));
        let (reference, ref_elapsed) = reference_idle(&b, input_mw, duration_s, v_stop);
        let advanced = b.idle_advance(
            Watts::from_milli(input_mw),
            Seconds::new(duration_s),
            Volts::new(v_stop),
            Seconds::from_milli(1.0),
        );
        let scenario = format!("v0={start_v} p={input_mw}mW T={duration_s}s stop={v_stop}");
        assert!(
            (advanced.get() - ref_elapsed).abs() <= 0.01 * ref_elapsed.max(0.1),
            "{scenario}: advanced {advanced:?} vs reference {ref_elapsed}"
        );
        let (va, vr) = (b.rail_voltage().get(), reference.rail_voltage().get());
        assert!(
            (va - vr).abs() < 0.01 * vr.max(0.1),
            "{scenario}: v {va} vs {vr}"
        );
        let (la, lr) = (b.ledger().leaked.get(), reference.ledger().leaked.get());
        assert!(
            (la - lr).abs() <= 0.02 * lr.max(1e-9),
            "{scenario}: leaked {la} vs {lr}"
        );
        let (da, dr) = (b.ledger().delivered.get(), reference.ledger().delivered.get());
        assert!(
            (da - dr).abs() <= 0.01 * dr.max(1e-9),
            "{scenario}: delivered {da} vs {dr}"
        );
    }

    #[test]
    fn analytic_idle_matches_fine_steps_while_charging() {
        // Cold start through floor + constant-current + power-limited.
        assert_analytic_matches(0.0, 5.0, 120.0, 3.3);
        // Mid-band power-limited charge.
        assert_analytic_matches(2.0, 2.0, 120.0, 3.3);
        // Tiny power: equilibrium below the enable voltage (never starts).
        assert_analytic_matches(1.0, 0.001, 200.0, 3.3);
        // No power at all: pure leak decay.
        assert_analytic_matches(3.0, 0.0, 500.0, 3.3);
    }

    #[test]
    fn analytic_idle_clips_at_rail_clamp() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.55));
        // Stop voltage above the clamp: the buffer pins at 3.6 V and the
        // surplus burns in the protection circuit.
        let advanced = b.idle_advance(
            Watts::from_milli(10.0),
            Seconds::new(5.0),
            Volts::new(4.0),
            Seconds::from_milli(1.0),
        );
        assert!((advanced.get() - 5.0).abs() < 1e-9);
        assert!((b.rail_voltage().get() - 3.6).abs() < 1e-9);
        assert!(b.ledger().clipped.get() > 0.0);
        // Ledger still balances exactly.
        let resid = b
            .ledger()
            .conservation_residual(Joules::new(0.5 * 770e-6 * 3.55 * 3.55), b.stored_energy());
        assert!(resid.get().abs() < 1e-9, "residual {resid:?}");
    }

    #[test]
    fn analytic_idle_crossing_lands_on_step_grid() {
        let mut b = StaticBuffer::static_770uf();
        let advanced = b.idle_advance(
            Watts::from_milli(10.0),
            Seconds::new(30.0),
            Volts::new(3.3),
            Seconds::from_milli(1.0),
        );
        // Crossed well before the horizon, on a whole millisecond.
        assert!(advanced.get() < 30.0);
        let steps = advanced.get() / 1e-3;
        assert!((steps - steps.round()).abs() < 1e-6, "steps {steps}");
        assert!(b.rail_voltage().get() >= 3.3 - 1e-9);
    }

    #[test]
    fn conservation_residual_is_tiny() {
        let mut b = StaticBuffer::static_17mf();
        let initial = b.stored_energy();
        for i in 0..10_000 {
            let input = if i % 3 == 0 { Watts::from_milli(5.0) } else { Watts::ZERO };
            let load = if i % 2 == 0 { Amps::from_milli(1.5) } else { Amps::ZERO };
            b.step(input, load, Seconds::from_milli(1.0), true);
        }
        let resid = b.ledger().conservation_residual(initial, b.stored_energy());
        assert!(
            resid.get().abs() < 1e-3 * b.ledger().harvested.get().max(1e-9),
            "residual {} J",
            resid.get()
        );
    }
}
