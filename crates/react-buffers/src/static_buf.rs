//! Fixed-capacity buffers: the paper's baseline designs (§4.1).

use react_circuit::{Capacitor, CapacitorSpec, EnergyLedger};
use react_units::{Amps, Farads, Joules, Seconds, Volts, Watts};

use crate::charge_ode::{self, ChargeOde};
use crate::{power_intake, EnergyBuffer};

/// A single static buffer capacitor with an overvoltage clamp.
///
/// Carries a believed/actual spec split for hardware-drift faults: the
/// `cap` holds the *actual* (possibly drifted) component values that
/// [`StaticBuffer::step`] — the honest fine integrator — always uses,
/// while `believed` freezes the datasheet values the closed-form fast
/// paths keep assuming. Until a fault fires the two are identical and
/// every code path is bit-identical to the pre-fault implementation.
#[derive(Clone, Debug)]
pub struct StaticBuffer {
    name: String,
    cap: Capacitor,
    believed: CapacitorSpec,
    faulted: bool,
    ledger: EnergyLedger,
}

/// The rail clamp every tested configuration shares (Fig. 6 shows the
/// buffers clipping at 3.6 V).
pub const RAIL_CLAMP: Volts = Volts::new(3.6);

impl StaticBuffer {
    /// Creates a static buffer from a capacitor spec, clamped at the
    /// shared rail voltage.
    pub fn new(name: impl Into<String>, spec: CapacitorSpec) -> Self {
        let spec = spec.with_max_voltage(RAIL_CLAMP);
        Self {
            name: name.into(),
            cap: Capacitor::new(spec),
            believed: spec,
            faulted: false,
            ledger: EnergyLedger::new(),
        }
    }

    /// The spec the closed-form fast paths integrate with: the stale
    /// *believed* (datasheet) values once a fault has drifted the
    /// hardware, and the live spec verbatim on the benign path — the
    /// benign expression is untouched, so fault support costs nothing
    /// in bit-identity.
    fn model_spec(&self) -> CapacitorSpec {
        if self.faulted {
            self.believed
        } else {
            *self.cap.spec()
        }
    }

    /// The paper's 770 µF baseline (ceramic-class leakage).
    pub fn static_770uf() -> Self {
        Self::new(
            "770 µF",
            CapacitorSpec::ceramic_scaled(Farads::from_micro(770.0)),
        )
    }

    /// The paper's 10 mF baseline (supercapacitor-class leakage).
    pub fn static_10mf() -> Self {
        Self::new(
            "10 mF",
            CapacitorSpec::supercap_scaled(Farads::from_milli(10.0)),
        )
    }

    /// The paper's 17 mF baseline, matching REACT's full capacity.
    pub fn static_17mf() -> Self {
        Self::new(
            "17 mF",
            CapacitorSpec::supercap_scaled(Farads::from_milli(17.0)),
        )
    }

    /// Force the stored voltage (test setup).
    pub fn set_voltage(&mut self, v: Volts) {
        self.cap.set_voltage(v);
    }
}

impl EnergyBuffer for StaticBuffer {
    fn name(&self) -> &str {
        &self.name
    }

    fn rail_voltage(&self) -> Volts {
        self.cap.voltage()
    }

    fn equivalent_capacitance(&self) -> Farads {
        self.cap.capacitance()
    }

    fn stored_energy(&self) -> Joules {
        self.cap.energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        let v = self.cap.voltage();
        if v <= v_floor {
            return Joules::ZERO;
        }
        self.cap.capacitance().energy_at(v) - self.cap.capacitance().energy_at(v_floor)
    }

    /// Closed-form idle integration: whole charge phases (the dominant
    /// cost of low-power traces at a fixed 1 ms step) collapse into a
    /// handful of per-regime exponential evaluations. The crossing time
    /// to `v_stop` is solved exactly, then rounded *up* to the fine-step
    /// grid so the power gate observes the enable crossing at the same
    /// timestep quantization as the fixed-dt reference kernel.
    fn idle_advance(
        &mut self,
        input: Watts,
        duration: Seconds,
        v_stop: Volts,
        fine_dt: Seconds,
    ) -> Seconds {
        let v0 = self.cap.voltage().get();
        let vs = v_stop.get();
        if v0 >= vs || duration.get() <= 0.0 {
            return Seconds::ZERO;
        }
        let spec = self.model_spec();
        let ode = ChargeOde {
            c: spec.capacitance.get(),
            g: charge_ode::leakage_conductance(&spec.leakage),
            v_max: spec.max_voltage.get(),
            p_in: input.get().max(0.0),
            p_drain: 0.0,
            v_drain_min: f64::INFINITY,
        };
        let (t_adv, fin) =
            charge_ode::integrate_quantized(&ode, v0, duration.get(), vs, fine_dt.get())
                .expect("drain-free charge ODE is total");
        let e0 = self.cap.energy();
        self.cap.set_voltage(Volts::new(fin.v_final));
        // Under drift the books carry the *believed* energy delta
        // (½·C_believed·Δv²) while the stored pool moved by the actual
        // one — the inconsistency the invariant auditor's per-stride
        // ledger residual detects.
        let delta_e = if self.faulted {
            Joules::new(0.5 * spec.capacitance.get() * (fin.v_final * fin.v_final - v0 * v0))
        } else {
            self.cap.energy() - e0
        };
        // delivered := ΔE + leaked keeps the ledger residual exactly
        // zero; clamp the p = 0 case's rounding dust at zero.
        let delivered = Joules::new((delta_e.get() + fin.leaked).max(0.0));
        self.ledger.leaked += Joules::new(fin.leaked);
        self.ledger.delivered += delivered;
        self.ledger.clipped += Joules::new(fin.clipped);
        self.ledger.harvested += delivered + Joules::new(fin.clipped);
        Seconds::new(t_adv)
    }

    fn supports_idle_fast_path(&self) -> bool {
        true
    }

    fn supports_powered_fast_path(&self) -> bool {
        true
    }

    /// Closed-form powered-sleep integration: MCU-on, workload-idle
    /// stretches (the dominant simulated regime of responsive-sleep
    /// deployments, §2.1) collapse the same way charge phases do. The
    /// constant-current sleep load folds into the quadratic normal form
    /// of [`charge_ode::integrate_powered`]; any brown-out crossing is
    /// rounded *up* onto the fine-step grid so the power gate observes
    /// it at the reference kernel's quantization.
    fn powered_advance(
        &mut self,
        input: Watts,
        load: Amps,
        duration: Seconds,
        v_stop: Volts,
        v_wake: Option<Volts>,
        fine_dt: Seconds,
    ) -> Option<Seconds> {
        let v0 = self.cap.voltage().get();
        if v0 <= v_stop.get() || duration.get() <= 0.0 {
            return Some(Seconds::ZERO);
        }
        let spec = self.model_spec();
        let ode = charge_ode::PoweredOde {
            c: spec.capacitance.get(),
            g: charge_ode::leakage_conductance(&spec.leakage),
            v_max: spec.max_voltage.get(),
            p_in: input.get().max(0.0),
            i_load: load.get().max(0.0),
            p_drain: 0.0,
            v_drain_min: f64::INFINITY,
        };
        let (t_adv, fin) = charge_ode::integrate_powered_quantized(
            &ode,
            v0,
            duration.get(),
            v_stop.get(),
            v_wake.map(Volts::get),
            fine_dt.get(),
        )?;
        if t_adv <= 0.0 {
            return Some(Seconds::ZERO);
        }
        let e0 = self.cap.energy();
        self.cap.set_voltage(Volts::new(fin.v_final));
        // Believed-model booking under drift; see `idle_advance`.
        let delta_e = if self.faulted {
            Joules::new(0.5 * spec.capacitance.get() * (fin.v_final * fin.v_final - v0 * v0))
        } else {
            self.cap.energy() - e0
        };
        // delivered := ΔE + losses keeps the ledger residual exactly
        // zero against the committed (re-rounded) stored energy.
        let delivered =
            Joules::new((delta_e.get() + fin.leaked + fin.load_consumed + fin.clipped).max(0.0));
        self.ledger.leaked += Joules::new(fin.leaked);
        self.ledger.load_consumed += Joules::new(fin.load_consumed);
        self.ledger.clipped += Joules::new(fin.clipped);
        self.ledger.delivered += delivered - Joules::new(fin.clipped);
        self.ledger.harvested += delivered;
        Some(Seconds::new(t_adv))
    }

    /// `usable = ½C(v² − v_floor²)` inverts to
    /// `v = √(v_floor² + 2E/C)`.
    fn rail_voltage_for_usable(&self, energy: Joules, v_floor: Volts) -> Option<Volts> {
        let c = self.cap.capacitance().get();
        let vf = v_floor.get().max(0.0);
        Some(Volts::new(
            (vf * vf + 2.0 * energy.get().max(0.0) / c).sqrt(),
        ))
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, _mcu_running: bool) {
        // Leakage.
        self.ledger.leaked += self.cap.leak(dt);

        // Load draw (energy booked exactly as the stored-energy drop).
        let before = self.cap.energy();
        self.cap.draw(load, dt);
        self.ledger.load_consumed += before - self.cap.energy();

        // Harvest deposit with overvoltage clipping: the converter moves
        // power; charge arrives at the capacitor's own voltage.
        let dq = power_intake(input, self.cap.voltage(), dt);
        let before = self.cap.energy();
        let clipped = self.cap.deposit(dq / dt, dt);
        let delivered = self.cap.energy() - before;
        self.ledger.delivered += delivered;
        self.ledger.clipped += clipped;
        self.ledger.harvested += delivered + clipped;
    }

    /// Capacitance fade and leakage growth drift the *actual* spec in
    /// place; the `believed` copy the closed forms use stays at the
    /// datasheet values, which is the whole fault model. The fade's
    /// stored-energy loss (voltage-preserving, `½·ΔC·V²`) is booked as
    /// leakage so the fine-stepped reference kernel's full-run ledger
    /// still balances exactly.
    fn apply_fault(&mut self, kind: react_circuit::FaultKind) -> bool {
        match kind {
            react_circuit::FaultKind::CapacitanceFade { factor } => {
                self.ledger.leaked += self.cap.fade_capacitance(factor);
                self.faulted = true;
                true
            }
            react_circuit::FaultKind::LeakageGrowth { factor } => {
                self.cap.grow_leakage(factor);
                self.faulted = true;
                true
            }
            _ => false,
        }
    }

    /// Actual leakage power at the present operating point (`I(V)·V`
    /// from the live — possibly drifted — spec), for the auditor's
    /// shadow check against the believed leakage booking.
    fn leakage_probe(&self) -> Option<Watts> {
        let v = self.cap.voltage();
        let i = self.cap.spec().leakage.current_at(v);
        Some(Watts::new(i.get() * v.get().max(0.0)))
    }

    fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert!(
            (StaticBuffer::static_770uf()
                .equivalent_capacitance()
                .to_micro()
                - 770.0)
                .abs()
                < 1e-9
        );
        assert!(
            (StaticBuffer::static_10mf()
                .equivalent_capacitance()
                .to_milli()
                - 10.0)
                .abs()
                < 1e-9
        );
        assert!(
            (StaticBuffer::static_17mf()
                .equivalent_capacitance()
                .to_milli()
                - 17.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn charges_under_input() {
        let mut b = StaticBuffer::static_770uf();
        // 2 mW for 1 s = 2 mJ stored → V = sqrt(2·2m/770µ) ≈ 2.28 V.
        for _ in 0..1000 {
            b.step(
                Watts::from_milli(2.0),
                Amps::ZERO,
                Seconds::from_milli(1.0),
                false,
            );
        }
        let expected = (2.0 * 2e-3 / 770e-6_f64).sqrt();
        assert!(
            (b.rail_voltage().get() - expected).abs() < 0.05,
            "v = {}",
            b.rail_voltage().get()
        );
        assert!(b.ledger().delivered.get() > 0.0);
        assert_eq!(b.ledger().clipped, Joules::ZERO);
    }

    #[test]
    fn clips_at_rail_clamp() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.6));
        b.step(
            Watts::from_milli(15.0),
            Amps::ZERO,
            Seconds::from_milli(1.0),
            false,
        );
        assert!((b.rail_voltage().get() - 3.6).abs() < 1e-9);
        assert!(b.ledger().clipped.get() > 0.0);
    }

    #[test]
    fn load_discharges_and_is_booked() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.3));
        let e0 = b.stored_energy();
        for _ in 0..100 {
            b.step(
                Watts::ZERO,
                Amps::from_milli(1.5),
                Seconds::from_milli(1.0),
                true,
            );
        }
        assert!(b.rail_voltage().get() < 3.3);
        let spent = e0 - b.stored_energy();
        let booked = b.ledger().load_consumed + b.ledger().leaked;
        assert!((spent.get() - booked.get()).abs() < 1e-9);
    }

    #[test]
    fn usable_energy_formula() {
        let mut b = StaticBuffer::static_10mf();
        b.set_voltage(Volts::new(3.3));
        let usable = b.usable_energy_above(Volts::new(1.8));
        let expected = 0.5 * 10e-3 * (3.3 * 3.3 - 1.8 * 1.8);
        assert!((usable.get() - expected).abs() < 1e-9);
        assert_eq!(b.usable_energy_above(Volts::new(3.4)), Joules::ZERO);
    }

    #[test]
    fn no_longevity_api() {
        let b = StaticBuffer::static_770uf();
        assert!(!b.supports_longevity());
        assert_eq!(b.capacitance_level(), 0);
    }

    /// Runs the default (reference) fine-step idle loop on a clone.
    fn reference_idle(
        b: &StaticBuffer,
        input_mw: f64,
        duration_s: f64,
        v_stop: f64,
    ) -> (StaticBuffer, f64) {
        let mut r = b.clone();
        let total = duration_s;
        let dt = 1e-3_f64;
        let mut elapsed = 0.0;
        while elapsed < total {
            if r.rail_voltage().get() >= v_stop {
                break;
            }
            let h = dt.min(total - elapsed);
            r.step(
                Watts::from_milli(input_mw),
                Amps::ZERO,
                Seconds::new(h),
                false,
            );
            elapsed += h;
        }
        (r, elapsed)
    }

    fn assert_analytic_matches(start_v: f64, input_mw: f64, duration_s: f64, v_stop: f64) {
        let mut b = StaticBuffer::static_10mf();
        b.set_voltage(Volts::new(start_v));
        let (reference, ref_elapsed) = reference_idle(&b, input_mw, duration_s, v_stop);
        let advanced = b.idle_advance(
            Watts::from_milli(input_mw),
            Seconds::new(duration_s),
            Volts::new(v_stop),
            Seconds::from_milli(1.0),
        );
        let scenario = format!("v0={start_v} p={input_mw}mW T={duration_s}s stop={v_stop}");
        assert!(
            (advanced.get() - ref_elapsed).abs() <= 0.01 * ref_elapsed.max(0.1),
            "{scenario}: advanced {advanced:?} vs reference {ref_elapsed}"
        );
        let (va, vr) = (b.rail_voltage().get(), reference.rail_voltage().get());
        assert!(
            (va - vr).abs() < 0.01 * vr.max(0.1),
            "{scenario}: v {va} vs {vr}"
        );
        let (la, lr) = (b.ledger().leaked.get(), reference.ledger().leaked.get());
        assert!(
            (la - lr).abs() <= 0.02 * lr.max(1e-9),
            "{scenario}: leaked {la} vs {lr}"
        );
        let (da, dr) = (
            b.ledger().delivered.get(),
            reference.ledger().delivered.get(),
        );
        assert!(
            (da - dr).abs() <= 0.01 * dr.max(1e-9),
            "{scenario}: delivered {da} vs {dr}"
        );
    }

    #[test]
    fn analytic_idle_matches_fine_steps_while_charging() {
        // Cold start through floor + constant-current + power-limited.
        assert_analytic_matches(0.0, 5.0, 120.0, 3.3);
        // Mid-band power-limited charge.
        assert_analytic_matches(2.0, 2.0, 120.0, 3.3);
        // Tiny power: equilibrium below the enable voltage (never starts).
        assert_analytic_matches(1.0, 0.001, 200.0, 3.3);
        // No power at all: pure leak decay.
        assert_analytic_matches(3.0, 0.0, 500.0, 3.3);
    }

    #[test]
    fn analytic_idle_clips_at_rail_clamp() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.55));
        // Stop voltage above the clamp: the buffer pins at 3.6 V and the
        // surplus burns in the protection circuit.
        let advanced = b.idle_advance(
            Watts::from_milli(10.0),
            Seconds::new(5.0),
            Volts::new(4.0),
            Seconds::from_milli(1.0),
        );
        assert!((advanced.get() - 5.0).abs() < 1e-9);
        assert!((b.rail_voltage().get() - 3.6).abs() < 1e-9);
        assert!(b.ledger().clipped.get() > 0.0);
        // Ledger still balances exactly.
        let resid = b
            .ledger()
            .conservation_residual(Joules::new(0.5 * 770e-6 * 3.55 * 3.55), b.stored_energy());
        assert!(resid.get().abs() < 1e-9, "residual {resid:?}");
    }

    #[test]
    fn analytic_idle_crossing_lands_on_step_grid() {
        let mut b = StaticBuffer::static_770uf();
        let advanced = b.idle_advance(
            Watts::from_milli(10.0),
            Seconds::new(30.0),
            Volts::new(3.3),
            Seconds::from_milli(1.0),
        );
        // Crossed well before the horizon, on a whole millisecond.
        assert!(advanced.get() < 30.0);
        let steps = advanced.get() / 1e-3;
        assert!((steps - steps.round()).abs() < 1e-6, "steps {steps}");
        assert!(b.rail_voltage().get() >= 3.3 - 1e-9);
    }

    #[test]
    fn conservation_residual_is_tiny() {
        let mut b = StaticBuffer::static_17mf();
        let initial = b.stored_energy();
        for i in 0..10_000 {
            let input = if i % 3 == 0 {
                Watts::from_milli(5.0)
            } else {
                Watts::ZERO
            };
            let load = if i % 2 == 0 {
                Amps::from_milli(1.5)
            } else {
                Amps::ZERO
            };
            b.step(input, load, Seconds::from_milli(1.0), true);
        }
        let resid = b.ledger().conservation_residual(initial, b.stored_energy());
        assert!(
            resid.get().abs() < 1e-3 * b.ledger().harvested.get().max(1e-9),
            "residual {} J",
            resid.get()
        );
    }
}
