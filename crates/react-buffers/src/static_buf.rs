//! Fixed-capacity buffers: the paper's baseline designs (§4.1).

use react_circuit::{Capacitor, CapacitorSpec, EnergyLedger};
use react_units::{Amps, Farads, Joules, Seconds, Volts, Watts};

use crate::{power_intake, EnergyBuffer};

/// A single static buffer capacitor with an overvoltage clamp.
#[derive(Clone, Debug)]
pub struct StaticBuffer {
    name: String,
    cap: Capacitor,
    ledger: EnergyLedger,
}

/// The rail clamp every tested configuration shares (Fig. 6 shows the
/// buffers clipping at 3.6 V).
pub const RAIL_CLAMP: Volts = Volts::new(3.6);

impl StaticBuffer {
    /// Creates a static buffer from a capacitor spec, clamped at the
    /// shared rail voltage.
    pub fn new(name: impl Into<String>, spec: CapacitorSpec) -> Self {
        Self {
            name: name.into(),
            cap: Capacitor::new(spec.with_max_voltage(RAIL_CLAMP)),
            ledger: EnergyLedger::new(),
        }
    }

    /// The paper's 770 µF baseline (ceramic-class leakage).
    pub fn static_770uf() -> Self {
        Self::new("770 µF", CapacitorSpec::ceramic_scaled(Farads::from_micro(770.0)))
    }

    /// The paper's 10 mF baseline (supercapacitor-class leakage).
    pub fn static_10mf() -> Self {
        Self::new("10 mF", CapacitorSpec::supercap_scaled(Farads::from_milli(10.0)))
    }

    /// The paper's 17 mF baseline, matching REACT's full capacity.
    pub fn static_17mf() -> Self {
        Self::new("17 mF", CapacitorSpec::supercap_scaled(Farads::from_milli(17.0)))
    }

    /// Force the stored voltage (test setup).
    pub fn set_voltage(&mut self, v: Volts) {
        self.cap.set_voltage(v);
    }
}

impl EnergyBuffer for StaticBuffer {
    fn name(&self) -> &str {
        &self.name
    }

    fn rail_voltage(&self) -> Volts {
        self.cap.voltage()
    }

    fn equivalent_capacitance(&self) -> Farads {
        self.cap.capacitance()
    }

    fn stored_energy(&self) -> Joules {
        self.cap.energy()
    }

    fn usable_energy_above(&self, v_floor: Volts) -> Joules {
        let v = self.cap.voltage();
        if v <= v_floor {
            return Joules::ZERO;
        }
        self.cap.capacitance().energy_at(v) - self.cap.capacitance().energy_at(v_floor)
    }

    fn step(&mut self, input: Watts, load: Amps, dt: Seconds, _mcu_running: bool) {
        // Leakage.
        self.ledger.leaked += self.cap.leak(dt);

        // Load draw (energy booked exactly as the stored-energy drop).
        let before = self.cap.energy();
        self.cap.draw(load, dt);
        self.ledger.load_consumed += before - self.cap.energy();

        // Harvest deposit with overvoltage clipping: the converter moves
        // power; charge arrives at the capacitor's own voltage.
        let dq = power_intake(input, self.cap.voltage(), dt);
        let before = self.cap.energy();
        let clipped = self.cap.deposit(dq / dt, dt);
        let delivered = self.cap.energy() - before;
        self.ledger.delivered += delivered;
        self.ledger.clipped += clipped;
        self.ledger.harvested += delivered + clipped;
    }

    fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert!((StaticBuffer::static_770uf().equivalent_capacitance().to_micro() - 770.0).abs() < 1e-9);
        assert!((StaticBuffer::static_10mf().equivalent_capacitance().to_milli() - 10.0).abs() < 1e-9);
        assert!((StaticBuffer::static_17mf().equivalent_capacitance().to_milli() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn charges_under_input() {
        let mut b = StaticBuffer::static_770uf();
        // 2 mW for 1 s = 2 mJ stored → V = sqrt(2·2m/770µ) ≈ 2.28 V.
        for _ in 0..1000 {
            b.step(Watts::from_milli(2.0), Amps::ZERO, Seconds::from_milli(1.0), false);
        }
        let expected = (2.0 * 2e-3 / 770e-6_f64).sqrt();
        assert!(
            (b.rail_voltage().get() - expected).abs() < 0.05,
            "v = {}",
            b.rail_voltage().get()
        );
        assert!(b.ledger().delivered.get() > 0.0);
        assert_eq!(b.ledger().clipped, Joules::ZERO);
    }

    #[test]
    fn clips_at_rail_clamp() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.6));
        b.step(Watts::from_milli(15.0), Amps::ZERO, Seconds::from_milli(1.0), false);
        assert!((b.rail_voltage().get() - 3.6).abs() < 1e-9);
        assert!(b.ledger().clipped.get() > 0.0);
    }

    #[test]
    fn load_discharges_and_is_booked() {
        let mut b = StaticBuffer::static_770uf();
        b.set_voltage(Volts::new(3.3));
        let e0 = b.stored_energy();
        for _ in 0..100 {
            b.step(Watts::ZERO, Amps::from_milli(1.5), Seconds::from_milli(1.0), true);
        }
        assert!(b.rail_voltage().get() < 3.3);
        let spent = e0 - b.stored_energy();
        let booked = b.ledger().load_consumed + b.ledger().leaked;
        assert!((spent.get() - booked.get()).abs() < 1e-9);
    }

    #[test]
    fn usable_energy_formula() {
        let mut b = StaticBuffer::static_10mf();
        b.set_voltage(Volts::new(3.3));
        let usable = b.usable_energy_above(Volts::new(1.8));
        let expected = 0.5 * 10e-3 * (3.3 * 3.3 - 1.8 * 1.8);
        assert!((usable.get() - expected).abs() < 1e-9);
        assert_eq!(b.usable_energy_above(Volts::new(3.4)), Joules::ZERO);
    }

    #[test]
    fn no_longevity_api() {
        let b = StaticBuffer::static_770uf();
        assert!(!b.supports_longevity());
        assert_eq!(b.capacitance_level(), 0);
    }

    #[test]
    fn conservation_residual_is_tiny() {
        let mut b = StaticBuffer::static_17mf();
        let initial = b.stored_energy();
        for i in 0..10_000 {
            let input = if i % 3 == 0 { Watts::from_milli(5.0) } else { Watts::ZERO };
            let load = if i % 2 == 0 { Amps::from_milli(1.5) } else { Amps::ZERO };
            b.step(input, load, Seconds::from_milli(1.0), true);
        }
        let resid = b.ledger().conservation_residual(initial, b.stored_energy());
        assert!(
            resid.get().abs() < 1e-3 * b.ledger().harvested.get().max(1e-9),
            "residual {} J",
            resid.get()
        );
    }
}
