//! Diode conduction models.
//!
//! REACT's bank isolation (§3.3.2) relies on diodes on each bank's input
//! and output. Because *all* harvested current crosses two of them, the
//! paper uses active ideal-diode circuits (LM66100-class: a comparator
//! plus pass FET, ≈79 mΩ and no forward drop) instead of Schottky or PN
//! diodes. At 1 mA the ideal diode dissipates ~0.02 % of a Schottky's
//! loss — reproduced in this module's tests.

use react_units::{Amps, Joules, Ohms, Seconds, Volts, Watts};

/// Which physical diode is modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiodeKind {
    /// Active ideal-diode circuit (comparator + pass transistor).
    Ideal,
    /// Schottky barrier diode.
    Schottky,
    /// Silicon PN junction.
    Pn,
}

/// A unidirectional conduction element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diode {
    kind: DiodeKind,
    /// Forward threshold voltage; conduction requires `ΔV > v_f`.
    v_forward: Volts,
    /// On-resistance while conducting.
    r_on: Ohms,
}

/// Result of pushing current through a diode for one step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiodeTransfer {
    /// Charge delivered to the output side.
    pub charge: react_units::Coulombs,
    /// Energy dissipated in the diode (threshold + resistive).
    pub dissipated: Joules,
}

impl Diode {
    /// LM66100-class active ideal diode: no forward drop, 79 mΩ.
    pub fn ideal() -> Self {
        Self {
            kind: DiodeKind::Ideal,
            v_forward: Volts::ZERO,
            r_on: Ohms::new(0.079),
        }
    }

    /// Small-signal Schottky (BAT54-class): ≈0.30 V drop at 1 mA.
    pub fn schottky() -> Self {
        Self {
            kind: DiodeKind::Schottky,
            v_forward: Volts::new(0.30),
            r_on: Ohms::new(1.0),
        }
    }

    /// Silicon PN junction: ≈0.65 V drop.
    pub fn pn() -> Self {
        Self {
            kind: DiodeKind::Pn,
            v_forward: Volts::new(0.65),
            r_on: Ohms::new(1.0),
        }
    }

    /// The modelled device family.
    pub fn kind(&self) -> DiodeKind {
        self.kind
    }

    /// Forward threshold voltage.
    pub fn v_forward(&self) -> Volts {
        self.v_forward
    }

    /// On-resistance while conducting.
    pub fn r_on(&self) -> Ohms {
        self.r_on
    }

    /// `true` if the diode conducts for an anode-to-cathode difference
    /// `dv`.
    #[inline]
    pub fn conducts(&self, dv: Volts) -> bool {
        dv > self.v_forward
    }

    /// Power dissipated when carrying `i` in forward conduction:
    /// `P = v_f·I + I²·R_on`.
    #[inline]
    pub fn conduction_loss(&self, i: Amps) -> Watts {
        let i = i.get().max(0.0);
        Watts::new(self.v_forward.get() * i + i * i * self.r_on.get())
    }

    /// Carries current `i` for `dt` with the given anode-cathode voltage;
    /// returns the charge delivered and the loss. If the diode does not
    /// conduct (reverse biased or below threshold), nothing flows.
    pub fn carry(&self, i: Amps, dv: Volts, dt: Seconds) -> DiodeTransfer {
        if !self.conducts(dv) || i.get() <= 0.0 {
            return DiodeTransfer::default();
        }
        DiodeTransfer {
            charge: i * dt,
            dissipated: self.conduction_loss(i) * dt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_diode_has_no_threshold() {
        let d = Diode::ideal();
        assert!(d.conducts(Volts::new(0.001)));
        assert!(!d.conducts(Volts::ZERO));
        assert!(!d.conducts(Volts::new(-1.0)));
    }

    #[test]
    fn schottky_threshold_blocks_small_dv() {
        let d = Diode::schottky();
        assert!(!d.conducts(Volts::new(0.2)));
        assert!(d.conducts(Volts::new(0.4)));
    }

    #[test]
    fn paper_efficiency_claim_ideal_vs_schottky() {
        // §3.3.2: the ideal-diode circuit dissipates ≈0.02 % of a typical
        // Schottky's loss at 1 mA supply current.
        let i = Amps::from_milli(1.0);
        let p_ideal = Diode::ideal().conduction_loss(i);
        let p_schottky = Diode::schottky().conduction_loss(i);
        let ratio = p_ideal.get() / p_schottky.get();
        assert!(
            ratio > 1e-4 && ratio < 5e-4,
            "ideal/schottky loss ratio {ratio} outside the paper's ~0.02% claim"
        );
    }

    #[test]
    fn conduction_loss_is_quadratic_plus_linear() {
        let d = Diode::pn();
        let p = d.conduction_loss(Amps::from_milli(2.0));
        let expected = 0.65 * 2e-3 + 4e-6 * 1.0;
        assert!((p.get() - expected).abs() < 1e-12);
    }

    #[test]
    fn reverse_current_dissipates_nothing() {
        let d = Diode::ideal();
        assert_eq!(d.conduction_loss(Amps::new(-1.0)), Watts::ZERO);
        let t = d.carry(Amps::new(1.0), Volts::new(-0.5), Seconds::new(1.0));
        assert_eq!(t, DiodeTransfer::default());
    }

    #[test]
    fn carry_delivers_charge_and_loss() {
        let d = Diode::ideal();
        let t = d.carry(Amps::from_milli(1.0), Volts::new(0.1), Seconds::new(2.0));
        assert!((t.charge.get() - 2e-3).abs() < 1e-12);
        assert!((t.dissipated.get() - 0.079e-6 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn kinds_are_distinct() {
        assert_eq!(Diode::ideal().kind(), DiodeKind::Ideal);
        assert_eq!(Diode::schottky().kind(), DiodeKind::Schottky);
        assert_eq!(Diode::pn().kind(), DiodeKind::Pn);
    }
}
