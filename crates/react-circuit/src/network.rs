//! Morphy-style fully-interconnected capacitor network (Fig. 4, §3.3.1).
//!
//! Morphy \[49\] wires a set of equal capacitors through a switch fabric so
//! software can realize many equivalent capacitances: any *partition* of
//! the capacitors into series chains, with the chains placed in parallel.
//! Unlike REACT's isolated banks, reconfiguration connects chains at
//! different voltages in parallel, so charge surges through the switches
//! and energy is dissipated — the paper's Fig. 5 waste, reproduced here
//! exactly (25 % for the 4-capacitor example, 56.25 % for the 8-capacitor
//! one; see this module's tests).

use std::fmt;

use react_units::{Amps, Coulombs, Farads, Joules, Seconds, Volts};

use crate::{Capacitor, CapacitorSpec, EqualizeOutcome};

/// A partition of `n` capacitors into series chains placed in parallel.
///
/// `chains[j]` is the length of chain `j`; lengths must sum to the number
/// of capacitors in the network.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Partition {
    chains: Vec<usize>,
}

/// Error building a [`Partition`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A chain had length zero.
    EmptyChain,
    /// No chains at all.
    NoChains,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyChain => write!(f, "partition contains an empty chain"),
            Self::NoChains => write!(f, "partition contains no chains"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Builds a partition from chain lengths.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if `chains` is empty or contains a zero
    /// length.
    pub fn new(chains: Vec<usize>) -> Result<Self, PartitionError> {
        if chains.is_empty() {
            return Err(PartitionError::NoChains);
        }
        if chains.contains(&0) {
            return Err(PartitionError::EmptyChain);
        }
        Ok(Self { chains })
    }

    /// All capacitors in one series chain.
    pub fn all_series(n: usize) -> Self {
        Self::new(vec![n]).expect("n > 0")
    }

    /// All capacitors in parallel.
    pub fn all_parallel(n: usize) -> Self {
        Self::new(vec![1; n]).expect("n > 0")
    }

    /// Chain lengths.
    pub fn chains(&self) -> &[usize] {
        &self.chains
    }

    /// Number of capacitors covered.
    pub fn capacitor_count(&self) -> usize {
        self.chains.iter().sum()
    }

    /// Equivalent capacitance for unit capacitance `c`:
    /// `Σ_j c / L_j` (chains in parallel, each chain `c/L`).
    pub fn equivalent_capacitance(&self, c: Farads) -> Farads {
        Farads::new(self.chains.iter().map(|&l| c.get() / l as f64).sum())
    }
}

/// The live network: per-capacitor charge plus the active partition.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainNetwork {
    caps: Vec<Capacitor>,
    partition: Partition,
}

impl ChainNetwork {
    /// Creates a network of `n` empty unit capacitors in the given
    /// starting partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly `n` capacitors.
    pub fn new(unit: CapacitorSpec, n: usize, start: Partition) -> Self {
        assert_eq!(
            start.capacitor_count(),
            n,
            "partition must cover all {n} capacitors"
        );
        Self {
            caps: vec![Capacitor::new(unit); n],
            partition: start,
        }
    }

    /// Number of capacitors.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// `true` if the network has no capacitors.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// The active partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Equivalent capacitance at the terminals.
    pub fn terminal_capacitance(&self) -> Farads {
        self.partition
            .equivalent_capacitance(self.caps[0].spec().capacitance)
    }

    /// Terminal voltage: the (common) chain voltage. With chains placed in
    /// parallel, all chain voltages are equal after reconfiguration; we
    /// report the capacitance-weighted mean to stay well-defined mid-step.
    pub fn terminal_voltage(&self) -> Volts {
        let c_unit = self.caps[0].spec().capacitance;
        let mut num = 0.0;
        let mut den = 0.0;
        for (start, len) in self.chain_ranges() {
            let chain_v: f64 = self.caps[start..start + len]
                .iter()
                .map(|c| c.voltage().get())
                .sum();
            let chain_c = c_unit.get() / len as f64;
            num += chain_c * chain_v;
            den += chain_c;
        }
        Volts::new(num / den)
    }

    /// Total stored energy across all capacitors.
    pub fn stored_energy(&self) -> Joules {
        self.caps.iter().map(|c| c.energy()).sum()
    }

    /// Per-capacitor voltages (diagnostics, tests).
    pub fn unit_voltages(&self) -> Vec<Volts> {
        self.caps.iter().map(|c| c.voltage()).collect()
    }

    /// The unit capacitor spec shared by every capacitor.
    pub fn unit_spec(&self) -> &CapacitorSpec {
        self.caps[0].spec()
    }

    /// Chain terminal voltages in partition order (the fast-path guard
    /// checks these agree before coarse-integrating).
    pub fn chain_voltages(&self) -> Vec<Volts> {
        self.chain_ranges()
            .map(|(start, len)| {
                Volts::new(
                    self.caps[start..start + len]
                        .iter()
                        .map(|c| c.voltage().get())
                        .sum(),
                )
            })
            .collect()
    }

    /// Sum over capacitors of the squared deviation from their chain
    /// mean voltage — the within-chain imbalance whose independent decay
    /// the idle fast path tracks for exact leakage booking.
    pub fn chain_imbalance(&self) -> f64 {
        let ranges: Vec<(usize, usize)> = self.chain_ranges().collect();
        let mut sum = 0.0;
        for (start, len) in ranges {
            let mean = self.caps[start..start + len]
                .iter()
                .map(|c| c.voltage().get())
                .sum::<f64>()
                / len as f64;
            for cap in &self.caps[start..start + len] {
                let w = cap.voltage().get() - mean;
                sum += w * w;
            }
        }
        sum
    }

    /// Applies a closed-form idle solution: every chain's terminal lands
    /// on `v_end` while within-chain imbalance (each capacitor's offset
    /// from its chain mean) decays by `decay = e^{−(g/C)·T}`. Only valid
    /// when the chains share a common terminal voltage — the idle-phase
    /// invariant the fast path checks with [`chain_voltages`].
    ///
    /// [`chain_voltages`]: Self::chain_voltages
    pub fn apply_idle_solution(&mut self, v_end: Volts, decay: f64) {
        let ranges: Vec<(usize, usize)> = self.chain_ranges().collect();
        for (start, len) in ranges {
            let mean0 = self.caps[start..start + len]
                .iter()
                .map(|c| c.voltage().get())
                .sum::<f64>()
                / len as f64;
            let mean1 = v_end.get() / len as f64;
            for cap in &mut self.caps[start..start + len] {
                let w = cap.voltage().get() - mean0;
                cap.set_voltage(Volts::new(mean1 + w * decay));
            }
        }
    }

    /// Sets every chain's terminal voltage to `v`, balancing the
    /// capacitors within each chain (test setup).
    pub fn set_chain_terminals(&mut self, v: Volts) {
        let ranges: Vec<(usize, usize)> = self.chain_ranges().collect();
        for (start, len) in ranges {
            let unit_v = Volts::new(v.get() / len as f64);
            for cap in &mut self.caps[start..start + len] {
                cap.set_voltage(unit_v);
            }
        }
    }

    /// Forces every capacitor to voltage `v` (test setup).
    pub fn set_all_voltages(&mut self, v: Volts) {
        for cap in &mut self.caps {
            cap.set_voltage(v);
        }
    }

    fn chain_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.partition.chains().iter().scan(0usize, |acc, &len| {
            let start = *acc;
            *acc += len;
            Some((start, len))
        })
    }

    /// Reconfigures to a new partition. Capacitor assignment is by index:
    /// the first `L₀` capacitors form chain 0, and so on. After the
    /// switches settle, the chains — now in parallel — equalize their
    /// terminal voltages through the fabric, dissipating energy.
    ///
    /// Returns the equalization outcome (dissipated energy is the
    /// Fig. 5 switching waste).
    ///
    /// # Panics
    ///
    /// Panics if the new partition does not cover every capacitor.
    pub fn reconfigure(&mut self, new: Partition) -> EqualizeOutcome {
        assert_eq!(
            new.capacitor_count(),
            self.caps.len(),
            "partition must cover all capacitors"
        );
        self.partition = new;
        self.equalize_chains()
    }

    /// Equalizes chain terminal voltages (they are wired in parallel, so
    /// current flows through the switch fabric until they agree — the
    /// continuous cost of holding an unbalanced network together).
    /// Charge moves between chains; within a chain every capacitor sees
    /// the same transferred charge.
    pub fn equalize(&mut self) -> EqualizeOutcome {
        self.equalize_chains()
    }

    fn equalize_chains(&mut self) -> EqualizeOutcome {
        let c_unit = self.caps[0].spec().capacitance.get();
        let e_before = self.stored_energy();

        let ranges: Vec<(usize, usize)> = self.chain_ranges().collect();
        // Chain equivalent capacitance and voltage.
        let mut num = 0.0;
        let mut den = 0.0;
        let mut chain_vs = Vec::with_capacity(ranges.len());
        for &(start, len) in &ranges {
            let v: f64 = self.caps[start..start + len]
                .iter()
                .map(|c| c.voltage().get())
                .sum();
            let c = c_unit / len as f64;
            chain_vs.push(v);
            num += c * v;
            den += c;
        }
        let v_star = num / den;

        let mut moved = 0.0;
        for (&(start, len), &v) in ranges.iter().zip(&chain_vs) {
            let c_chain = c_unit / len as f64;
            let dq = c_chain * (v_star - v);
            moved += dq.abs();
            for cap in &mut self.caps[start..start + len] {
                cap.shift_charge(Coulombs::new(dq));
            }
        }

        let e_after = self.stored_energy();
        EqualizeOutcome {
            final_voltage: Volts::new(v_star),
            dissipated: (e_before - e_after).max(Joules::ZERO),
            charge_moved: Coulombs::new(moved / 2.0),
        }
    }

    /// Deposits terminal charge `dq`, splitting across chains in
    /// proportion to chain capacitance (they share the terminal voltage).
    /// Returns clipped energy if any capacitor hits its ceiling.
    pub fn deposit_charge(&mut self, dq: Coulombs) -> Joules {
        let c_unit = self.caps[0].spec().capacitance.get();
        let c_total = self.terminal_capacitance().get();
        let mut clipped = Joules::ZERO;
        let ranges: Vec<(usize, usize)> = self.chain_ranges().collect();
        for (start, len) in ranges {
            let c_chain = c_unit / len as f64;
            let chain_dq = dq.get() * (c_chain / c_total);
            for cap in &mut self.caps[start..start + len] {
                let head = cap.charge_headroom().get();
                let store = chain_dq.min(head);
                cap.shift_charge(Coulombs::new(store));
                let excess = chain_dq - store;
                if excess > 0.0 {
                    clipped += Coulombs::new(excess) * cap.voltage();
                }
            }
        }
        clipped
    }

    /// Draws terminal charge; chains supply in proportion to their
    /// capacitance, so every chain's terminal voltage falls by the same
    /// `ΔV = dq / C_eq`. The draw is limited so no *chain* is driven
    /// below zero volts (individual capacitors inside an unbalanced
    /// series chain may legitimately swing through zero). Returns the
    /// charge delivered.
    pub fn draw_charge(&mut self, dq: Coulombs) -> Coulombs {
        if dq.get() <= 0.0 {
            return Coulombs::ZERO;
        }
        let c_unit = self.caps[0].spec().capacitance.get();
        let c_total = self.terminal_capacitance().get();
        let ranges: Vec<(usize, usize)> = self.chain_ranges().collect();
        // Requested uniform voltage drop across all (parallel) chains.
        let dv_req = dq.get() / c_total;
        let v_min = ranges
            .iter()
            .map(|&(start, len)| {
                self.caps[start..start + len]
                    .iter()
                    .map(|c| c.voltage().get())
                    .sum::<f64>()
            })
            .fold(f64::MAX, f64::min);
        let scale = if dv_req <= 0.0 {
            0.0
        } else {
            (v_min.max(0.0) / dv_req).min(1.0)
        };
        for &(start, len) in &ranges {
            let c_chain = c_unit / len as f64;
            let chain_dq = dq.get() * (c_chain / c_total) * scale;
            for cap in &mut self.caps[start..start + len] {
                cap.shift_charge(Coulombs::new(-chain_dq));
            }
        }
        Coulombs::new(dq.get() * scale)
    }

    /// Draws terminal current for `dt`; returns the charge delivered.
    pub fn draw(&mut self, current: Amps, dt: Seconds) -> Coulombs {
        self.draw_charge(current * dt)
    }

    /// One leakage step across all capacitors; returns energy lost.
    pub fn leak(&mut self, dt: Seconds) -> Joules {
        self.caps.iter_mut().map(|c| c.leak(dt)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_units::Farads;

    fn net(n: usize, start: Partition) -> ChainNetwork {
        let unit = CapacitorSpec::new(Farads::from_milli(2.0)).with_max_voltage(Volts::new(6.3));
        ChainNetwork::new(unit, n, start)
    }

    #[test]
    fn partition_validation() {
        assert!(Partition::new(vec![]).is_err());
        assert!(Partition::new(vec![2, 0, 1]).is_err());
        let p = Partition::new(vec![4, 4]).unwrap();
        assert_eq!(p.capacitor_count(), 8);
    }

    #[test]
    fn equivalent_capacitance_of_configs() {
        let c = Farads::from_milli(2.0);
        assert!(
            (Partition::all_series(8)
                .equivalent_capacitance(c)
                .to_micro()
                - 250.0)
                .abs()
                < 1e-9
        );
        assert!(
            (Partition::all_parallel(8)
                .equivalent_capacitance(c)
                .to_milli()
                - 16.0)
                .abs()
                < 1e-9
        );
        let p = Partition::new(vec![4, 4]).unwrap();
        assert!((p.equivalent_capacitance(c).to_milli() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure5_four_capacitor_loss_is_25_percent() {
        // Full series at terminal V → take one cap into parallel with the
        // 3-chain: E_new/E_old = 0.75 (§3.3.1).
        let mut n = net(4, Partition::all_series(4));
        n.set_all_voltages(Volts::new(1.0)); // terminal 4 V
        let e_old = n.stored_energy();
        let out = n.reconfigure(Partition::new(vec![3, 1]).unwrap());
        let e_new = n.stored_energy();
        assert!((e_new.get() / e_old.get() - 0.75).abs() < 1e-12);
        assert!((out.dissipated.get() - 0.25 * e_old.get()).abs() < 1e-12);
        // Final terminal voltage 3V/8 of the original 4 V terminal.
        assert!((out.final_voltage.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn figure5_eight_capacitor_loss_is_5625_percent() {
        // 8-parallel → 7-series-1-parallel wastes 56.25 % (§3.3.1).
        let mut n = net(8, Partition::all_parallel(8));
        n.set_all_voltages(Volts::new(1.0));
        let e_old = n.stored_energy();
        let out = n.reconfigure(Partition::new(vec![7, 1]).unwrap());
        let e_new = n.stored_energy();
        assert!((1.0 - e_new.get() / e_old.get() - 0.5625).abs() < 1e-12);
        assert!((out.dissipated.get() - 0.5625 * e_old.get()).abs() < 1e-12);
    }

    #[test]
    fn reconfigure_same_shape_equal_voltages_is_lossless() {
        let mut n = net(8, Partition::all_parallel(8));
        n.set_all_voltages(Volts::new(2.0));
        let out = n.reconfigure(Partition::all_parallel(8));
        assert!(out.dissipated.get() < 1e-15);
    }

    #[test]
    fn terminal_charge_conserved_during_equalization() {
        // Rewiring changes the terminal-charge representation, but the
        // equalization itself conserves Σ C_chain·V_chain: the common
        // voltage is the capacitance-weighted mean of chain voltages.
        let mut n = net(8, Partition::all_parallel(8));
        n.set_all_voltages(Volts::new(2.0));
        // New partition [4,2,2]: chain voltages 8 V, 4 V, 4 V with chain
        // capacitances 0.5 mF, 1 mF, 1 mF → V* = 12 mC / 2.5 mF = 4.8 V.
        let out = n.reconfigure(Partition::new(vec![4, 2, 2]).unwrap());
        assert!((out.final_voltage.get() - 4.8).abs() < 1e-12);
        assert!((n.terminal_voltage().get() - 4.8).abs() < 1e-12);
        // Terminal charge after equalization matches 2.5 mF × 4.8 V.
        let q_term = n.terminal_capacitance().get() * n.terminal_voltage().get();
        assert!((q_term - 12e-3).abs() < 1e-12);
        // Energy strictly decreased (chains were at different voltages).
        assert!(out.dissipated.get() > 0.0);
    }

    #[test]
    fn deposit_raises_terminal_voltage() {
        let mut n = net(4, Partition::new(vec![2, 2]).unwrap());
        // C_eq = 2 × (2mF/2) = 2 mF.
        let clipped = n.deposit_charge(Coulombs::from_milli(2.0));
        assert_eq!(clipped, Joules::ZERO);
        assert!((n.terminal_voltage().get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn draw_lowers_terminal_voltage_and_limits_at_zero() {
        let mut n = net(4, Partition::all_parallel(4));
        n.set_all_voltages(Volts::new(1.0));
        // 8 mC stored at 1 V on 8 mF.
        let got = n.draw_charge(Coulombs::from_milli(4.0));
        assert!((got.to_milli() - 4.0).abs() < 1e-9);
        assert!((n.terminal_voltage().get() - 0.5).abs() < 1e-9);
        let got2 = n.draw_charge(Coulombs::from_milli(100.0));
        assert!(got2.to_milli() <= 4.0 + 1e-9);
        assert!(n.terminal_voltage().get() >= -1e-12);
    }

    #[test]
    fn terminal_voltage_weighted_mean_mid_step() {
        let mut n = net(2, Partition::all_parallel(2));
        n.set_all_voltages(Volts::new(2.0));
        // Both parallel at 2 V → terminal 2 V.
        assert!((n.terminal_voltage().get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn leak_drains_network() {
        let unit = CapacitorSpec::electrolytic_2mf();
        let mut n = ChainNetwork::new(unit, 8, Partition::all_parallel(8));
        n.set_all_voltages(Volts::new(3.0));
        let lost = n.leak(Seconds::new(10.0));
        assert!(lost.get() > 0.0);
        assert!(n.terminal_voltage().get() < 3.0);
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn mismatched_partition_panics() {
        let mut n = net(4, Partition::all_parallel(4));
        n.reconfigure(Partition::all_parallel(5));
    }
}
