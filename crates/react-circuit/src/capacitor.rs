//! Single-capacitor model: charge storage, clamping, and leakage.

use react_units::{Amps, Coulombs, Farads, Joules, Seconds, Volts};

/// Leakage behaviour of a capacitor, taken from its datasheet.
///
/// Datasheets quote a leakage current at the rated voltage; at lower
/// voltages leakage falls roughly proportionally, so we model
/// `I_leak(V) = I_rated · V / V_rated`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakageSpec {
    /// Leakage current at the rated voltage.
    pub current_at_rated: Amps,
    /// The rated voltage the leakage figure was quoted at.
    pub rated_voltage: Volts,
}

impl LeakageSpec {
    /// A perfectly lossless capacitor (useful in analytic tests).
    pub const NONE: Self = Self {
        current_at_rated: Amps::ZERO,
        rated_voltage: Volts::new(1.0),
    };

    /// Leakage current at operating voltage `v`.
    #[inline]
    pub fn current_at(&self, v: Volts) -> Amps {
        if self.rated_voltage.get() <= 0.0 {
            return Amps::ZERO;
        }
        self.current_at_rated * (v.get().max(0.0) / self.rated_voltage.get())
    }
}

/// Static parameters of a capacitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacitorSpec {
    /// Nominal capacitance.
    pub capacitance: Farads,
    /// Absolute maximum voltage; charge above this is clipped (burned as
    /// heat by the overvoltage-protection circuit, §2.1.2).
    pub max_voltage: Volts,
    /// Leakage behaviour.
    pub leakage: LeakageSpec,
}

impl CapacitorSpec {
    /// Creates a spec with the given capacitance, a 6.3 V ceiling, and no
    /// leakage. Builder-style methods refine it.
    pub fn new(capacitance: Farads) -> Self {
        Self {
            capacitance,
            max_voltage: Volts::new(6.3),
            leakage: LeakageSpec::NONE,
        }
    }

    /// Sets the absolute maximum voltage.
    pub fn with_max_voltage(mut self, v: Volts) -> Self {
        self.max_voltage = v;
        self
    }

    /// Sets the leakage behaviour.
    pub fn with_leakage(mut self, leakage: LeakageSpec) -> Self {
        self.leakage = leakage;
        self
    }

    /// Murata GRM31-class 220 µF ceramic (Table 1 banks 0–4 of the paper
    /// are built from these). The datasheet *maximum* is 28 µA at 6.3 V;
    /// typical parts leak far less, and the paper's observed hold times
    /// require it, so we model 5 % of max (1.4 µA at 6.3 V).
    pub fn ceramic_220uf() -> Self {
        Self::new(Farads::from_micro(220.0)).with_leakage(LeakageSpec {
            current_at_rated: Amps::from_micro(1.4),
            rated_voltage: Volts::new(6.3),
        })
    }

    /// Murata/Kemet FM-class 5 mF supercapacitor: ≈0.15 µA at 5.5 V
    /// (Table 1 bank 5).
    pub fn supercap_5mf() -> Self {
        Self::new(Farads::from_milli(5.0))
            .with_max_voltage(Volts::new(5.5))
            .with_leakage(LeakageSpec {
                current_at_rated: Amps::from_micro(0.15),
                rated_voltage: Volts::new(5.5),
            })
    }

    /// Nichicon KL-class 2 mF aluminium electrolytic (the Morphy
    /// implementation in §4.1 uses eight of these). Datasheet max is
    /// 25.2 µA at 6.3 V; we model 20 % of max — electrolytics leak more
    /// than ceramics, preserving the paper's "slightly lower rating than
    /// REACT's parts, higher typical leakage" relationship.
    pub fn electrolytic_2mf() -> Self {
        Self::new(Farads::from_milli(2.0)).with_leakage(LeakageSpec {
            current_at_rated: Amps::from_micro(5.0),
            rated_voltage: Volts::new(6.3),
        })
    }

    /// A supercapacitor of arbitrary size with leakage scaled from the
    /// 5 mF FM-series part (0.15 µA at 5.5 V per 5 mF) — bulk static
    /// buffers (10 mF, 17 mF) are built from these.
    pub fn supercap_scaled(capacitance: Farads) -> Self {
        let scale = capacitance.get() / 5e-3;
        Self::new(capacitance)
            .with_max_voltage(Volts::new(5.5))
            .with_leakage(LeakageSpec {
                current_at_rated: Amps::from_micro(0.15 * scale),
                rated_voltage: Volts::new(5.5),
            })
    }

    /// A ceramic-family capacitor of arbitrary size with leakage scaled
    /// proportionally to capacitance relative to the 220 µF part.
    pub fn ceramic_scaled(capacitance: Farads) -> Self {
        let base = Self::ceramic_220uf();
        let scale = capacitance.get() / base.capacitance.get();
        Self::new(capacitance).with_leakage(LeakageSpec {
            current_at_rated: base.leakage.current_at_rated * scale,
            rated_voltage: base.leakage.rated_voltage,
        })
    }
}

/// A capacitor holding charge.
///
/// All mutation is through charge-conserving operations that report any
/// energy clipped or leaked, so callers can keep an [`EnergyLedger`]
/// balanced.
///
/// [`EnergyLedger`]: crate::EnergyLedger
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Capacitor {
    spec: CapacitorSpec,
    charge: Coulombs,
}

impl Capacitor {
    /// Creates an empty (0 V) capacitor.
    pub fn new(spec: CapacitorSpec) -> Self {
        Self {
            spec,
            charge: Coulombs::ZERO,
        }
    }

    /// Creates a capacitor pre-charged to `v`.
    pub fn with_voltage(spec: CapacitorSpec, v: Volts) -> Self {
        let mut cap = Self::new(spec);
        cap.set_voltage(v);
        cap
    }

    /// The static parameters.
    #[inline]
    pub fn spec(&self) -> &CapacitorSpec {
        &self.spec
    }

    /// Nominal capacitance.
    #[inline]
    pub fn capacitance(&self) -> Farads {
        self.spec.capacitance
    }

    /// Present terminal voltage, `V = Q / C`.
    #[inline]
    pub fn voltage(&self) -> Volts {
        self.charge / self.spec.capacitance
    }

    /// Present stored charge.
    #[inline]
    pub fn charge(&self) -> Coulombs {
        self.charge
    }

    /// Present stored energy, `E = Q² / 2C`.
    #[inline]
    pub fn energy(&self) -> Joules {
        let q = self.charge.get();
        Joules::new(0.5 * q * q / self.spec.capacitance.get())
    }

    /// Forces the voltage (test setup / initial conditions).
    pub fn set_voltage(&mut self, v: Volts) {
        self.charge = self.spec.capacitance * v;
    }

    /// Adds `delta` charge without any limit checks. Used by network code
    /// that has already accounted for limits; may drive the charge
    /// negative (reverse-biased capacitor in an unbalanced chain).
    #[inline]
    pub fn shift_charge(&mut self, delta: Coulombs) {
        self.charge += delta;
    }

    /// Deposits charge from a current source, clamping at the maximum
    /// voltage. Returns the energy *clipped* — charge that arrived while
    /// the capacitor was full is burned by the protection circuit at the
    /// max voltage.
    pub fn deposit(&mut self, current: Amps, dt: Seconds) -> Joules {
        let incoming = current * dt;
        let room = self.spec.capacitance * self.spec.max_voltage - self.charge;
        if incoming <= room {
            self.charge += incoming;
            Joules::ZERO
        } else {
            let excess = incoming - room.max(Coulombs::ZERO);
            self.charge = self.spec.capacitance * self.spec.max_voltage;
            // Excess charge is dissipated at the clamp voltage.
            excess * self.spec.max_voltage
        }
    }

    /// Draws `current` for `dt`, but never below 0 V. Returns the charge
    /// actually drawn (callers check it against the request to detect a
    /// collapsed supply).
    pub fn draw(&mut self, current: Amps, dt: Seconds) -> Coulombs {
        let requested = current * dt;
        let drawn = requested.min(self.charge).max(Coulombs::ZERO);
        self.charge -= drawn;
        drawn
    }

    /// Applies one timestep of leakage; returns the energy lost.
    pub fn leak(&mut self, dt: Seconds) -> Joules {
        let v = self.voltage();
        if v.get() <= 0.0 {
            return Joules::ZERO;
        }
        let i = self.spec.leakage.current_at(v);
        let before = self.energy();
        let q = (i * dt).min(self.charge);
        self.charge -= q;
        before - self.energy()
    }

    /// Capacitance-fade fault: scales the capacitance in place while
    /// preserving the terminal voltage (the dielectric degrades; the
    /// plates stay at the same potential). The stored energy drops by
    /// `½·ΔC·V²`; the loss is returned so callers can book it to an
    /// [`EnergyLedger`](crate::EnergyLedger) — a charge-preserving fade
    /// would *create* energy (`E = Q²/2C`), which no fault does.
    pub fn fade_capacitance(&mut self, factor: f64) -> Joules {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacitance fade factor must be positive and finite"
        );
        let v = self.voltage();
        let before = self.energy();
        self.spec.capacitance = Farads::new(self.spec.capacitance.get() * factor);
        self.charge = self.spec.capacitance * v;
        (before - self.energy()).max(Joules::ZERO)
    }

    /// Leakage-growth fault: scales the datasheet leakage current in
    /// place (temperature/aging drift).
    pub fn grow_leakage(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "leakage growth factor must be positive and finite"
        );
        self.spec.leakage.current_at_rated =
            Amps::new(self.spec.leakage.current_at_rated.get() * factor);
    }

    /// Headroom to the max voltage expressed as charge.
    #[inline]
    pub fn charge_headroom(&self) -> Coulombs {
        (self.spec.capacitance * self.spec.max_voltage - self.charge).max(Coulombs::ZERO)
    }

    /// `true` if at (or numerically above) the maximum voltage.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.charge_headroom().get() <= 1e-15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(c_uf: f64) -> Capacitor {
        Capacitor::new(
            CapacitorSpec::new(Farads::from_micro(c_uf)).with_max_voltage(Volts::new(3.6)),
        )
    }

    #[test]
    fn voltage_charge_energy_relations() {
        let mut cap = lossless(1000.0);
        cap.set_voltage(Volts::new(2.0));
        assert!((cap.charge().get() - 2e-3).abs() < 1e-12);
        assert!((cap.energy().get() - 0.5 * 1e-3 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn deposit_without_clipping() {
        let mut cap = lossless(1000.0);
        let clipped = cap.deposit(Amps::from_milli(1.0), Seconds::new(1.0));
        assert_eq!(clipped, Joules::ZERO);
        assert!((cap.voltage().get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deposit_clips_at_max_voltage() {
        let mut cap = lossless(1000.0);
        cap.set_voltage(Volts::new(3.5));
        // 1 mA for 1 s = 1 mC; room is 0.1 mC.
        let clipped = cap.deposit(Amps::from_milli(1.0), Seconds::new(1.0));
        assert!((cap.voltage().get() - 3.6).abs() < 1e-12);
        let expected = Coulombs::new(0.9e-3) * Volts::new(3.6);
        assert!((clipped.get() - expected.get()).abs() < 1e-9);
        assert!(cap.is_full());
    }

    #[test]
    fn draw_stops_at_zero() {
        let mut cap = lossless(1000.0);
        cap.set_voltage(Volts::new(1.0));
        let drawn = cap.draw(Amps::new(1.0), Seconds::new(1.0));
        assert!((drawn.get() - 1e-3).abs() < 1e-12);
        assert_eq!(cap.voltage(), Volts::ZERO);
        assert_eq!(cap.draw(Amps::new(1.0), Seconds::new(1.0)), Coulombs::ZERO);
    }

    #[test]
    fn leak_scales_with_voltage() {
        let spec = CapacitorSpec::new(Farads::from_milli(1.0)).with_leakage(LeakageSpec {
            current_at_rated: Amps::from_micro(28.0),
            rated_voltage: Volts::new(6.3),
        });
        let mut hi = Capacitor::with_voltage(spec, Volts::new(3.0));
        let mut lo = Capacitor::with_voltage(spec, Volts::new(1.5));
        let e_hi = hi.leak(Seconds::new(1.0));
        let e_lo = lo.leak(Seconds::new(1.0));
        assert!(e_hi > e_lo);
        // Leakage power ≈ I(V)·V so quadrupling between half and full voltage.
        assert!((e_hi.get() / e_lo.get() - 4.0).abs() < 0.05);
    }

    #[test]
    fn leak_never_negative_charge() {
        let spec = CapacitorSpec::new(Farads::from_micro(1.0)).with_leakage(LeakageSpec {
            current_at_rated: Amps::new(1.0), // absurdly leaky
            rated_voltage: Volts::new(1.0),
        });
        let mut cap = Capacitor::with_voltage(spec, Volts::new(1.0));
        cap.leak(Seconds::new(100.0));
        assert!(cap.charge().get() >= 0.0);
    }

    #[test]
    fn datasheet_specs() {
        let ceramic = CapacitorSpec::ceramic_220uf();
        assert!((ceramic.capacitance.to_micro() - 220.0).abs() < 1e-9);
        let at_half = ceramic.leakage.current_at(Volts::new(3.15));
        assert!((at_half.to_micro() - 0.7).abs() < 1e-9);

        let supercap = CapacitorSpec::supercap_5mf();
        assert!((supercap.capacitance.to_milli() - 5.0).abs() < 1e-9);
        assert!(supercap.leakage.current_at_rated < ceramic.leakage.current_at_rated);

        let lytic = CapacitorSpec::electrolytic_2mf();
        assert!((lytic.capacitance.to_milli() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ceramic_scaled_leakage_proportional() {
        let double = CapacitorSpec::ceramic_scaled(Farads::from_micro(440.0));
        assert!((double.leakage.current_at_rated.to_micro() - 2.8).abs() < 1e-9);
        // Supercap scaling: 10 mF = 2× the 5 mF part's leakage.
        let sc = CapacitorSpec::supercap_scaled(Farads::from_milli(10.0));
        assert!((sc.leakage.current_at_rated.to_micro() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn fade_preserves_voltage_and_returns_the_energy_lost() {
        let mut cap = lossless(1000.0);
        cap.set_voltage(Volts::new(3.0));
        let before = cap.energy();
        let lost = cap.fade_capacitance(0.7);
        assert!((cap.voltage().get() - 3.0).abs() < 1e-12);
        assert!((cap.capacitance().to_micro() - 700.0).abs() < 1e-9);
        // E drops by ½·ΔC·V² = ½·0.3 mF·9 V².
        assert!((lost.get() - 0.5 * 0.3e-3 * 9.0).abs() < 1e-12);
        assert!((before.get() - cap.energy().get() - lost.get()).abs() < 1e-15);
    }

    #[test]
    fn leakage_growth_scales_the_datasheet_current() {
        let spec = CapacitorSpec::new(Farads::from_milli(1.0)).with_leakage(LeakageSpec {
            current_at_rated: Amps::from_micro(2.0),
            rated_voltage: Volts::new(6.3),
        });
        let mut cap = Capacitor::with_voltage(spec, Volts::new(3.0));
        cap.grow_leakage(5.0);
        assert!((cap.spec().leakage.current_at_rated.to_micro() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_none_is_lossless() {
        assert_eq!(LeakageSpec::NONE.current_at(Volts::new(5.0)), Amps::ZERO);
    }

    #[test]
    fn leakage_zero_rated_voltage_is_safe() {
        let spec = LeakageSpec {
            current_at_rated: Amps::new(1.0),
            rated_voltage: Volts::ZERO,
        };
        assert_eq!(spec.current_at(Volts::new(3.0)), Amps::ZERO);
    }
}
