//! End-to-end energy accounting.
//!
//! Every joule that enters or leaves a buffer during a simulation is
//! recorded here, so experiments can report *where the energy went* —
//! the paper's efficiency arguments (§2.1.2, §5.5) are claims about this
//! breakdown — and so property tests can assert conservation.

use react_units::Joules;

/// Per-run energy accounting. All fields are cumulative joules.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyLedger {
    /// Energy made available by the harvester frontend (converter output).
    pub harvested: Joules,
    /// Energy accepted into the buffer capacitors.
    pub delivered: Joules,
    /// Energy burned by overvoltage protection when the buffer was full.
    pub clipped: Joules,
    /// Energy lost to capacitor leakage.
    pub leaked: Joules,
    /// Energy dissipated in isolation/ideal diodes.
    pub diode_loss: Joules,
    /// Energy dissipated by switching (equalization current surges).
    pub switch_loss: Joules,
    /// Energy delivered to the computational load.
    pub load_consumed: Joules,
    /// Energy consumed by the buffer's own management hardware/software.
    pub overhead_consumed: Joules,
}

impl EnergyLedger {
    /// A fresh, all-zero ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all recorded outflows and losses (everything except
    /// `harvested`/`delivered`, which are inflows).
    pub fn total_outflow(&self) -> Joules {
        self.clipped
            + self.leaked
            + self.diode_loss
            + self.switch_loss
            + self.load_consumed
            + self.overhead_consumed
    }

    /// Conservation residual: `delivered + initial_stored − outflows −
    /// final_stored`, where outflows are everything drawn *from the
    /// stored pool* (leakage, switch and diode dissipation, load,
    /// overhead). Clipped energy never enters the pool (`harvested =
    /// delivered + clipped`), so it is excluded. Should be ~0 for a
    /// correct simulation.
    pub fn conservation_residual(&self, initial_stored: Joules, final_stored: Joules) -> Joules {
        self.delivered + initial_stored
            - (self.leaked
                + self.switch_loss
                + self.diode_loss
                + self.load_consumed
                + self.overhead_consumed
                + final_stored)
    }

    /// Fraction of harvested energy that reached the load; the paper's
    /// end-to-end efficiency notion (§5.5). Zero if nothing harvested.
    pub fn end_to_end_efficiency(&self) -> f64 {
        if self.harvested.get() <= 0.0 {
            0.0
        } else {
            self.load_consumed.get() / self.harvested.get()
        }
    }

    /// Merges another ledger into this one (for aggregating runs).
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.harvested += other.harvested;
        self.delivered += other.delivered;
        self.clipped += other.clipped;
        self.leaked += other.leaked;
        self.diode_loss += other.diode_loss;
        self.switch_loss += other.switch_loss;
        self.load_consumed += other.load_consumed;
        self.overhead_consumed += other.overhead_consumed;
    }
}

impl std::fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "harvested:  {:>10.3} mJ", self.harvested.to_milli())?;
        writeln!(f, "delivered:  {:>10.3} mJ", self.delivered.to_milli())?;
        writeln!(f, "clipped:    {:>10.3} mJ", self.clipped.to_milli())?;
        writeln!(f, "leaked:     {:>10.3} mJ", self.leaked.to_milli())?;
        writeln!(f, "diode loss: {:>10.3} mJ", self.diode_loss.to_milli())?;
        writeln!(f, "switch loss:{:>10.3} mJ", self.switch_loss.to_milli())?;
        writeln!(f, "load:       {:>10.3} mJ", self.load_consumed.to_milli())?;
        write!(
            f,
            "overhead:   {:>10.3} mJ",
            self.overhead_consumed.to_milli()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outflow_sums_everything_but_inflows() {
        let ledger = EnergyLedger {
            harvested: Joules::new(10.0),
            delivered: Joules::new(9.0),
            clipped: Joules::new(1.0),
            leaked: Joules::new(0.5),
            diode_loss: Joules::new(0.1),
            switch_loss: Joules::new(0.2),
            load_consumed: Joules::new(6.0),
            overhead_consumed: Joules::new(0.3),
        };
        assert!((ledger.total_outflow().get() - 8.1).abs() < 1e-12);
    }

    #[test]
    fn conservation_residual_zero_when_balanced() {
        let ledger = EnergyLedger {
            delivered: Joules::new(5.0),
            leaked: Joules::new(1.0),
            load_consumed: Joules::new(3.0),
            ..Default::default()
        };
        let r = ledger.conservation_residual(Joules::new(0.5), Joules::new(1.5));
        assert!(r.get().abs() < 1e-12);
    }

    #[test]
    fn efficiency_is_load_over_harvested() {
        let ledger = EnergyLedger {
            harvested: Joules::new(8.0),
            load_consumed: Joules::new(2.0),
            ..Default::default()
        };
        assert!((ledger.end_to_end_efficiency() - 0.25).abs() < 1e-12);
        assert_eq!(EnergyLedger::new().end_to_end_efficiency(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyLedger {
            harvested: Joules::new(1.0),
            load_consumed: Joules::new(0.5),
            ..Default::default()
        };
        let b = EnergyLedger {
            harvested: Joules::new(2.0),
            switch_loss: Joules::new(0.25),
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.harvested.get() - 3.0).abs() < 1e-12);
        assert!((a.switch_loss.get() - 0.25).abs() < 1e-12);
        assert!((a.load_consumed.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_every_field() {
        let s = format!("{}", EnergyLedger::new());
        for key in [
            "harvested",
            "delivered",
            "clipped",
            "leaked",
            "diode",
            "switch",
            "load",
            "overhead",
        ] {
            assert!(s.contains(key), "display missing {key}");
        }
    }
}
