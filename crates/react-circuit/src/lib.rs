//! Circuit-level models for the REACT reproduction.
//!
//! The paper's contribution is a hardware energy buffer built from
//! capacitors, ideal-diode circuits, and break-before-make switches. This
//! crate provides the charge/energy bookkeeping those components obey:
//!
//! * [`Capacitor`] / [`CapacitorSpec`] — `Q = C·V`, `E = ½·C·V²`, voltage
//!   clamping, and leakage (`I ∝ V/V_rated`).
//! * [`Diode`] — ideal-diode (comparator + pass FET, LM66100-class) and
//!   Schottky conduction models, including the §3.3.2 efficiency gap.
//! * [`equalize`] — charge-conserving, dissipative parallel equalization:
//!   the physics behind both REACT's Eq. 1 and Morphy's switching loss
//!   (Fig. 5, §3.3.1).
//! * [`SeriesParallelBank`] — REACT's isolated N-capacitor banks (Fig. 3),
//!   whose series↔parallel reconfiguration conserves energy exactly.
//! * [`ChainNetwork`] — Morphy-style fully-interconnected networks (Fig. 4)
//!   whose reconfiguration dissipates energy through chain equalization.
//! * [`EnergyLedger`] — end-to-end accounting of every joule in a run.
//!
//! # Examples
//!
//! ```
//! use react_circuit::{Capacitor, CapacitorSpec};
//! use react_units::Volts;
//!
//! let mut cap = Capacitor::new(CapacitorSpec::ceramic_220uf());
//! cap.set_voltage(Volts::new(3.0));
//! assert!((cap.voltage().get() - 3.0).abs() < 1e-12);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod bank;
mod capacitor;
mod diode;
pub mod equalize;
mod fault;
mod ledger;
mod network;
mod switch;

pub use bank::{BankMode, BankSpec, SeriesParallelBank};
pub use capacitor::{Capacitor, CapacitorSpec, LeakageSpec};
pub use diode::{Diode, DiodeKind, DiodeTransfer};
pub use equalize::{pair_equalize, pool_equalize, EqualizeOutcome};
pub use fault::{offset_enable, FaultCampaign, FaultEvent, FaultKind, FaultPlan};
pub use ledger::EnergyLedger;
pub use network::{ChainNetwork, Partition, PartitionError};
pub use switch::{BreakBeforeMake, SwitchPhase};
