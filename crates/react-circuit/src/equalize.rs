//! Charge-conserving, dissipative equalization between capacitors.
//!
//! When two charged capacitors are connected in parallel, charge flows
//! until their voltages match. Charge is conserved; energy is not — the
//! difference is dissipated in the interconnect (Fig. 5 of the paper).
//! For capacitances `C₁, C₂` at voltages `V₁, V₂`:
//!
//! ```text
//! V* = (C₁V₁ + C₂V₂) / (C₁ + C₂)
//! E_loss = ½ · (C₁C₂ / (C₁+C₂)) · (V₁ − V₂)²
//! ```
//!
//! This single primitive explains both REACT's Eq. 1 (bank boost into the
//! last-level buffer) and Morphy's reconfiguration waste (§3.3.1).

use react_units::{Coulombs, Farads, Joules, Seconds, Volts};

use crate::Capacitor;

/// Result of an equalization step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EqualizeOutcome {
    /// Common voltage after equalization.
    pub final_voltage: Volts,
    /// Energy dissipated in the interconnect.
    pub dissipated: Joules,
    /// Total charge moved (sum of absolute charge deltas / 2).
    pub charge_moved: Coulombs,
}

/// Fully equalizes two capacitors as if connected in parallel through an
/// ideal wire. Charge is conserved exactly.
pub fn pair_equalize(a: &mut Capacitor, b: &mut Capacitor) -> EqualizeOutcome {
    let e_before = a.energy() + b.energy();
    let total_q = a.charge() + b.charge();
    let total_c = a.capacitance() + b.capacitance();
    let v_star = total_q / total_c;
    let delta_a = a.capacitance() * v_star - a.charge();
    a.shift_charge(delta_a);
    b.shift_charge(-delta_a);
    let e_after = a.energy() + b.energy();
    EqualizeOutcome {
        final_voltage: v_star,
        dissipated: (e_before - e_after).max(Joules::ZERO),
        charge_moved: delta_a.abs(),
    }
}

/// Partially equalizes two capacitors connected through a series
/// resistance `r` for a window `dt`, using the exact RC solution:
/// `ΔV(dt) = ΔV₀ · exp(−dt/τ)` with `τ = r · C₁C₂/(C₁+C₂)`.
///
/// Returns the outcome; `final_voltage` reports the voltage of `a`.
/// Dissipation equals the stored-energy drop (all of it burns in `r`).
pub fn pair_equalize_through(
    a: &mut Capacitor,
    b: &mut Capacitor,
    r: react_units::Ohms,
    dt: Seconds,
) -> EqualizeOutcome {
    if r.get() <= 0.0 {
        return pair_equalize(a, b);
    }
    let e_before = a.energy() + b.energy();
    let c_series = a.capacitance().series_with(b.capacitance());
    let tau = r.get() * c_series.get();
    let dv0 = a.voltage() - b.voltage();
    let decay = if tau > 0.0 {
        (-dt.get() / tau).exp()
    } else {
        0.0
    };
    // Charge moved from a to b: q = C_series · ΔV₀ · (1 − e^{−t/τ})
    let q = c_series * Volts::new(dv0.get() * (1.0 - decay));
    a.shift_charge(-q);
    b.shift_charge(q);
    let e_after = a.energy() + b.energy();
    EqualizeOutcome {
        final_voltage: a.voltage(),
        dissipated: (e_before - e_after).max(Joules::ZERO),
        charge_moved: q.abs(),
    }
}

/// Fully equalizes an arbitrary pool of capacitors placed in parallel.
///
/// # Panics
///
/// Panics if `caps` is empty.
pub fn pool_equalize(caps: &mut [&mut Capacitor]) -> EqualizeOutcome {
    assert!(!caps.is_empty(), "cannot equalize an empty pool");
    let e_before: Joules = caps.iter().map(|c| c.energy()).sum();
    let total_q: Coulombs = caps.iter().map(|c| c.charge()).sum();
    let total_c: Farads = caps.iter().map(|c| c.capacitance()).sum();
    let v_star = total_q / total_c;
    let mut moved = Coulombs::ZERO;
    for cap in caps.iter_mut() {
        let delta = cap.capacitance() * v_star - cap.charge();
        moved += delta.abs();
        cap.shift_charge(delta);
    }
    let e_after: Joules = caps.iter().map(|c| c.energy()).sum();
    EqualizeOutcome {
        final_voltage: v_star,
        dissipated: (e_before - e_after).max(Joules::ZERO),
        charge_moved: moved / 2.0,
    }
}

/// Analytic fraction of energy conserved when a capacitor pool at voltages
/// `v` (each with capacitance `c[i]`) is paralleled. Used by tests to
/// cross-check the mutating primitives.
pub fn conserved_fraction(c: &[f64], v: &[f64]) -> f64 {
    assert_eq!(c.len(), v.len());
    let e_before: f64 = c.iter().zip(v).map(|(c, v)| 0.5 * c * v * v).sum();
    if e_before == 0.0 {
        return 1.0;
    }
    let q: f64 = c.iter().zip(v).map(|(c, v)| c * v).sum();
    let ct: f64 = c.iter().sum();
    let v_star = q / ct;
    let e_after = 0.5 * ct * v_star * v_star;
    e_after / e_before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CapacitorSpec;
    use react_units::{Farads, Ohms};

    fn cap(c: f64, v: f64) -> Capacitor {
        Capacitor::with_voltage(
            CapacitorSpec::new(Farads::new(c)).with_max_voltage(Volts::new(100.0)),
            Volts::new(v),
        )
    }

    #[test]
    fn equal_voltages_lose_nothing() {
        let mut a = cap(1e-3, 2.0);
        let mut b = cap(2e-3, 2.0);
        let out = pair_equalize(&mut a, &mut b);
        assert!(out.dissipated.get() < 1e-15);
        assert!((out.final_voltage.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pair_loss_matches_analytic_form() {
        let (c1, c2, v1, v2) = (1e-3, 3e-3, 3.0, 1.0);
        let mut a = cap(c1, v1);
        let mut b = cap(c2, v2);
        let out = pair_equalize(&mut a, &mut b);
        let expected = 0.5 * (c1 * c2 / (c1 + c2)) * (v1 - v2) * (v1 - v2);
        assert!((out.dissipated.get() - expected).abs() < 1e-12);
        let v_star = (c1 * v1 + c2 * v2) / (c1 + c2);
        assert!((out.final_voltage.get() - v_star).abs() < 1e-12);
        assert!((a.voltage().get() - b.voltage().get()).abs() < 1e-12);
    }

    #[test]
    fn charge_is_conserved() {
        let mut a = cap(4.7e-4, 3.3);
        let mut b = cap(2.2e-4, 0.4);
        let q_before = a.charge() + b.charge();
        pair_equalize(&mut a, &mut b);
        let q_after = a.charge() + b.charge();
        assert!((q_before.get() - q_after.get()).abs() < 1e-15);
    }

    #[test]
    fn equal_caps_equal_split_loses_half_of_difference_energy() {
        // Two equal caps, one charged, one empty: classic 50 % loss.
        let mut a = cap(1e-3, 2.0);
        let mut b = cap(1e-3, 0.0);
        let e_before = a.energy() + b.energy();
        let out = pair_equalize(&mut a, &mut b);
        assert!((out.dissipated.get() / e_before.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn through_resistance_converges_to_ideal() {
        let mut a1 = cap(1e-3, 3.0);
        let mut b1 = cap(1e-3, 1.0);
        // dt >> τ: effectively complete.
        let out = pair_equalize_through(&mut a1, &mut b1, Ohms::new(0.079), Seconds::new(1.0));
        assert!((a1.voltage().get() - 2.0).abs() < 1e-9);
        assert!((b1.voltage().get() - 2.0).abs() < 1e-9);
        // Same loss as the ideal case.
        assert!((out.dissipated.get() - 0.5 * 0.5e-3 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn through_resistance_partial_when_dt_small() {
        let mut a = cap(1e-3, 3.0);
        let mut b = cap(1e-3, 1.0);
        let tau = 1.0 * 0.5e-3; // r=1Ω, C_series=0.5mF
        let out = pair_equalize_through(&mut a, &mut b, Ohms::new(1.0), Seconds::new(tau));
        // ΔV decays to 2·e⁻¹ ≈ 0.7358.
        let dv = a.voltage().get() - b.voltage().get();
        assert!((dv - 2.0 * (-1.0f64).exp()).abs() < 1e-9);
        assert!(out.dissipated.get() > 0.0);
    }

    #[test]
    fn zero_resistance_falls_back_to_ideal() {
        let mut a = cap(1e-3, 3.0);
        let mut b = cap(1e-3, 1.0);
        pair_equalize_through(&mut a, &mut b, Ohms::ZERO, Seconds::new(1e-9));
        assert!((a.voltage().get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pool_matches_pairwise_for_two() {
        let mut a1 = cap(1e-3, 3.0);
        let mut b1 = cap(2e-3, 1.0);
        let mut a2 = a1;
        let mut b2 = b1;
        let out_pool = pool_equalize(&mut [&mut a1, &mut b1]);
        let out_pair = pair_equalize(&mut a2, &mut b2);
        assert!((out_pool.final_voltage.get() - out_pair.final_voltage.get()).abs() < 1e-12);
        assert!((out_pool.dissipated.get() - out_pair.dissipated.get()).abs() < 1e-12);
    }

    #[test]
    fn pool_of_many() {
        let mut caps: Vec<Capacitor> = (0..8).map(|i| cap(2e-3, i as f64 * 0.5)).collect();
        let q_before: f64 = caps.iter().map(|c| c.charge().get()).sum();
        let mut refs: Vec<&mut Capacitor> = caps.iter_mut().collect();
        let out = pool_equalize(&mut refs);
        let q_after: f64 = caps.iter().map(|c| c.charge().get()).sum();
        assert!((q_before - q_after).abs() < 1e-12);
        assert!(out.dissipated.get() > 0.0);
        let v = caps[0].voltage().get();
        assert!(caps.iter().all(|c| (c.voltage().get() - v).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_pool_panics() {
        pool_equalize(&mut []);
    }

    #[test]
    fn conserved_fraction_figure5_example() {
        // §3.3.1: 4-cap array at C/4·V reconfigured so one cap (at V/4)
        // parallels a 3-series string (at 3V/4): E_new/E_old = 0.75.
        // Model: chain of 3 (C_eq = C/3, at 3V/4) ‖ single cap (C, at V/4).
        let f = conserved_fraction(&[1.0 / 3.0, 1.0], &[0.75, 0.25]);
        assert!((f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn conserved_fraction_eight_cap_example() {
        // §3.3.1: 8-parallel → 7-series-1-parallel wastes 56.25 %.
        // 8 caps in parallel at V, reconfigured to a 7-chain (C/7 at 7V…)
        // — the paper's stated transition connects a 7-series string
        // (voltage 7·V/8 per equalized charge? the published figure is
        // 56.25 % loss, i.e. 43.75 % conserved). Chain of 7 at 7V in
        // parallel with 1 cap at V, C_unit = 1:
        let f = conserved_fraction(&[1.0 / 7.0, 1.0], &[7.0, 1.0]);
        assert!((f - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn conserved_fraction_trivial_cases() {
        assert_eq!(conserved_fraction(&[1.0], &[0.0]), 1.0);
        assert!((conserved_fraction(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-12);
    }
}
