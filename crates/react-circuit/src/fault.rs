//! Hardware-degradation fault injection: seeded, deterministic
//! mid-run drift events.
//!
//! Deployed batteryless hardware does not keep its datasheet values:
//! capacitors fade, leakage rises with temperature and age, comparators
//! develop offset, load switches weld or fail open, and harvester
//! frontends derate. A [`FaultPlan`] is a time-sorted schedule of such
//! events; the simulation kernel applies each event the first time its
//! clock reaches the event's timestamp, and clamps coarse strides so no
//! closed-form span ever integrates *across* a fault edge.
//!
//! Plans are either scheduled explicitly ([`FaultPlan::scheduled`]) or
//! sampled from a named [`FaultCampaign`] with a splitmix64 stream
//! seeded per node exactly like `node_salt`, so a 100k-node fleet
//! campaign reproduces bit-exactly from one committed seed.

use react_units::{Seconds, Volts};

/// One kind of component drift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Effective capacitance multiplies by `factor` (< 1 for fade).
    /// The terminal voltage is preserved — charge redistributes inside
    /// the dielectric — so the stored energy drops; models book the
    /// loss as leakage.
    CapacitanceFade {
        /// Multiplier on the capacitance (0 < factor ≤ 1 for fade).
        factor: f64,
    },
    /// Leakage current multiplies by `factor` (> 1 for growth).
    LeakageGrowth {
        /// Multiplier on the datasheet leakage current.
        factor: f64,
    },
    /// The enable comparator develops a fixed input offset: the gate
    /// now closes at `nominal + volts` instead of the nominal enable
    /// threshold (positive offset delays every boot).
    ComparatorOffset {
        /// Offset added to the effective enable threshold, volts.
        volts: f64,
    },
    /// The load switch fails open: the MCU disconnects and can never
    /// reconnect (a dead node that still harvests).
    SwitchStuckOpen,
    /// The load switch welds closed: the MCU stays connected through
    /// brown-out and drains the buffer to the floor (a drain-wedged
    /// node).
    SwitchStuckClosed,
    /// The harvester frontend derates: rail power multiplies by
    /// `factor` (< 1) from this point on.
    HarvesterDerate {
        /// Multiplier on post-converter rail power.
        factor: f64,
    },
}

impl FaultKind {
    /// Short label for telemetry and tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CapacitanceFade { .. } => "capacitance-fade",
            FaultKind::LeakageGrowth { .. } => "leakage-growth",
            FaultKind::ComparatorOffset { .. } => "comparator-offset",
            FaultKind::SwitchStuckOpen => "switch-stuck-open",
            FaultKind::SwitchStuckClosed => "switch-stuck-closed",
            FaultKind::HarvesterDerate { .. } => "harvester-derate",
        }
    }
}

/// One scheduled drift event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulation time the drift manifests.
    pub at: Seconds,
    /// What drifts.
    pub kind: FaultKind,
}

/// A time-sorted schedule of drift events for one node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The inert plan: no events, no effect on any run.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// A plan from explicit events (sorted by time on construction, so
    /// callers may list them in any order).
    pub fn scheduled(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at.get().total_cmp(&b.at.get()));
        FaultPlan { events }
    }

    /// The events, ascending in time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if the plan holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the first event at index ≥ `next`, or `+inf` once
    /// the plan is exhausted — the stride-window clamp the kernel uses
    /// so closed forms never integrate across a fault edge.
    pub fn next_at(&self, next: usize) -> Seconds {
        self.events
            .get(next)
            .map_or(Seconds::new(f64::INFINITY), |e| e.at)
    }
}

/// A named, reproducible fault-sampling family — the scenario/fleet
/// axis. `Copy` so it can live inside `Scenario` literals; the actual
/// [`FaultPlan`] is expanded per run from the node's seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultCampaign {
    /// No faults (every pre-existing scenario).
    #[default]
    None,
    /// The acceptance-criteria pair, scheduled deterministically: a
    /// 30 % capacitance fade at 25 % of the horizon and a +150 mV
    /// comparator offset at 50 %.
    FadeOffset,
    /// Harvester derate to 60 % at 30 % of the horizon.
    Derate,
    /// Load switch welds closed at 40 % of the horizon (the
    /// drain-wedge watchdog case).
    StuckClosed,
    /// Stochastic drift: 1–3 events sampled per node from the fade /
    /// leakage-growth / derate / comparator-offset families at
    /// seed-determined times and magnitudes.
    Drift,
}

impl FaultCampaign {
    /// Registry label (also the fingerprint segment for fleet specs).
    pub fn label(self) -> &'static str {
        match self {
            FaultCampaign::None => "none",
            FaultCampaign::FadeOffset => "fade-offset",
            FaultCampaign::Derate => "derate",
            FaultCampaign::StuckClosed => "stuck-closed",
            FaultCampaign::Drift => "drift",
        }
    }

    /// Expands the campaign into a concrete plan for one node. `seed`
    /// is the node's fault seed (fleets salt it per node); scheduled
    /// campaigns ignore it, `Drift` drives a splitmix64 stream with it.
    pub fn plan(self, seed: u64, horizon: Seconds) -> FaultPlan {
        let h = horizon.get();
        match self {
            FaultCampaign::None => FaultPlan::empty(),
            FaultCampaign::FadeOffset => FaultPlan::scheduled(vec![
                FaultEvent {
                    at: Seconds::new(0.25 * h),
                    kind: FaultKind::CapacitanceFade { factor: 0.7 },
                },
                FaultEvent {
                    at: Seconds::new(0.50 * h),
                    kind: FaultKind::ComparatorOffset { volts: 0.15 },
                },
            ]),
            FaultCampaign::Derate => FaultPlan::scheduled(vec![FaultEvent {
                at: Seconds::new(0.30 * h),
                kind: FaultKind::HarvesterDerate { factor: 0.6 },
            }]),
            FaultCampaign::StuckClosed => FaultPlan::scheduled(vec![FaultEvent {
                at: Seconds::new(0.40 * h),
                kind: FaultKind::SwitchStuckClosed,
            }]),
            FaultCampaign::Drift => {
                let mut stream = SplitMix::new(seed);
                let n = 1 + (stream.next() % 3) as usize;
                let events = (0..n)
                    .map(|_| {
                        // Events land in the middle 80 % of the horizon
                        // so every sampled fault has room to matter.
                        let at = Seconds::new(h * (0.1 + 0.8 * stream.unit()));
                        let kind = match stream.next() % 4 {
                            0 => FaultKind::CapacitanceFade {
                                factor: 0.5 + 0.4 * stream.unit(),
                            },
                            1 => FaultKind::LeakageGrowth {
                                factor: 2.0 + 8.0 * stream.unit(),
                            },
                            2 => FaultKind::HarvesterDerate {
                                factor: 0.4 + 0.5 * stream.unit(),
                            },
                            _ => FaultKind::ComparatorOffset {
                                volts: 0.05 + 0.15 * stream.unit(),
                            },
                        };
                        FaultEvent { at, kind }
                    })
                    .collect();
                FaultPlan::scheduled(events)
            }
        }
    }
}

/// Effective comparator enable threshold under an accumulated offset,
/// clamped so the gate keeps a hysteresis band above brown-out (a
/// hardware offset can delay boots indefinitely but cannot invert the
/// comparator pair).
pub fn offset_enable(nominal: Volts, offset: f64, brownout: Volts) -> Volts {
    Volts::new((nominal.get() + offset).max(brownout.get() + 0.05))
}

/// splitmix64 stream — the same finalizer `node_salt` uses, so fault
/// sampling inherits the fleet's per-node decorrelation guarantees.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: Seconds = Seconds::new(3600.0);

    #[test]
    fn scheduled_plans_sort_by_time() {
        let plan = FaultPlan::scheduled(vec![
            FaultEvent {
                at: Seconds::new(30.0),
                kind: FaultKind::SwitchStuckOpen,
            },
            FaultEvent {
                at: Seconds::new(10.0),
                kind: FaultKind::CapacitanceFade { factor: 0.5 },
            },
        ]);
        assert_eq!(plan.events()[0].at, Seconds::new(10.0));
        assert_eq!(plan.next_at(0), Seconds::new(10.0));
        assert_eq!(plan.next_at(1), Seconds::new(30.0));
        assert!(plan.next_at(2).get().is_infinite());
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert!(plan.next_at(0).get().is_infinite());
        assert_eq!(FaultCampaign::None.plan(7, HOUR), FaultPlan::empty());
    }

    #[test]
    fn drift_sampling_is_seed_deterministic_and_decorrelated() {
        let a = FaultCampaign::Drift.plan(42, HOUR);
        let b = FaultCampaign::Drift.plan(42, HOUR);
        assert_eq!(a, b, "same seed must replay the identical plan");
        let mut distinct = false;
        for seed in 0..16u64 {
            if FaultCampaign::Drift.plan(seed, HOUR) != a {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "different seeds must sample different plans");
        for e in a.events() {
            assert!(e.at.get() >= 0.1 * HOUR.get() && e.at.get() <= 0.9 * HOUR.get());
        }
    }

    #[test]
    fn fade_offset_matches_acceptance_schedule() {
        let plan = FaultCampaign::FadeOffset.plan(0, HOUR);
        assert_eq!(plan.events().len(), 2);
        assert!(matches!(
            plan.events()[0].kind,
            FaultKind::CapacitanceFade { factor } if (factor - 0.7).abs() < 1e-12
        ));
        assert!(matches!(
            plan.events()[1].kind,
            FaultKind::ComparatorOffset { volts } if (volts - 0.15).abs() < 1e-12
        ));
    }

    #[test]
    fn offset_enable_clamps_above_brownout() {
        let e = offset_enable(Volts::new(3.3), 0.15, Volts::new(1.8));
        assert!((e.get() - 3.45).abs() < 1e-12);
        // A pathological negative offset can never invert the band.
        let floor = offset_enable(Volts::new(3.3), -5.0, Volts::new(1.8));
        assert!((floor.get() - 1.85).abs() < 1e-12);
    }

    #[test]
    fn campaign_labels_are_distinct() {
        let all = [
            FaultCampaign::None,
            FaultCampaign::FadeOffset,
            FaultCampaign::Derate,
            FaultCampaign::StuckClosed,
            FaultCampaign::Drift,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
